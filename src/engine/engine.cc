#include "src/engine/engine.h"

#include <algorithm>

#include "src/expr/eval.h"
#include "src/kernel/kernel_api.h"
#include "src/kernel/kernel_context.h"
#include "src/obs/trace_events.h"
#include "src/support/check.h"
#include "src/support/log.h"
#include "src/support/strings.h"
#include "src/vm/block_cache.h"
#include "src/vm/layout.h"
#include "src/vm/superblock.h"

namespace ddt {

void EngineStats::Accumulate(const EngineStats& other) {
  instructions += other.instructions;
  forks += other.forks;
  dropped_forks += other.dropped_forks;
  states_created += other.states_created;
  states_terminated += other.states_terminated;
  max_live_states = std::max(max_live_states, other.max_live_states);
  kernel_calls += other.kernel_calls;
  interrupts_injected += other.interrupts_injected;
  entry_invocations += other.entry_invocations;
  concretizations += other.concretizations;
  concretization_backtracks += other.concretization_backtracks;
  faults_injected += other.faults_injected;
  hw_faults_injected += other.hw_faults_injected;
  hw_removals += other.hw_removals;
  hw_sticky_faults += other.hw_sticky_faults;
  hw_irq_storms += other.hw_irq_storms;
  hw_irq_suppressed += other.hw_irq_suppressed;
  hw_doorbells_dropped += other.hw_doorbells_dropped;
  hw_reads_floated += other.hw_reads_floated;
  hw_writes_dropped += other.hw_writes_dropped;
  hw_removal_events += other.hw_removal_events;
  states_evicted += other.states_evicted;
  peak_state_bytes = std::max(peak_state_bytes, other.peak_state_bytes);
  blocks_decoded += other.blocks_decoded;
  block_cache_hits += other.block_cache_hits;
  block_cache_fallback_fetches += other.block_cache_fallback_fetches;
  block_cache_hot_blocks += other.block_cache_hot_blocks;
  superblocks_compiled += other.superblocks_compiled;
  superblock_ops_lowered += other.superblock_ops_lowered;
  superblock_entries += other.superblock_entries;
  superblock_chains += other.superblock_chains;
  superblock_side_exits += other.superblock_side_exits;
  superblock_instructions += other.superblock_instructions;
  states_merged += other.states_merged;
  loop_kills += other.loop_kills;
  edge_kills += other.edge_kills;
  if (edge_rule_kills.size() < other.edge_rule_kills.size()) {
    edge_rule_kills.resize(other.edge_rule_kills.size(), 0);
  }
  for (size_t i = 0; i < other.edge_rule_kills.size(); ++i) {
    edge_rule_kills[i] += other.edge_rule_kills[i];
  }
  AccumulateForkSites(&fork_sites, other.fork_sites);
  wall_ms += other.wall_ms;
}

std::string OriginKeyString(const VarOrigin& origin) {
  return StrFormat("%d|%s|%llu|%llu", static_cast<int>(origin.source), origin.label.c_str(),
                   static_cast<unsigned long long>(origin.aux),
                   static_cast<unsigned long long>(origin.seq));
}

// ---------------------------------------------------------------------------
// KernelContext implementation bound to (engine, state, current call).
// ---------------------------------------------------------------------------

class EngineKernelContext : public KernelContext {
 public:
  EngineKernelContext(Engine* engine, ExecutionState* st) : engine_(engine), st_(st) {
    for (int i = 0; i < 4; ++i) {
      args_[static_cast<size_t>(i)] = st->Reg(i);
    }
  }

  ExprContext* expr() override { return &engine_->ctx_; }
  KernelState& kernel() override { return st_->kernel; }
  Rng& rng() override { return st_->rng; }
  DeviceModel& device() override { return *st_->device; }

  Value Arg(int index) override {
    if (index < 4) {
      return args_[static_cast<size_t>(index)];
    }
    uint32_t sp = engine_->ConcretizeValue(*st_, st_->Reg(kRegSp), "stack-arg-sp");
    return engine_->ReadMemValueRaw(*st_, sp + static_cast<uint32_t>(index - 4) * 4, 4);
  }

  void SetArg(int index, const Value& value) override {
    Value effective = engine_->MaybeGuide(value);
    if (index < 4) {
      args_[static_cast<size_t>(index)] = effective;
      st_->SetReg(index, effective);
    }
  }

  void SetReturn(const Value& value) override { st_->SetReg(0, engine_->MaybeGuide(value)); }
  Value GetReturn() override { return st_->Reg(0); }

  uint32_t Concretize(const Value& value, const std::string& reason) override {
    return engine_->ConcretizeValue(*st_, value, reason);
  }

  uint32_t ReadGuestU32(uint32_t addr) override {
    return engine_->ConcretizeValue(*st_, engine_->ReadMemValueRaw(*st_, addr, 4),
                                    "kernel-read-u32");
  }
  uint8_t ReadGuestU8(uint32_t addr) override {
    return static_cast<uint8_t>(engine_->ConcretizeValue(
        *st_, engine_->ReadMemValueRaw(*st_, addr, 1), "kernel-read-u8"));
  }
  void WriteGuestU32(uint32_t addr, uint32_t value) override {
    engine_->WriteMemValueRaw(*st_, addr, Value::Concrete(value), 4);
  }
  void WriteGuestU8(uint32_t addr, uint8_t value) override {
    engine_->WriteMemValueRaw(*st_, addr, Value::Concrete(value), 1);
  }
  std::string ReadGuestCString(uint32_t addr, size_t max_len) override {
    std::string out;
    for (size_t i = 0; i < max_len; ++i) {
      uint8_t c = ReadGuestU8(addr + static_cast<uint32_t>(i));
      if (c == 0) {
        break;
      }
      out.push_back(static_cast<char>(c));
    }
    return out;
  }

  Value ReadGuestValue(uint32_t addr, unsigned size) override {
    return engine_->ReadMemValueRaw(*st_, addr, size);
  }
  void WriteGuestValue(uint32_t addr, const Value& value, unsigned size) override {
    engine_->WriteMemValueRaw(*st_, addr, engine_->MaybeGuide(value), size);
  }

  void AddConstraint(ExprRef constraint) override {
    engine_->AddConstraintChecked(*st_, constraint);
  }

  ExecContextKind CurrentContext() const override { return st_->CurrentContext(); }

  void BugCheck(uint32_t code, const std::string& message) override {
    engine_->DoBugCheck(*st_, code, message);
  }

  void EmitEvent(const KernelEvent& event) override { engine_->EmitKernelEvent(*st_, event); }

  bool ShouldInjectFault(FaultClass cls, const char* api) override {
    return engine_->ShouldInjectFault(*st_, cls, api);
  }

  uint32_t CallSitePc() const override { return st_->pc; }

 private:
  Engine* engine_;
  ExecutionState* st_;
  std::array<Value, 4> args_;
};

// ---------------------------------------------------------------------------
// Engine setup
// ---------------------------------------------------------------------------

namespace {
// The engine-level obs sinks flow down into the solver unless the caller
// already wired the solver's own.
SolverConfig SolverConfigWithObs(const EngineConfig& config) {
  SolverConfig sc = config.solver;
  if (sc.metrics == nullptr) {
    sc.metrics = config.metrics;
  }
  if (sc.profile == nullptr) {
    sc.profile = config.profile;
  }
  return sc;
}
}  // namespace

Engine::Engine(const EngineConfig& config)
    : config_(config),
      abort_token_(config.abort_token != nullptr ? config.abort_token
                                                 : std::make_shared<std::atomic<bool>>(false)),
      solver_(&ctx_, SolverConfigWithObs(config)),
      rng_(config.seed) {
  // The same token that stops the run loop also unwinds in-flight SAT
  // queries, so cancellation latency is bounded by one propagation rather
  // than one (possibly pathological) solver query.
  solver_.SetAbortFlag(abort_token_.get());
#ifndef DDT_OBS_DISABLED
  if (config_.metrics != nullptr) {
    obs_live_states_ = config_.metrics->gauge("engine.live_states");
  }
#endif
}

Engine::~Engine() = default;

void Engine::AddChecker(std::unique_ptr<Checker> checker) {
  checkers_.push_back(std::move(checker));
}

Status Engine::LoadDriver(const DriverImage& image, const PciDescriptor& descriptor) {
  // A zero budget would silently run forever (or not at all, depending on
  // the check's direction) — reject it up front rather than guess intent.
  if (config_.max_states == 0) {
    return Status::Error("EngineConfig.max_states must be nonzero");
  }
  if (config_.max_instructions == 0) {
    return Status::Error("EngineConfig.max_instructions must be nonzero");
  }
  if (config_.max_wall_ms == 0) {
    return Status::Error("EngineConfig.max_wall_ms must be nonzero");
  }

  image_ = image;
  pci_ = descriptor;

  // Resolve imports up front: an unresolvable import is a load failure, like
  // an unlinkable SYS file.
  import_table_.clear();
  for (const std::string& name : image.imports) {
    KernelApiFn fn = FindKernelApi(name);
    if (fn == nullptr) {
      return Status::Error("unresolved driver import: " + name);
    }
    import_table_.push_back(fn);
  }

  auto initial = std::make_unique<ExecutionState>();
  initial->id = next_state_id_++;
  initial->mem.set_stats(&mem_stats_);
  initial->mem.set_eager_fork(config_.eager_cow);
  loaded_ = InstallImage(&initial->mem, image, kDriverImageBase);
  if (loaded_.code_end > kDriverImageLimit) {
    return Status::Error("driver image too large for the image window");
  }
  cfg_ = BuildCfg(image.code.data(), image.code.size(), loaded_.code_begin);

  // Translation cache over the code segment (immutable from here on — the
  // write barrier in WriteMemValueRaw enforces it), plus a dense block-leader
  // bitmap so per-instruction coverage checks are an array index rather than
  // a std::map lookup.
  block_cache_.reset();
  if (config_.enable_block_cache) {
    block_cache_ =
        std::make_unique<BlockCache>(image.code.data(), image.code.size(), loaded_.code_begin);
    block_cache_->SetProfile(config_.profile);
  }
  block_leader_slots_.assign(image.code.size() / kInstructionSize, 0);
  for (const auto& [leader, block] : cfg_.blocks) {
    uint32_t offset = leader - loaded_.code_begin;
    if (offset % kInstructionSize == 0 &&
        offset / kInstructionSize < block_leader_slots_.size()) {
      block_leader_slots_[offset / kInstructionSize] = 1;
    }
  }
  // Tier-2 superblock table (src/vm/superblock.h): compiled lazily once block
  // entry counters cross the hotness threshold. Shares the block cache's
  // immutability argument, so nothing is ever invalidated.
  superblocks_.reset();
  if (config_.superblocks && block_cache_ != nullptr) {
    superblocks_ = std::make_unique<SuperblockCache>(block_cache_.get(), loaded_.code_begin,
                                                     &block_leader_slots_);
    superblocks_->SetProfile(config_.profile);
  }

  initial->kernel.driver = loaded_;
  initial->kernel.pci = pci_;
  initial->kernel.registry = registry_;
  initial->kernel.workload = workload_;
  initial->pc = kIdlePc;
  initial->regs.fill(Value::Concrete(0));
  initial->SetReg(kRegSp, Value::Concrete(kDriverStackTop - 64));
  initial->rng = Rng(config_.seed ^ 0xABCDEF);
  initial->trace.set_max_tail_events(config_.max_trace_tail_events);
  initial->device = device_proto_ != nullptr ? device_proto_->Clone()
                                             : std::make_unique<SymbolicDevice>(image.name);
  for (const auto& checker : checkers_) {
    initial->checker_state.emplace(checker->name(), checker->MakeState());
  }
  AddState(std::move(initial));
  return Status::Ok();
}

void Engine::AddState(std::unique_ptr<ExecutionState> state) {
  ++stats_.states_created;
  // Fork profiler: attribute the new state to the fork site that spawned it
  // (the root state has no origin and stays unattributed).
  if (state->origin_fork_pc != 0) {
    ++stats_.fork_sites[{state->origin_fork_pc, state->origin_fault_site}].states_created;
  }
  states_.push_back(std::move(state));
  stats_.max_live_states = std::max<uint64_t>(stats_.max_live_states, states_.size());
}

std::unique_ptr<ExecutionState> Engine::CloneState(ExecutionState& st) {
  return st.Clone(next_state_id_++);
}

// ---------------------------------------------------------------------------
// Run loop
// ---------------------------------------------------------------------------

double Engine::ElapsedMs() const {
  return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - run_start_)
      .count();
}

bool Engine::BudgetExceeded() const {
  if (abort_token_->load(std::memory_order_relaxed)) {
    return true;
  }
  if (stats_.instructions >= config_.max_instructions) {
    return true;
  }
  if (config_.max_wall_ms != 0 && ElapsedMs() >= static_cast<double>(config_.max_wall_ms)) {
    return true;
  }
  return false;
}

void Engine::Run() {
  obs::ScopedSpan run_span("engine.run");
  run_start_ = std::chrono::steady_clock::now();
  searcher_ = MakeSearcher(config_.strategy, this, config_.seed ^ 0x5EA4C4);

  std::vector<ExecutionState*> alive;
  while (!stop_requested_ && !BudgetExceeded()) {
    alive.clear();
    bool any_parked = false;
    for (const auto& state : states_) {
      if (!state->alive()) {
        continue;
      }
      // Parked states wait at a merge point for their diamond sibling; they
      // are alive but not schedulable.
      if (state->parked) {
        any_parked = true;
        continue;
      }
      alive.push_back(state.get());
    }
    if (alive.empty()) {
      if (!any_parked) {
        break;
      }
      // Every runnable state is parked: no partner can ever arrive, so the
      // groups can never complete. Dissolve them all and keep running.
      for (const auto& state : states_) {
        if (state->alive() && state->parked) {
          state->parked = false;
          state->sibling_group = 0;
          state->merge_pc = 0;
        }
      }
      continue;
    }
    size_t index = searcher_->Select(alive);
    // Fork profiler: SAT calls issued while stepping a state are attributed
    // to the fork site that spawned it. Capture the key before stepping (the
    // state may terminate and be destroyed mid-step).
    const uint32_t step_origin_pc = alive[index]->origin_fork_pc;
    const std::string step_origin_fault = alive[index]->origin_fault_site;
    const uint64_t sat_before = solver_.stats().sat_calls;
    StepState(*alive[index]);
    if (step_origin_pc != 0) {
      uint64_t sat_delta = solver_.stats().sat_calls - sat_before;
      if (sat_delta != 0) {
        stats_.fork_sites[{step_origin_pc, step_origin_fault}].sat_calls += sat_delta;
      }
    }

    // Periodic working-set sample (cheap: delta map sizes, not deep walks).
    if ((stats_.instructions & 0x3FFF) == 0) {
      uint64_t bytes = 0;
      for (const auto& state : states_) {
        bytes += state->mem.DeltaSize() * 16          // delta map entries
                 + state->constraints.size() * 8      // constraint refs
                 + sizeof(ExecutionState);
      }
      stats_.peak_state_bytes = std::max(stats_.peak_state_bytes, bytes);
      if (obs_live_states_ != nullptr) {
        obs_live_states_->Set(static_cast<int64_t>(states_.size()));
      }
      if (config_.max_state_bytes != 0 && bytes > config_.max_state_bytes) {
        EvictStatesOverMemoryBudget(bytes);
      }
    }

    // Prune terminated states (bugs and stats already captured).
    size_t before = states_.size();
    states_.erase(std::remove_if(states_.begin(), states_.end(),
                                 [](const std::unique_ptr<ExecutionState>& s) {
                                   return !s->alive();
                                 }),
                  states_.end());
    stats_.states_terminated += before - states_.size();
  }
  stats_.wall_ms = ElapsedMs();
  if (block_cache_ != nullptr) {
    stats_.blocks_decoded = block_cache_->stats().blocks_decoded;
    stats_.block_cache_hits = block_cache_->stats().hits;
    stats_.block_cache_fallback_fetches = block_cache_->stats().fallback_fetches;
    stats_.block_cache_hot_blocks = block_cache_->stats().hot_blocks;
  }
  if (superblocks_ != nullptr) {
    stats_.superblocks_compiled = superblocks_->stats().compiled;
    stats_.superblock_ops_lowered = superblocks_->stats().ops_lowered;
  }
#ifndef DDT_OBS_DISABLED
  if (config_.profile != nullptr) {
    config_.profile->SetTotalAndDeriveInterpret(static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(std::chrono::steady_clock::now() -
                                                             run_start_)
            .count()));
  }
  PublishObsMetrics();
#endif
}

void Engine::PublishObsMetrics() {
  if (config_.metrics == nullptr) {
    return;
  }
  // One shot at the end of Run: the per-pass registry is fresh per engine, so
  // adding the totals yields absolute values that merge across passes.
  obs::MetricsRegistry& m = *config_.metrics;
  m.counter("engine.instructions")->Add(stats_.instructions);
  m.counter("engine.forks")->Add(stats_.forks);
  m.counter("engine.dropped_forks")->Add(stats_.dropped_forks);
  m.counter("engine.states_created")->Add(stats_.states_created);
  m.counter("engine.states_terminated")->Add(stats_.states_terminated);
  m.counter("engine.states_evicted")->Add(stats_.states_evicted);
  m.counter("engine.kernel_calls")->Add(stats_.kernel_calls);
  m.counter("engine.interrupts_injected")->Add(stats_.interrupts_injected);
  m.counter("engine.concretizations")->Add(stats_.concretizations);
  m.counter("engine.faults_injected")->Add(stats_.faults_injected);
  if (!config_.fault_plan.hw_points.empty()) {
    m.counter("hw.faults_injected")->Add(stats_.hw_faults_injected);
    m.counter("hw.removals")->Add(stats_.hw_removals);
    m.counter("hw.sticky_faults")->Add(stats_.hw_sticky_faults);
    m.counter("hw.irq_storms")->Add(stats_.hw_irq_storms);
    m.counter("hw.irq_suppressed")->Add(stats_.hw_irq_suppressed);
    m.counter("hw.doorbells_dropped")->Add(stats_.hw_doorbells_dropped);
    m.counter("hw.reads_floated")->Add(stats_.hw_reads_floated);
    m.counter("hw.writes_dropped")->Add(stats_.hw_writes_dropped);
    m.counter("hw.removal_events")->Add(stats_.hw_removal_events);
  }
  m.counter("vm.block_cache.blocks_decoded")->Add(stats_.blocks_decoded);
  m.counter("vm.block_cache.hits")->Add(stats_.block_cache_hits);
  m.counter("vm.block_cache.fallback_fetches")->Add(stats_.block_cache_fallback_fetches);
  m.counter("vm.block_cache.hot_blocks")->Add(stats_.block_cache_hot_blocks);
  if (superblocks_ != nullptr) {
    m.counter("vm.superblock.compiled")->Add(stats_.superblocks_compiled);
    m.counter("vm.superblock.ops_lowered")->Add(stats_.superblock_ops_lowered);
    m.counter("vm.superblock.entries")->Add(stats_.superblock_entries);
    m.counter("vm.superblock.chains")->Add(stats_.superblock_chains);
    m.counter("vm.superblock.side_exits")->Add(stats_.superblock_side_exits);
    m.counter("vm.superblock.instructions")->Add(stats_.superblock_instructions);
  }
  // Path-explosion control family: merge/kill outcomes plus the fork
  // profiler's site count (the table itself rides in EngineStats).
  m.counter("search.states_merged")->Add(stats_.states_merged);
  m.counter("search.loop_kills")->Add(stats_.loop_kills);
  m.counter("search.edge_kills")->Add(stats_.edge_kills);
  m.gauge("search.fork_sites")->Set(static_cast<int64_t>(stats_.fork_sites.size()));
  m.gauge("engine.peak_state_bytes")->Set(static_cast<int64_t>(stats_.peak_state_bytes));
  const SolverStats& ss = solver_.stats();
  m.counter("solver.queries")->Add(ss.queries);
  m.counter("solver.sat_calls")->Add(ss.sat_calls);
  m.counter("solver.cache_hits")->Add(ss.cache_hits);
  m.counter("solver.model_reuse_hits")->Add(ss.model_reuse_hits);
  m.counter("solver.quick_decides")->Add(ss.quick_decides);
  m.counter("solver.timeouts")->Add(ss.query_timeouts);
  m.counter("solver.aborted_queries")->Add(ss.aborted_queries);
  if (config_.solver.shared_cache != nullptr) {
    m.counter("solver.shared_cache.hits")->Add(ss.shared_cache_hits);
    m.counter("solver.shared_cache.fastpath_hits")->Add(ss.shared_cache_fastpath_hits);
    m.counter("solver.shared_cache.misses")->Add(ss.shared_cache_misses);
    m.counter("solver.shared_cache.stores")->Add(ss.shared_cache_stores);
    m.counter("solver.shared_cache.verify_failures")->Add(ss.shared_cache_verify_failures);
  }
}

void Engine::StepState(ExecutionState& st) {
  if (!st.alive()) {
    return;
  }
  // Per-state instruction fuel: one runaway path must not starve the rest of
  // the exploration (or the whole run, under stop_after_first_bug).
  if (config_.max_instructions_per_state != 0 && st.steps >= config_.max_instructions_per_state) {
    ++stats_.states_evicted;
    NoteEvictedState(st);
    FinishState(st, "per-state instruction fuel exhausted");
    return;
  }
  if (st.frames.empty() || st.pc == kIdlePc) {
    ScheduleNext(st);
    return;
  }
  ExecuteBlock(st);
}

void Engine::FinishState(ExecutionState& st, const std::string& why) {
  if (!checkers_.empty()) {
    // Checker time is only attributed at state-end and kernel-event dispatch;
    // per-instruction checker hooks stay probe-free and count as interpret
    // time (the documented profiler trade-off).
    obs::ScopedPhase obs_phase(config_.profile, obs::Phase::kChecker);
    for (const auto& checker : checkers_) {
      checker->OnStateEnd(st, *this);
    }
  }
  MaybeCollectPathSeed(st, why);
  if (st.alive()) {
    st.Terminate(why);
  }
}

void Engine::MaybeCollectPathSeed(ExecutionState& st, const std::string& why) {
  // Seed derivation (src/fuzz): ask the solver for a concrete model of this
  // path — the paper's replayable concrete inputs, harvested as fuzz seeds.
  // Collection order follows state termination order, which is deterministic
  // for a single engine run; guided runs never derive seeds from themselves.
  if (config_.max_path_seeds == 0 || config_.guided ||
      path_seeds_.size() >= config_.max_path_seeds || st.constraints.empty()) {
    return;
  }
  std::vector<SolvedInput> inputs = SolveInputs(st);
  if (inputs.empty()) {
    return;
  }
  PathSeed seed;
  seed.inputs = std::move(inputs);
  seed.interrupt_schedule = st.interrupt_schedule;
  seed.alternatives = st.alternatives_taken;
  seed.workload_trail = st.workload_trail;
  seed.termination = st.alive() ? why : st.termination_reason;
  path_seeds_.push_back(std::move(seed));
}

void Engine::EvictStatesOverMemoryBudget(uint64_t current_bytes) {
  // Evict largest-delta states first; they are the most expensive to keep and
  // (being the deepest-forked) the most redundant with surviving siblings.
  // Always keep at least one live state so the run can still make progress.
  std::vector<ExecutionState*> alive;
  for (const auto& state : states_) {
    if (state->alive()) {
      alive.push_back(state.get());
    }
  }
  std::sort(alive.begin(), alive.end(), [](const ExecutionState* a, const ExecutionState* b) {
    return a->mem.DeltaSize() > b->mem.DeltaSize();
  });
  size_t remaining = alive.size();
  for (ExecutionState* st : alive) {
    if (remaining <= 1 || current_bytes <= config_.max_state_bytes) {
      break;
    }
    uint64_t bytes = st->mem.DeltaSize() * 16 + st->constraints.size() * 8 +
                     sizeof(ExecutionState);
    ++stats_.states_evicted;
    NoteEvictedState(*st);
    FinishState(*st, "evicted under memory pressure");
    --remaining;
    current_bytes -= std::min(current_bytes, bytes);
  }
}

bool Engine::ShouldInjectFault(ExecutionState& st, FaultClass cls, const char* api) {
  size_t idx = static_cast<size_t>(cls);
  // The occurrence index advances on EVERY query, injected or not — that is
  // what makes (class, occurrence) a stable coordinate across passes and
  // guided replay.
  uint32_t occurrence = st.kernel.fault_occurrences[idx]++;
  fault_site_profile_.max_occurrences[idx] =
      std::max(fault_site_profile_.max_occurrences[idx], occurrence + 1);
  if (!config_.fault_plan.ShouldFail(cls, occurrence)) {
    return false;
  }
  ++stats_.faults_injected;
  obs::TraceInstant("engine.fault_injected", "class", FaultClassName(cls));
  InjectedFault fault;
  fault.cls = cls;
  fault.occurrence = occurrence;
  fault.api = api;
  st.kernel.faults_injected.push_back(fault);
  KernelEvent ev;
  ev.kind = KernelEvent::Kind::kFaultInjected;
  ev.a = static_cast<uint32_t>(cls);
  ev.b = occurrence;
  ev.text = api;
  EmitKernelEvent(st, ev);
  return true;
}

void Engine::RecordHwFault(ExecutionState& st, HwFaultKind kind, uint32_t index) {
  ++stats_.hw_faults_injected;
  obs::TraceInstant("engine.hw_fault_injected", "kind", HwFaultKindName(kind));
  InjectedHwFault fault;
  fault.kind = kind;
  fault.index = index;
  st.kernel.hw_faults_injected.push_back(fault);
  KernelEvent ev;
  ev.kind = KernelEvent::Kind::kHwFaultInjected;
  ev.a = static_cast<uint32_t>(kind);
  ev.b = index;
  ev.text = HwFaultKindName(kind);
  EmitKernelEvent(st, ev);
}

void Engine::RemoveDevice(ExecutionState& st, HwFaultKind kind, uint32_t index) {
  ++stats_.hw_removals;
  st.kernel.device_removed = true;
  RecordHwFault(st, kind, index);
  if (!st.alive()) {
    return;
  }
  KernelEvent ev;
  ev.kind = KernelEvent::Kind::kDeviceRemoved;
  ev.a = index;
  EmitKernelEvent(st, ev);
}

// ---------------------------------------------------------------------------
// Scheduler: workload steps, DPCs, timers (§4.3)
// ---------------------------------------------------------------------------

namespace {

// Scratch allocation for request buffers handed into entry points.
// Request/playback buffers come from user space and are pageable; packet
// descriptors and payloads are non-paged (DMA-capable).
uint32_t AllocScratch(KernelState& ks, uint32_t size, int slot, bool pageable) {
  uint32_t aligned = (size + 15u) & ~15u;
  uint32_t addr = ks.scratch_cursor;
  if (addr + aligned > kKernelScratchLimit) {
    return 0;
  }
  ks.scratch_cursor += aligned;
  MemoryGrant grant;
  grant.begin = addr;
  grant.end = addr + size;
  grant.revoke_on_entry_exit = true;
  grant.granted_in_slot = slot;
  grant.pageable = pageable;
  ks.grants.push_back(grant);
  return addr;
}

}  // namespace

void Engine::ScheduleNext(ExecutionState& st) {
  KernelState& ks = st.kernel;
  if (ks.crashed) {
    st.Terminate("kernel crashed");
    return;
  }

  // PnP load: invoke the driver's load entry point (DriverEntry) first.
  if (!ks.driver_entry_invoked) {
    ks.driver_entry_invoked = true;
    InvokeGuestFunction(st, loaded_.entry_point, {}, ExecContextKind::kEntryPoint, -1);
    return;
  }
  if (!ks.driver_registered) {
    FinishState(st, "driver did not register entry points");
    return;
  }

  // Pending DPCs run before new workload items (they fire "between" driver
  // invocations, at DISPATCH).
  if (!ks.dpc_queue.empty()) {
    auto [fn, ctx_arg] = ks.dpc_queue.front();
    ks.dpc_queue.erase(ks.dpc_queue.begin());
    InvokeGuestFunction(st, fn, {Value::Concrete(ctx_arg)}, ExecContextKind::kDpc, -1);
    return;
  }

  // Armed timers fire once.
  for (auto& [addr, timer] : ks.timers) {
    if (timer.armed && timer.initialized && timer.fn != 0) {
      timer.armed = false;
      InvokeGuestFunction(st, timer.fn, {Value::Concrete(timer.ctx_arg)},
                          ExecContextKind::kTimer, -1);
      return;
    }
  }

  // Surprise removal (hardware fault plane): the PnP event preempts the rest
  // of the exerciser script — the kernel tears the stack down by delivering
  // Halt exactly once, the same way a real bus driver would on hot-unplug.
  if (ks.device_removed && !ks.removal_halt_delivered) {
    ks.removal_halt_delivered = true;
    ks.workload_pos = ks.workload.size();
    uint32_t halt_fn = ks.entry_points[static_cast<size_t>(kEpHalt)];
    if (!ks.halt_invoked && halt_fn != 0 && ks.init_succeeded) {
      ++stats_.hw_removal_events;
      ks.halt_invoked = true;
      InvokeGuestFunction(st, halt_fn, {}, ExecContextKind::kEntryPoint, kEpHalt);
      return;
    }
  }

  // Next workload step.
  while (ks.workload_pos < ks.workload.size()) {
    const WorkloadStep step = ks.workload[ks.workload_pos++];
    if (step.only_if_init_ok && !ks.init_succeeded) {
      continue;
    }
    uint32_t fn = ks.entry_points[static_cast<size_t>(step.slot)];
    if (fn == 0) {
      continue;  // driver does not implement this entry
    }
    if (step.slot == kEpHalt) {
      ks.halt_invoked = true;
    }
    std::vector<Value> args;
    switch (step.plan) {
      case WorkloadStep::ArgPlan::kNone:
        break;
      case WorkloadStep::ArgPlan::kOidRequest: {
        uint32_t buf = AllocScratch(ks, step.buffer_len, step.slot, /*pageable=*/true);
        for (uint32_t i = 0; i < step.buffer_len; ++i) {
          WriteMemValueRaw(st, buf + i, Value::Concrete(0), 1);
        }
        args = {Value::Concrete(step.param), Value::Concrete(buf),
                Value::Concrete(step.buffer_len)};
        break;
      }
      case WorkloadStep::ArgPlan::kSendPacket: {
        uint32_t desc = AllocScratch(ks, 16 + step.buffer_len, step.slot, /*pageable=*/false);
        uint32_t payload = desc + 16;
        WriteMemValueRaw(st, desc + 0, Value::Concrete(payload), 4);
        WriteMemValueRaw(st, desc + 4, Value::Concrete(step.buffer_len), 4);
        WriteMemValueRaw(st, desc + 8, Value::Concrete(0), 4);
        WriteMemValueRaw(st, desc + 12, Value::Concrete(0), 4);
        for (uint32_t i = 0; i < step.buffer_len; ++i) {
          WriteMemValueRaw(st, payload + i, Value::Concrete(0x41), 1);
        }
        args = {Value::Concrete(desc), Value::Concrete(step.buffer_len)};
        break;
      }
      case WorkloadStep::ArgPlan::kWriteBuffer: {
        uint32_t buf = AllocScratch(ks, step.buffer_len, step.slot, /*pageable=*/true);
        for (uint32_t i = 0; i < step.buffer_len; ++i) {
          WriteMemValueRaw(st, buf + i, Value::Concrete(0x42), 1);
        }
        args = {Value::Concrete(buf), Value::Concrete(step.buffer_len)};
        break;
      }
      case WorkloadStep::ArgPlan::kDiagCode:
        args = {Value::Concrete(step.param)};
        break;
    }
    InvokeGuestFunction(st, fn, args, ExecContextKind::kEntryPoint, step.slot);
    return;
  }

  FinishState(st, "workload complete");
}

void Engine::InvokeGuestFunction(ExecutionState& st, uint32_t fn, const std::vector<Value>& args,
                                 ExecContextKind kind, int entry_slot) {
  DDT_CHECK(args.size() <= 4);
  ExecutionState::Frame frame;
  frame.kind = kind;
  frame.entry_slot = entry_slot;
  frame.saved_regs = st.regs;
  frame.saved_pc = st.pc;
  frame.saved_irql = st.kernel.irql;
  bool top_level = st.frames.empty();
  st.frames.push_back(frame);

  if (top_level) {
    // Fresh invocation from the scheduler: clean register file.
    st.regs.fill(Value::Concrete(0));
    st.SetReg(kRegSp, Value::Concrete(kDriverStackTop - 64));
  }
  for (size_t i = 0; i < args.size(); ++i) {
    st.SetReg(static_cast<int>(i), args[i]);
  }
  st.SetReg(kRegLr, Value::Concrete(kMagicReturnAddress));
  st.pc = fn;
  st.steps_in_frame = 0;

  switch (kind) {
    case ExecContextKind::kIsr:
      st.kernel.irql = Irql::kDevice;
      break;
    case ExecContextKind::kDpc:
    case ExecContextKind::kTimer:
      st.kernel.irql = Irql::kDispatch;
      break;
    default:
      break;
  }

  if (kind == ExecContextKind::kEntryPoint) {
    ++stats_.entry_invocations;
    st.kernel.current_entry_slot = entry_slot;
    st.workload_trail.push_back(static_cast<uint32_t>(entry_slot));
    TraceEvent ev;
    ev.kind = TraceEvent::Kind::kEntryEnter;
    ev.pc = fn;
    ev.a = static_cast<uint32_t>(entry_slot);
    st.trace.Append(ev);
    KernelEvent kev;
    kev.kind = KernelEvent::Kind::kEntryEnter;
    kev.a = static_cast<uint32_t>(entry_slot);
    EmitKernelEvent(st, kev);
    if (entry_slot >= 0) {
      RunEntryAnnotations(st, entry_slot);
    }
  }
  CrossBoundary(st);
}

void Engine::RunEntryAnnotations(ExecutionState& st, int slot) {
  const auto& annotations = annotations_.For(EntryAnnotationKey(slot));
  if (annotations.empty()) {
    return;
  }
  EngineKernelContext kc(this, &st);
  for (const auto& annotation : annotations) {
    annotation->OnCall(kc);
    if (!st.alive()) {
      return;
    }
  }
}

void Engine::HandleMagicReturn(ExecutionState& st) {
  DDT_CHECK(!st.frames.empty());
  ExecutionState::Frame frame = st.frames.back();

  if (frame.kind == ExecContextKind::kEntryPoint) {
    uint32_t status = ConcretizeValue(st, st.Reg(0), "entry-status");
    if (!st.alive()) {
      return;
    }
    st.kernel.last_entry_status = status;
    if (frame.entry_slot == kEpInitialize) {
      st.kernel.init_succeeded = status == kStatusSuccess;
    }
    TraceEvent ev;
    ev.kind = TraceEvent::Kind::kEntryExit;
    ev.a = static_cast<uint32_t>(frame.entry_slot);
    ev.b = status;
    st.trace.Append(ev);
    KernelEvent kev;
    kev.kind = KernelEvent::Kind::kEntryExit;
    kev.a = static_cast<uint32_t>(frame.entry_slot);
    kev.b = status;
    EmitKernelEvent(st, kev);
    if (!st.alive()) {
      return;  // a checker flagged something at entry exit
    }
    st.kernel.RevokeGrantsForSlot(frame.entry_slot);
    st.kernel.current_entry_slot = -1;
  }

  st.frames.pop_back();
  st.regs = frame.saved_regs;
  st.pc = frame.saved_pc;
  st.kernel.irql = frame.saved_irql;
  st.steps_in_frame = 0;
  CrossBoundary(st);
}

// ---------------------------------------------------------------------------
// Symbolic interrupts (§3.3)
// ---------------------------------------------------------------------------

void Engine::CrossBoundary(ExecutionState& st) {
  if (!st.alive()) {
    return;
  }
  uint32_t crossing = st.kernel.boundary_crossings++;
  hw_site_profile_.max_crossings = std::max(hw_site_profile_.max_crossings, crossing + 1);

  // Interrupt drought: from this crossing on, the device goes silent — every
  // delivery that would otherwise happen is withheld.
  if (!st.kernel.hw_irq_drought &&
      config_.fault_plan.ShouldTriggerHw(HwFaultKind::kIrqDrought, crossing)) {
    st.kernel.hw_irq_drought = true;
    RecordHwFault(st, HwFaultKind::kIrqDrought, crossing);
    if (!st.alive()) {
      return;
    }
  }
  bool hw_silent = st.kernel.device_removed || st.kernel.hw_irq_drought;

  if (!config_.enable_symbolic_interrupts) {
    // Concrete modes: deliver per the forced schedule.
    bool scheduled = std::find(config_.forced_interrupt_schedule.begin(),
                               config_.forced_interrupt_schedule.end(),
                               crossing) != config_.forced_interrupt_schedule.end();
    if (scheduled && st.kernel.isr_registered && !st.InContext(ExecContextKind::kIsr)) {
      if (hw_silent) {
        ++stats_.hw_irq_suppressed;
      } else {
        DeliverIsr(st, crossing);
      }
    }
    return;
  }

  // Interrupt storm: the device interrupts at this crossing whether the path
  // budget allows it or not — delivered in place (every path sees it), not as
  // a fork. Guided replays reproduce the delivery through the recorded
  // interrupt schedule instead, so storms are not re-forced there.
  if (!config_.guided && !hw_silent &&
      config_.fault_plan.ShouldTriggerHw(HwFaultKind::kIrqStorm, crossing) &&
      st.kernel.isr_registered && !st.InContext(ExecContextKind::kIsr)) {
    ++stats_.hw_irq_storms;
    RecordHwFault(st, HwFaultKind::kIrqStorm, crossing);
    if (st.alive()) {
      DeliverIsr(st, crossing);
    }
    return;
  }

  if (st.kernel.isr_registered && st.device->InterruptPossible() &&
      st.kernel.interrupts_injected < config_.max_interrupts_per_path &&
      !st.InContext(ExecContextKind::kIsr) && states_.size() < config_.max_states &&
      st.depth < config_.max_fork_depth) {
    if (hw_silent) {
      ++stats_.hw_irq_suppressed;
      return;
    }
    std::unique_ptr<ExecutionState> child = CloneState(st);
    ++stats_.forks;
    ++stats_.interrupts_injected;
    obs::TraceInstant("engine.fork", "kind", "isr");
    StampForkChild(st, *child);
    DeliverIsr(*child, crossing);
    AddState(std::move(child));
  }
}

void Engine::DeliverIsr(ExecutionState& st, uint32_t crossing_index) {
  uint32_t delivery_index = st.kernel.irq_deliveries++;
  hw_site_profile_.max_interrupts =
      std::max(hw_site_profile_.max_interrupts, delivery_index + 1);
  // The schedule records the crossing even when removal preempts the ISR:
  // replay re-enters DeliverIsr here and the replayed plan re-triggers the
  // removal at the same delivery index.
  st.interrupt_schedule.push_back(crossing_index);
  if (!st.kernel.device_removed &&
      config_.fault_plan.ShouldTriggerHw(HwFaultKind::kRemovalAtInterrupt, delivery_index)) {
    // Hot-unplug at the moment the interrupt would have fired: no ISR runs,
    // and the PnP removal event reaches the exerciser instead.
    RemoveDevice(st, HwFaultKind::kRemovalAtInterrupt, delivery_index);
    return;
  }
  st.kernel.interrupts_injected++;
  TraceEvent ev;
  ev.kind = TraceEvent::Kind::kInterrupt;
  ev.pc = st.pc;
  ev.a = crossing_index;
  st.trace.Append(ev);
  KernelEvent kev;
  kev.kind = KernelEvent::Kind::kInterruptInjected;
  kev.a = crossing_index;
  EmitKernelEvent(st, kev);
  InvokeGuestFunction(st, st.kernel.isr_fn, {Value::Concrete(st.kernel.isr_ctx)},
                      ExecContextKind::kIsr, -1);
}

// ---------------------------------------------------------------------------
// Interpreter
// ---------------------------------------------------------------------------

namespace {
constexpr int kQuantumInstructions = 64;
}  // namespace

void Engine::ExecuteBlock(ExecutionState& st) {
  for (int i = 0; i < kQuantumInstructions; ++i) {
    if (!st.alive() || stop_requested_) {
      return;
    }
    // Re-check the wall budget inside the quantum: a single instruction can
    // hide arbitrarily slow solver queries, and the governor promises the
    // run ends within a small factor of max_wall_ms.
    if ((i & 7) == 7 && BudgetExceeded()) {
      return;
    }
    // Diamond merge: this state reached the join PC its fork stamped on it.
    // It either merges with the parked sibling, parks to wait for it, or
    // dissolves the group — in the first two cases the quantum ends.
    if (st.sibling_group != 0 && st.pc == st.merge_pc && TryMergeAtPc(st)) {
      return;
    }
    if (st.pc == kMagicReturnAddress) {
      HandleMagicReturn(st);
      return;
    }
    if (st.pc == kIdlePc || st.frames.empty()) {
      return;  // back to the scheduler
    }
    if (superblocks_ != nullptr) {
      const Superblock* sb = ProbeSuperblock(st.pc);
      if (sb != nullptr) {
        int executed = RunSuperblock(st, sb, i);
        if (executed > i) {
          i = executed - 1;  // the loop increment accounts for the next slot
          continue;
        }
        // Zero instructions retired: the region side-exited before its first
        // op (symbolic operand, MMIO, ...). Tier 1 executes it below, which
        // also guarantees forward progress.
      }
    }
    if (!ExecuteInstruction(st)) {
      return;
    }
  }
}

const Superblock* Engine::ProbeSuperblock(uint32_t pc) {
  const uint32_t offset = pc - loaded_.code_begin;
  if (pc < loaded_.code_begin || offset % kInstructionSize != 0) {
    return nullptr;
  }
  const size_t slot = offset / kInstructionSize;
  // Probe only at CFG block leaders: one counter bump per block entry, and
  // the per-instruction cost of tier-2 dispatch stays a bitmap load.
  if (slot >= block_leader_slots_.size() || block_leader_slots_[slot] == 0) {
    return nullptr;
  }
  const uint32_t threshold = std::max<uint32_t>(config_.superblock_hot_threshold, 1);
  const uint32_t count = block_cache_->NoteBlockEntry(pc, threshold);
  const Superblock* sb = superblocks_->AtSlot(slot);
  if (sb == nullptr && count == threshold) {
    sb = superblocks_->Compile(pc, SuperblockCache::Limits());
  }
  if (sb != nullptr) {
    ++stats_.superblock_entries;
  }
  return sb;
}

// ---------------------------------------------------------------------------
// Tier-2 threaded-code executor.
//
// Each SbOp body follows one contract: perform every check that could hand
// the instruction back to tier 1 *before* SB_BEGIN_INSN (so a side exit is an
// exact instruction boundary: nothing counted, traced, or mutated), then
// count/trace/check exactly as ExecuteInstruction does, then apply the
// pre-lowered effect. st.pc is therefore always the next instruction to
// execute whenever this function returns, and the tier-1 interpreter resumes
// with identical semantics.
//
// On GCC/Clang the dispatch loop is threaded code over a computed-goto label
// table generated from DDT_SB_KIND_LIST (same list that defines SbKind, so
// order can't drift); elsewhere it degrades to a switch.
// ---------------------------------------------------------------------------

#if defined(__GNUC__) || defined(__clang__)
#define DDT_SB_THREADED 1
#else
#define DDT_SB_THREADED 0
#endif

#if DDT_SB_THREADED
#define SB_CASE(name) lbl_##name
#define SB_DISPATCH()                                 \
  do {                                                \
    op = &ops[ip];                                    \
    goto* kSbLabels[static_cast<size_t>(op->kind)];   \
  } while (0)
#else
#define SB_CASE(name) case SbKind::name
#define SB_DISPATCH() goto sb_dispatch
#endif

// Pre-instruction hand-off to tier 1 (the instruction has not happened yet).
#define SB_SIDE_EXIT()                \
  do {                                \
    ++stats_.superblock_side_exits;   \
    st.pc = op->pc;                   \
    return i;                         \
  } while (0)

// The per-instruction prologue, identical in order and cadence to the tier-1
// quantum loop + ExecuteInstruction: quantum/budget/liveness boundary checks,
// then count, cover, trace, and checker dispatch.
#define SB_BEGIN_INSN()                                                      \
  do {                                                                       \
    if (!st.alive() || stop_requested_ || i >= kQuantumInstructions ||       \
        ((i & 7) == 7 && BudgetExceeded())) {                                \
      st.pc = op->pc;                                                        \
      return i;                                                              \
    }                                                                        \
    ++i;                                                                     \
    ++stats_.instructions;                                                   \
    ++stats_.superblock_instructions;                                        \
    ++st.steps;                                                              \
    ++st.steps_in_frame;                                                     \
    st.pc = op->pc;                                                          \
    if ((op->flags & kSbLeader) != 0) {                                      \
      NoteCoverage(st, op->pc);                                              \
      if (!st.alive()) { /* edge/loop killer fired */                        \
        return i;                                                            \
      }                                                                      \
    }                                                                        \
    st.trace.AppendExec(op->pc);                                             \
    if (!checkers_.empty()) {                                                \
      for (const auto& checker : checkers_) {                                \
        checker->OnInstruction(st, op->pc, *this);                           \
        if (!st.alive()) {                                                   \
          return i;                                                          \
        }                                                                    \
      }                                                                      \
    }                                                                        \
  } while (0)

// Register write honoring the zero-register convention (SetReg inlined).
#define SB_SET_RD(value)                 \
  do {                                   \
    if (op->rd != kRegZero) {            \
      regs[op->rd] = (value);            \
    }                                    \
  } while (0)

// External transfer: chain straight into the target superblock when one is
// compiled, otherwise return to the dispatcher. Targets are compile-time
// validated slots (or pc + 8), so the slot arithmetic cannot underflow.
#define SB_EXTERNAL(target_expr)                                             \
  do {                                                                       \
    const uint32_t sb_target = (target_expr);                                \
    const Superblock* sb_next =                                              \
        superblocks_->AtSlot((sb_target - code_begin) / kInstructionSize);   \
    if (sb_next != nullptr) {                                                \
      ++stats_.superblock_chains;                                            \
      sb = sb_next;                                                          \
      ops = sb->ops.data();                                                  \
      ip = 0;                                                                \
      SB_DISPATCH();                                                         \
    }                                                                        \
    st.pc = sb_target;                                                       \
    return i;                                                                \
  } while (0)

#define SB_ALU_RR(name, expr)                        \
  SB_CASE(name) : {                                  \
    const Value& av = regs[op->ra];                  \
    const Value& bv = regs[op->rb];                  \
    if (av.IsSymbolic() || bv.IsSymbolic()) {        \
      SB_SIDE_EXIT();                                \
    }                                                \
    const uint32_t x = av.concrete();                \
    const uint32_t y = bv.concrete();                \
    SB_BEGIN_INSN();                                 \
    SB_SET_RD(Value::Concrete(expr));                \
    ++ip;                                            \
    SB_DISPATCH();                                   \
  }

#define SB_ALU_RI(name, expr)                        \
  SB_CASE(name) : {                                  \
    const Value& av = regs[op->ra];                  \
    if (av.IsSymbolic()) {                           \
      SB_SIDE_EXIT();                                \
    }                                                \
    const uint32_t x = av.concrete();                \
    const uint32_t y = op->imm;                      \
    SB_BEGIN_INSN();                                 \
    SB_SET_RD(Value::Concrete(expr));                \
    ++ip;                                            \
    SB_DISPATCH();                                   \
  }

#define SB_CMP_RR(name, expr) SB_ALU_RR(name, (expr) ? 1u : 0u)
#define SB_CMP_RI(name, expr) SB_ALU_RI(name, (expr) ? 1u : 0u)

// Division side-exits on a zero divisor before anything is counted: the
// tier-1 guard owns the (solver-backed) division-by-zero bug report.
#define SB_DIV_RR(name, expr)                        \
  SB_CASE(name) : {                                  \
    const Value& av = regs[op->ra];                  \
    const Value& bv = regs[op->rb];                  \
    if (av.IsSymbolic() || bv.IsSymbolic()) {        \
      SB_SIDE_EXIT();                                \
    }                                                \
    const uint32_t x = av.concrete();                \
    const uint32_t y = bv.concrete();                \
    if (y == 0) {                                    \
      SB_SIDE_EXIT();                                \
    }                                                \
    SB_BEGIN_INSN();                                 \
    SB_SET_RD(Value::Concrete(expr));                \
    ++ip;                                            \
    SB_DISPATCH();                                   \
  }

int Engine::RunSuperblock(ExecutionState& st, const Superblock* sb, int i) {
  const SbOp* ops = sb->ops.data();
  const SbOp* op = ops;
  size_t ip = 0;
  Value* const regs = st.regs.data();
  const uint32_t code_begin = loaded_.code_begin;
  const uint32_t code_end = loaded_.code_end;

#if DDT_SB_THREADED
#define SB_LABEL_ADDR(name) &&lbl_##name,
  static const void* const kSbLabels[] = {DDT_SB_KIND_LIST(SB_LABEL_ADDR)};
#undef SB_LABEL_ADDR
  SB_DISPATCH();
#else
sb_dispatch:
  op = &ops[ip];
  switch (op->kind) {
#endif

  // --- synthetic ops (zero guest instructions) ---
  SB_CASE(kJump) : {  // fall-into-region glue; target always internal
    ip = static_cast<size_t>(op->taken);
    SB_DISPATCH();
  }
  SB_CASE(kExit) : {  // region budget boundary; not a semantic side exit
    SB_EXTERNAL(op->imm);
  }
  SB_CASE(kSideExit) : { SB_SIDE_EXIT(); }

  // --- moves ---
  SB_CASE(kNop) : {
    SB_BEGIN_INSN();
    ++ip;
    SB_DISPATCH();
  }
  SB_CASE(kMovR) : {  // copies symbolic values exactly; no side exit needed
    SB_BEGIN_INSN();
    SB_SET_RD(regs[op->ra]);
    ++ip;
    SB_DISPATCH();
  }
  SB_CASE(kMovI) : {
    SB_BEGIN_INSN();
    SB_SET_RD(Value::Concrete(op->imm));
    ++ip;
    SB_DISPATCH();
  }
  SB_CASE(kNotR) : {
    const Value& av = regs[op->ra];
    if (av.IsSymbolic()) {
      SB_SIDE_EXIT();
    }
    const uint32_t x = av.concrete();
    SB_BEGIN_INSN();
    SB_SET_RD(Value::Concrete(~x));
    ++ip;
    SB_DISPATCH();
  }
  SB_CASE(kNegR) : {
    const Value& av = regs[op->ra];
    if (av.IsSymbolic()) {
      SB_SIDE_EXIT();
    }
    const uint32_t x = av.concrete();
    SB_BEGIN_INSN();
    SB_SET_RD(Value::Concrete(0 - x));
    ++ip;
    SB_DISPATCH();
  }

  // --- ALU (concrete semantics identical to ExecuteInstruction's lambdas) ---
  SB_ALU_RR(kAddRR, x + y)
  SB_ALU_RI(kAddRI, x + y)
  SB_ALU_RR(kSubRR, x - y)
  SB_ALU_RI(kSubRI, x - y)
  SB_ALU_RR(kMulRR, x * y)
  SB_ALU_RI(kMulRI, x * y)
  SB_ALU_RR(kAndRR, x & y)
  SB_ALU_RI(kAndRI, x & y)
  SB_ALU_RR(kOrRR, x | y)
  SB_ALU_RI(kOrRI, x | y)
  SB_ALU_RR(kXorRR, x ^ y)
  SB_ALU_RI(kXorRI, x ^ y)
  SB_ALU_RR(kShlRR, y >= 32 ? 0 : x << y)
  SB_ALU_RI(kShlRI, y >= 32 ? 0 : x << y)
  SB_ALU_RR(kLShrRR, y >= 32 ? 0 : x >> y)
  SB_ALU_RI(kLShrRI, y >= 32 ? 0 : x >> y)
  SB_ALU_RR(kAShrRR,
            static_cast<uint32_t>(static_cast<int32_t>(x) >> (y >= 32 ? 31 : y)))
  SB_ALU_RI(kAShrRI,
            static_cast<uint32_t>(static_cast<int32_t>(x) >> (y >= 32 ? 31 : y)))

  SB_CMP_RR(kSeqRR, x == y)
  SB_CMP_RI(kSeqRI, x == y)
  SB_CMP_RR(kSneRR, x != y)
  SB_CMP_RI(kSneRI, x != y)
  SB_CMP_RR(kSltURR, x < y)
  SB_CMP_RI(kSltURI, x < y)
  SB_CMP_RR(kSltSRR, static_cast<int32_t>(x) < static_cast<int32_t>(y))
  SB_CMP_RI(kSltSRI, static_cast<int32_t>(x) < static_cast<int32_t>(y))
  SB_CMP_RR(kSleURR, x <= y)
  SB_CMP_RI(kSleURI, x <= y)
  SB_CMP_RR(kSleSRR, static_cast<int32_t>(x) <= static_cast<int32_t>(y))
  SB_CMP_RI(kSleSRI, static_cast<int32_t>(x) <= static_cast<int32_t>(y))

  SB_DIV_RR(kUDivRR, x / y)
  SB_CASE(kUDivRI) : {
    const Value& av = regs[op->ra];
    if (av.IsSymbolic()) {
      SB_SIDE_EXIT();
    }
    const uint32_t x = av.concrete();
    const uint32_t y = op->imm;
    if (y == 0) {
      SB_SIDE_EXIT();
    }
    SB_BEGIN_INSN();
    SB_SET_RD(Value::Concrete(x / y));
    ++ip;
    SB_DISPATCH();
  }
  SB_DIV_RR(kSDivRR,
            (static_cast<int32_t>(x) == INT32_MIN && static_cast<int32_t>(y) == -1)
                ? x
                : static_cast<uint32_t>(static_cast<int32_t>(x) /
                                        static_cast<int32_t>(y)))
  SB_DIV_RR(kURemRR, x % y)

  // --- memory ---
  SB_CASE(kLoad) : {
    const Value& av = regs[op->ra];
    if (av.IsSymbolic()) {
      SB_SIDE_EXIT();  // symbolic address: tier 1 resolves/forks
    }
    const uint32_t addr = av.concrete() + op->imm;
    if (IsMmioAddr(addr)) {
      SB_SIDE_EXIT();  // device read: symbolic hardware + trace semantics
    }
    SB_BEGIN_INSN();
    bool ok;
    Value loaded = ReadMem(st, addr, op->mem_size, op->pc, /*addr_was_sym=*/false,
                           nullptr, &ok);
    if (!ok) {
      return i;
    }
    if (op->mem_size < 4) {
      const bool sign = (op->flags & kSbLoadSigned) != 0;
      if (loaded.IsConcrete()) {
        uint32_t v = loaded.concrete();
        if (sign) {
          v = static_cast<uint32_t>(
              SignExtend(v, static_cast<uint8_t>(op->mem_size * 8)));
        }
        loaded = Value::Concrete(v);
      } else {
        ExprRef e = loaded.symbolic();
        loaded = Value::Symbolic(sign ? ctx_.SExt(e, 32) : ctx_.ZExt(e, 32));
      }
    }
    SB_SET_RD(loaded);
    ++ip;
    SB_DISPATCH();
  }
  SB_CASE(kStore) : {
    const Value& av = regs[op->ra];
    if (av.IsSymbolic()) {
      SB_SIDE_EXIT();
    }
    const uint32_t addr = av.concrete() + op->imm;
    if (IsMmioAddr(addr)) {
      SB_SIDE_EXIT();
    }
    // Write-barrier trip (same predicate as WriteMemValueRaw): tier 1 owns
    // the immutable-code bug report and the store suppression.
    if (static_cast<uint64_t>(addr) + op->mem_size > code_begin && addr < code_end) {
      SB_SIDE_EXIT();
    }
    SB_BEGIN_INSN();
    if (!WriteMem(st, addr, op->mem_size, regs[op->rb], op->pc,
                  /*addr_was_sym=*/false, nullptr)) {
      return i;
    }
    ++ip;
    SB_DISPATCH();
  }
  SB_CASE(kPush) : {
    const Value& spv = regs[kRegSp];
    if (spv.IsSymbolic()) {
      SB_SIDE_EXIT();
    }
    const uint32_t new_sp = spv.concrete() - 4;
    if (IsMmioAddr(new_sp)) {
      SB_SIDE_EXIT();
    }
    if (static_cast<uint64_t>(new_sp) + 4 > code_begin && new_sp < code_end) {
      SB_SIDE_EXIT();
    }
    SB_BEGIN_INSN();
    const Value pushed = regs[op->rb];  // read rb before sp moves (rb may be sp)
    regs[kRegSp] = Value::Concrete(new_sp);
    if (!WriteMem(st, new_sp, 4, pushed, op->pc, /*addr_was_sym=*/false, nullptr)) {
      return i;
    }
    ++ip;
    SB_DISPATCH();
  }
  SB_CASE(kPop) : {
    const Value& spv = regs[kRegSp];
    if (spv.IsSymbolic()) {
      SB_SIDE_EXIT();
    }
    const uint32_t sp = spv.concrete();
    if (IsMmioAddr(sp)) {
      SB_SIDE_EXIT();
    }
    SB_BEGIN_INSN();
    bool ok;
    Value v = ReadMem(st, sp, 4, op->pc, /*addr_was_sym=*/false, nullptr, &ok);
    if (!ok) {
      return i;
    }
    SB_SET_RD(v);  // rd-then-sp order matches the interpreter (rd may be sp)
    regs[kRegSp] = Value::Concrete(sp + 4);
    ++ip;
    SB_DISPATCH();
  }

  // --- control (targets statically validated by the compiler) ---
  SB_CASE(kBrOp) : {
    SB_BEGIN_INSN();
    if (op->taken >= 0) {
      ip = static_cast<size_t>(op->taken);
      SB_DISPATCH();
    }
    SB_EXTERNAL(op->imm);
  }
  SB_CASE(kBzOp) : {
    const Value& av = regs[op->ra];
    if (av.IsSymbolic()) {
      SB_SIDE_EXIT();  // fork site: tier 1 runs HandleBranch
    }
    const bool take = av.concrete() == 0;
    SB_BEGIN_INSN();
    if (take) {
      if (op->taken >= 0) {
        ip = static_cast<size_t>(op->taken);
        SB_DISPATCH();
      }
      SB_EXTERNAL(op->imm);
    }
    if (op->fall >= 0) {
      ip = static_cast<size_t>(op->fall);
      SB_DISPATCH();
    }
    SB_EXTERNAL(op->pc + kInstructionSize);
  }
  SB_CASE(kBnzOp) : {
    const Value& av = regs[op->ra];
    if (av.IsSymbolic()) {
      SB_SIDE_EXIT();
    }
    const bool take = av.concrete() != 0;
    SB_BEGIN_INSN();
    if (take) {
      if (op->taken >= 0) {
        ip = static_cast<size_t>(op->taken);
        SB_DISPATCH();
      }
      SB_EXTERNAL(op->imm);
    }
    if (op->fall >= 0) {
      ip = static_cast<size_t>(op->fall);
      SB_DISPATCH();
    }
    SB_EXTERNAL(op->pc + kInstructionSize);
  }
  SB_CASE(kCallOp) : {
    SB_BEGIN_INSN();
    regs[kRegLr] = Value::Concrete(op->pc + kInstructionSize);
    if (op->taken >= 0) {
      ip = static_cast<size_t>(op->taken);
      SB_DISPATCH();
    }
    SB_EXTERNAL(op->imm);
  }

#if !DDT_SB_THREADED
  }
  // Unreachable: every case transfers or returns.
  st.pc = op->pc;
  return i;
#endif
}

#undef SB_CASE
#undef SB_DISPATCH
#undef SB_SIDE_EXIT
#undef SB_BEGIN_INSN
#undef SB_SET_RD
#undef SB_EXTERNAL
#undef SB_ALU_RR
#undef SB_ALU_RI
#undef SB_CMP_RR
#undef SB_CMP_RI
#undef SB_DIV_RR
#undef DDT_SB_THREADED

Value Engine::ReadMemValueRaw(ExecutionState& st, uint32_t addr, unsigned size) {
  // Compose a value from bytes, least significant first. All-concrete is the
  // fast path; otherwise build a Concat chain (the simplifier reassembles
  // whole variables split by earlier writes).
  bool all_concrete = true;
  std::array<MemByte, 4> bytes;
  for (unsigned i = 0; i < size; ++i) {
    bytes[i] = st.mem.ReadByte(addr + i);
    all_concrete &= !bytes[i].IsSymbolic();
  }
  if (all_concrete) {
    uint32_t value = 0;
    for (unsigned i = 0; i < size; ++i) {
      value |= static_cast<uint32_t>(bytes[i].conc) << (8 * i);
    }
    return Value::Concrete(value);
  }
  ExprRef composed = nullptr;
  for (unsigned i = 0; i < size; ++i) {
    ExprRef byte =
        bytes[i].IsSymbolic() ? bytes[i].sym : ctx_.Const(bytes[i].conc, 8);
    composed = composed == nullptr ? byte : ctx_.Concat(byte, composed);
  }
  return Value::Symbolic(composed);
}

void Engine::WriteMemValueRaw(ExecutionState& st, uint32_t addr, const Value& value,
                              unsigned size) {
  // Write barrier enforcing the decode-once invariant: no store — from the
  // driver, an annotation, or a kernel API — may land in the code segment.
  // The memory checker usually reports driver stores first (with richer
  // provenance); this backstop holds even with checkers disabled, and
  // suppresses the write so cached and in-guest code bytes can never diverge.
  if (static_cast<uint64_t>(addr) + size > loaded_.code_begin && addr < loaded_.code_end) {
    ReportBug(st, BugType::kMemoryCorruption,
              StrFormat("write barrier: %u-byte store into immutable driver code at 0x%08x",
                        size, addr),
              "driver code is decode-once immutable; the store was suppressed");
    return;
  }
  if (value.IsConcrete()) {
    uint32_t v = value.concrete();
    for (unsigned i = 0; i < size; ++i) {
      st.mem.WriteByte(addr + i, MemByte::Concrete(static_cast<uint8_t>((v >> (8 * i)) & 0xFF)));
    }
    return;
  }
  ExprRef e = value.symbolic();
  DDT_CHECK(e->width() >= size * 8 || e->width() == 8 || e->width() == 16);
  for (unsigned i = 0; i < size; ++i) {
    if (i * 8 >= e->width()) {
      st.mem.WriteByte(addr + i, MemByte::Concrete(0));
      continue;
    }
    ExprRef byte = ctx_.ExtractByte(e, i);
    if (byte->IsConst()) {
      st.mem.WriteByte(addr + i, MemByte::Concrete(static_cast<uint8_t>(byte->const_value())));
    } else {
      st.mem.WriteByte(addr + i, MemByte::Symbolic(byte));
    }
  }
}

Value Engine::MaybeGuide(const Value& value) {
  if (!config_.guided || value.IsConcrete()) {
    return value;
  }
  return Value::Concrete(GuidedEval(value.symbolic()));
}

uint32_t Engine::GuidedEval(ExprRef e) {
  Assignment assignment;
  std::vector<uint32_t> vars;
  CollectVars(e, &vars);
  for (uint32_t var : vars) {
    const VarInfo& info = ctx_.var_info(var);
    auto it = config_.guided_inputs.find(OriginKeyString(info.origin));
    assignment.Set(var, it != config_.guided_inputs.end() ? it->second : 0);
  }
  return static_cast<uint32_t>(EvalExpr(e, assignment));
}

uint32_t Engine::HintEval(ExprRef e) {
  Assignment assignment;
  std::vector<uint32_t> vars;
  CollectVars(e, &vars);
  for (uint32_t var : vars) {
    const VarInfo& info = ctx_.var_info(var);
    auto it = config_.concretization_hints.find(OriginKeyString(info.origin));
    assignment.Set(var, it != config_.concretization_hints.end() ? it->second : 0);
  }
  return static_cast<uint32_t>(EvalExpr(e, assignment));
}

std::optional<uint32_t> Engine::PickValue(ExecutionState& st, ExprRef e) {
  if (config_.guided) {
    return GuidedEval(e);
  }
  ++stats_.concretizations;
  // Promotion hints: prefer the promoted fuzz input's concrete value when it
  // is still feasible on this path, so the symbolic pass retraces the input's
  // route through concretization points. Soundness is unchanged — an
  // infeasible hint falls through to the solver's free choice.
  if (!config_.concretization_hints.empty()) {
    uint32_t hinted = HintEval(e);
    if (solver_.MayBeTrue(st.constraints, ctx_.Eq(e, ctx_.Const(hinted, e->width())))) {
      return hinted;
    }
  }
  std::optional<uint64_t> chosen = solver_.GetValue(st.constraints, e);
  if (!chosen.has_value()) {
    return std::nullopt;
  }
  return static_cast<uint32_t>(*chosen);
}

void Engine::BindConcretization(ExecutionState& st, ExprRef e, uint32_t value,
                                const std::string& reason) {
  if (config_.guided) {
    return;
  }
  ExprRef eq = ctx_.Eq(e, ctx_.Const(value, e->width()));
  st.constraints.push_back(eq);
  st.concretizations.push_back(ExecutionState::ConcretizationRecord{e, value, st.pc, reason});
  TraceEvent ev;
  ev.kind = TraceEvent::Kind::kConcretize;
  ev.pc = st.pc;
  ev.a = value;
  ev.expr = e;
  st.trace.Append(ev);
}

std::optional<uint32_t> Engine::ResolveSymbolicAddress(ExecutionState& st, ExprRef addr_expr,
                                                       unsigned size, bool is_write) {
  if (config_.guided) {
    return GuidedEval(addr_expr);
  }
  // "Accessible" is the union of: driver image, the stack at/above sp, the
  // MMIO window, live pool allocations, and kernel grants (§3.1.1's region
  // list). An N-byte access fits [lo, hi) iff lo <= a && a <= hi - N.
  const KernelState& ks = st.kernel;
  ExprRef valid = ctx_.False();
  auto add_region = [&](uint32_t lo, uint32_t hi) {
    if (hi <= lo || hi - lo < size) {
      return;
    }
    ExprRef in_region = ctx_.And(ctx_.Ule(ctx_.Const(lo, 32), addr_expr),
                                 ctx_.Ule(addr_expr, ctx_.Const(hi - size, 32)));
    valid = ctx_.Or(valid, in_region);
  };
  add_region(ks.driver.code_begin, ks.driver.code_end);
  add_region(ks.driver.data_begin, ks.driver.data_end);
  Value sp = st.Reg(kRegSp);
  if (sp.IsConcrete() && sp.concrete() >= kDriverStackBottom && sp.concrete() < kDriverStackTop) {
    add_region(sp.concrete(), kDriverStackTop);
  }
  add_region(kMmioBase, kMmioLimit);
  for (const auto& [base, alloc] : ks.pool) {
    if (alloc.alive) {
      add_region(alloc.addr, alloc.addr + alloc.size);
    }
  }
  for (const MemoryGrant& grant : ks.grants) {
    add_region(grant.begin, grant.end);
  }

  ExprRef invalid = ctx_.Not(valid);
  if (solver_.MayBeTrue(st.constraints, invalid)) {
    std::string expr_text = ExprToString(addr_expr);
    if (expr_text.size() > 160) {
      expr_text.resize(160);
      expr_text += "...";
    }
    std::string title =
        StrFormat("%s through unchecked symbolic address can leave all valid regions "
                  "(%u-byte access)",
                  is_write ? "write" : "read", size);
    std::string details = StrFormat(
        "address %s is device/input-controlled and not bounds-checked", expr_text.c_str());
    BugType type = is_write ? BugType::kMemoryCorruption : BugType::kSegfault;
    if (!solver_.MayBeTrue(st.constraints, valid)) {
      // The address is always out of bounds on this path.
      st.constraints.push_back(invalid);
      ReportBug(st, type, title, details);
      return std::nullopt;
    }
    // Report the escaping choice on a fork; this state continues in-bounds.
    if (states_.size() < config_.max_states) {
      std::unique_ptr<ExecutionState> child = CloneState(st);
      ++stats_.forks;
      StampForkChild(st, *child);
      child->constraints.push_back(invalid);
      ReportBug(*child, type, title, details);
      AddState(std::move(child));
    } else {
      ++stats_.dropped_forks;
      NoteDroppedFork(st);
      st.constraints.push_back(invalid);
      ReportBug(st, type, title, details);
      return std::nullopt;
    }
    st.constraints.push_back(valid);
  }

  std::optional<uint32_t> picked = PickValue(st, addr_expr);
  if (!picked.has_value()) {
    st.Terminate("infeasible path at address concretization");
    return std::nullopt;
  }
  BindConcretization(st, addr_expr, *picked, is_write ? "store-address" : "load-address");
  return picked;
}

uint32_t Engine::ConcretizeValue(ExecutionState& st, const Value& value,
                                 const std::string& reason) {
  if (value.IsConcrete()) {
    return value.concrete();
  }
  ExprRef e = value.symbolic();
  std::optional<uint32_t> chosen = PickValue(st, e);
  if (!chosen.has_value()) {
    st.Terminate("infeasible path at concretization");
    return 0;
  }
  BindConcretization(st, e, *chosen, reason);
  return *chosen;
}

void Engine::AddConstraintChecked(ExecutionState& st, ExprRef constraint) {
  if (config_.guided) {
    return;  // guided replays are fully concrete
  }
  if (constraint->IsFalse()) {
    st.Terminate("annotation constraint infeasible");
    return;
  }
  if (constraint->IsTrue()) {
    return;
  }
  st.constraints.push_back(constraint);
  TraceEvent ev;
  ev.kind = TraceEvent::Kind::kConstraint;
  ev.pc = st.pc;
  ev.expr = constraint;
  st.trace.Append(ev);
}

void Engine::NoteCoverage(ExecutionState& st, uint32_t pc) {
  // Callers guarantee pc is inside the code segment; leaders are always
  // instruction-aligned, so the dense bitmap fully replaces the map lookup.
  uint32_t offset = pc - loaded_.code_begin;
  if (offset % kInstructionSize != 0 ||
      offset / kInstructionSize >= block_leader_slots_.size() ||
      block_leader_slots_[offset / kInstructionSize] == 0) {
    return;  // not a block leader
  }
  ++block_counts_[pc];
  if (covered_blocks_.insert(pc).second) {
    CoverageSample sample;
    sample.instructions = stats_.instructions;
    sample.wall_ms = ElapsedMs();
    sample.covered_blocks = covered_blocks_.size();
    coverage_samples_.push_back(sample);
  }
  // Loop/edge killer: fires on the (previous leader -> this leader) block
  // edge. May terminate `st`; both call sites re-check st.alive().
  uint32_t from = st.prev_leader;
  st.prev_leader = pc;
  if (from != 0 && config_.pathctl.enabled && !config_.guided) {
    MaybeKillOnEdge(st, from, pc);
  }
}

std::string Engine::CurrentFaultLabel(const ExecutionState& st) {
  if (st.kernel.faults_injected.empty()) {
    return "-";
  }
  const InjectedFault& f = st.kernel.faults_injected.back();
  return StrFormat("%s#%u", FaultClassName(f.cls), f.occurrence);
}

void Engine::StampForkChild(ExecutionState& parent, ExecutionState& child) {
  child.origin_fork_pc = parent.pc;
  child.origin_fault_site = CurrentFaultLabel(parent);
  // Non-branch forks (ISR injection, escape forks, divisor forks, kcall
  // alternatives, backtrack revivals) never form mergeable diamonds: the
  // child leaves any group it inherited from the parent.
  child.sibling_group = 0;
  child.merge_pc = 0;
  child.parked = false;
}

void Engine::NoteDroppedFork(ExecutionState& st) {
  ++stats_.fork_sites[{st.pc, CurrentFaultLabel(st)}].dropped_forks;
}

void Engine::NoteEvictedState(ExecutionState& st) {
  if (st.origin_fork_pc != 0) {
    ++stats_.fork_sites[{st.origin_fork_pc, st.origin_fault_site}].states_evicted;
  }
}

void Engine::MaybeKillOnEdge(ExecutionState& st, uint32_t from, uint32_t to) {
  const PathCtlConfig& pctl = config_.pathctl;
  // Explicit declarative rules first: any traversal of a listed edge kills.
  for (size_t i = 0; i < pctl.kill_edges.size(); ++i) {
    const EdgeKillRule& rule = pctl.kill_edges[i];
    if (rule.from == from && rule.to == to) {
      if (stats_.edge_rule_kills.size() < pctl.kill_edges.size()) {
        stats_.edge_rule_kills.resize(pctl.kill_edges.size(), 0);
      }
      ++stats_.edge_rule_kills[i];
      ++stats_.edge_kills;
      if (st.origin_fork_pc != 0) {
        ++stats_.fork_sites[{st.origin_fork_pc, st.origin_fault_site}].kills;
      }
      FinishState(st, StrFormat("edge-kill rule %08x->%08x", from, to));
      return;
    }
  }
  if (!pctl.loop_kill || to > from) {
    return;  // forward edge: never a polling loop's back-edge
  }
  // Coverage novelty anywhere in the run amnesties every counted back-edge
  // of this state: the loop may be making progress after all.
  if (covered_blocks_.size() > st.novelty_mark) {
    st.novelty_mark = covered_blocks_.size();
    st.backedge_counts.clear();
    return;
  }
  uint64_t key = (static_cast<uint64_t>(from) << 32) | to;
  uint32_t count = ++st.backedge_counts[key];
  if (count >= pctl.backedge_kill_threshold) {
    ++stats_.loop_kills;
    if (st.origin_fork_pc != 0) {
      ++stats_.fork_sites[{st.origin_fork_pc, st.origin_fault_site}].kills;
    }
    // FinishState (not plain Terminate): state-end checkers must still run,
    // exactly as they do for fuel eviction — a leaked allocation inside the
    // killed loop still becomes a bug.
    FinishState(st, StrFormat("loop-kill: back-edge %08x->%08x starved of coverage novelty",
                              from, to));
  }
}

bool Engine::MergeEligible(const ExecutionState& st) const {
  // A sibling may merge only when its fork suffix provably had no side
  // effects outside registers and pure path constraints: no guest-memory
  // access (reads matter too — RaceChecker records them into per-state
  // checker data), no kernel calls, boundary crossings, MMIO, interrupts,
  // annotation alternatives, concretizations, frame changes, workload
  // progress, or device reads since the fork, and nothing reportable
  // happened on the path.
  if (!st.alive() || st.bug_reported || st.kernel.crashed) {
    return false;
  }
  if (st.constraints.size() < st.merge_prefix_len) {
    return false;
  }
  for (size_t i = st.merge_prefix_len; i < st.constraints.size(); ++i) {
    if (st.constraints[i]->width() != 1) {
      return false;
    }
  }
  return st.mem.access_count() == st.merge_mem_accesses &&
         st.kernel.kcall_seq == st.merge_kcall_seq &&
         st.kernel.boundary_crossings == st.merge_crossings &&
         st.kernel.mmio_accesses == st.merge_mmio &&
         st.interrupt_schedule.size() == st.merge_interrupts &&
         st.alternatives_taken.size() == st.merge_alternatives &&
         st.concretizations.size() == st.merge_concretizations &&
         st.frames.size() == st.merge_frames &&
         st.workload_trail.size() == st.merge_workload &&
         st.device->reads_served() == st.merge_device_reads;
}

void Engine::DissolveSiblingGroup(uint64_t group) {
  if (group == 0) {
    return;
  }
  for (const auto& state : states_) {
    if (state->sibling_group == group) {
      state->sibling_group = 0;
      state->merge_pc = 0;
      state->parked = false;
    }
  }
}

bool Engine::TryMergeAtPc(ExecutionState& st) {
  const uint64_t group = st.sibling_group;
  ExecutionState* partner = nullptr;
  for (const auto& state : states_) {
    if (state.get() != &st && state->alive() && state->sibling_group == group) {
      partner = state.get();
      break;
    }
  }
  if (partner == nullptr) {
    // The sibling already terminated: nothing to wait for.
    st.sibling_group = 0;
    st.merge_pc = 0;
    st.parked = false;
    return false;
  }
  if (!MergeEligible(st)) {
    DissolveSiblingGroup(group);
    return false;
  }
  if (!partner->parked) {
    // First sibling to the join: park until the partner arrives (the run
    // loop skips parked states; the group dissolves if it never can).
    st.parked = true;
    return true;
  }
  if (partner->pc != st.pc || !MergeEligible(*partner) ||
      partner->merge_prefix_len != st.merge_prefix_len) {
    DissolveSiblingGroup(group);
    return false;
  }

  // Both siblings are at the join with side-effect-free suffixes: fold the
  // pair into the lower-id state (stable across exploration orders).
  ExecutionState* survivor = st.id < partner->id ? &st : partner;
  ExecutionState* retired = survivor == &st ? partner : &st;
  const size_t prefix = st.merge_prefix_len;

  auto suffix_conjunction = [this](const ExecutionState& s, size_t from) {
    ExprRef conj = nullptr;
    for (size_t i = from; i < s.constraints.size(); ++i) {
      conj = conj == nullptr ? s.constraints[i] : ctx_.And(conj, s.constraints[i]);
    }
    return conj == nullptr ? ctx_.True() : conj;
  };
  ExprRef keep_cond = suffix_conjunction(*survivor, prefix);
  ExprRef drop_cond = suffix_conjunction(*retired, prefix);

  // ite-merge diverged registers under the survivor's suffix condition.
  for (int r = 0; r < kNumRegisters; ++r) {
    const Value& a = survivor->regs[static_cast<size_t>(r)];
    const Value& b = retired->regs[static_cast<size_t>(r)];
    if (a == b) {
      continue;
    }
    survivor->regs[static_cast<size_t>(r)] =
        Value::Symbolic(ctx_.Ite(keep_cond, a.AsExpr(&ctx_), b.AsExpr(&ctx_)));
  }

  // Disjoin the suffixes. The dominant case is the trivial diamond — one
  // branch condition on each side, negations of each other — where the
  // disjunction is a tautology and simply disappears: that is where the
  // real SAT savings come from.
  survivor->constraints.resize(prefix);
  const bool tautology = keep_cond == ctx_.Not(drop_cond) || drop_cond == ctx_.Not(keep_cond);
  if (!tautology) {
    ExprRef merged = ctx_.Or(keep_cond, drop_cond);
    if (!merged->IsTrue()) {
      survivor->constraints.push_back(merged);
    }
  }

  survivor->steps = std::max(survivor->steps, retired->steps);
  survivor->steps_in_frame = std::max(survivor->steps_in_frame, retired->steps_in_frame);
  survivor->sibling_group = 0;
  survivor->merge_pc = 0;
  survivor->parked = false;

  ++stats_.states_merged;
  if (survivor->origin_fork_pc != 0) {
    ++stats_.fork_sites[{survivor->origin_fork_pc, survivor->origin_fault_site}].states_merged;
  }
  obs::TraceInstant("engine.merge", "kind", "diamond");
  retired->sibling_group = 0;
  retired->parked = false;
  // Plain Terminate, NOT FinishState: the path logically continues inside
  // the survivor, so state-end checkers (leak detection etc.) must not fire
  // on the retired half.
  retired->Terminate("merged into sibling at join pc");
  return retired == &st;
}

CoverageBitmap Engine::CoverageSnapshot() const {
  CoverageBitmap bitmap(block_leader_slots_.size());
  for (uint32_t pc : covered_blocks_) {
    bitmap.Set((pc - loaded_.code_begin) / kInstructionSize);
  }
  return bitmap;
}

uint64_t Engine::BlockCountAt(uint32_t pc) const {
  uint32_t leader = cfg_.BlockLeaderFor(pc);
  if (leader == 0) {
    return 0;
  }
  auto it = block_counts_.find(leader);
  return it == block_counts_.end() ? 0 : it->second;
}

Value Engine::ReadMem(ExecutionState& st, uint32_t addr, unsigned size, uint32_t pc,
                      bool addr_was_sym, ExprRef addr_expr, bool* ok) {
  *ok = true;
  if (IsMmioAddr(addr)) {
    // Hardware fault plane: interaction indices advance on EVERY access,
    // injected or not, so HwFaultPoints are stable coordinates across passes
    // and guided replay (same contract as fault_occurrences).
    uint32_t access_index = st.kernel.mmio_accesses++;
    uint32_t read_index = st.kernel.mmio_reads++;
    hw_site_profile_.max_mmio_accesses =
        std::max(hw_site_profile_.max_mmio_accesses, access_index + 1);
    hw_site_profile_.max_mmio_reads =
        std::max(hw_site_profile_.max_mmio_reads, read_index + 1);
    if (!st.kernel.device_removed &&
        config_.fault_plan.ShouldTriggerHw(HwFaultKind::kSurpriseRemoval, access_index)) {
      RemoveDevice(st, HwFaultKind::kSurpriseRemoval, access_index);
    }
    if (st.alive() && !st.kernel.hw_sticky_error &&
        config_.fault_plan.ShouldTriggerHw(HwFaultKind::kStickyError, read_index)) {
      ++stats_.hw_sticky_faults;
      st.kernel.hw_sticky_error = true;
      RecordHwFault(st, HwFaultKind::kStickyError, read_index);
    }
    if (!st.alive()) {
      *ok = false;
      return Value::Concrete(0);
    }
    if (st.kernel.device_removed || st.kernel.hw_sticky_error) {
      // A removed (or error-latched) device floats the bus: reads return
      // all-ones concretely, exactly what hot-unplugged PCI hardware does.
      ++stats_.hw_reads_floated;
      Value v = Value::Concrete(HwRemovedReadBits(size));
      TraceEvent ev;
      ev.kind = TraceEvent::Kind::kMemRead;
      ev.pc = pc;
      ev.addr = addr;
      ev.size = static_cast<uint8_t>(size);
      ev.value_symbolic = false;
      ev.value = v.concrete();
      st.trace.Append(ev);
      return v;
    }
    Value v = st.device->Read(addr - kMmioBase, size, &ctx_);
    if (v.IsSymbolic()) {
      std::vector<uint32_t> vars;
      CollectVars(v.symbolic(), &vars);
      for (uint32_t var : vars) {
        TraceEvent sev;
        sev.kind = TraceEvent::Kind::kSymCreate;
        sev.pc = pc;
        sev.a = var;
        st.trace.Append(sev);
      }
      if (config_.guided) {
        v = Value::Concrete(GuidedEval(v.symbolic()));
      }
    }
    TraceEvent ev;
    ev.kind = TraceEvent::Kind::kMemRead;
    ev.pc = pc;
    ev.addr = addr;
    ev.size = static_cast<uint8_t>(size);
    ev.value_symbolic = v.IsSymbolic();
    ev.value = v.IsConcrete() ? v.concrete() : 0;
    st.trace.Append(ev);
    return v;
  }

  MemAccessEvent access;
  access.pc = pc;
  access.addr = addr;
  access.size = size;
  access.is_write = false;
  access.addr_was_symbolic = addr_was_sym;
  access.addr_expr = addr_expr;
  for (const auto& checker : checkers_) {
    checker->OnMemAccess(st, access, *this);
    if (!st.alive()) {
      *ok = false;
      return Value::Concrete(0);
    }
  }
  Value v = ReadMemValueRaw(st, addr, size);
  TraceEvent ev;
  ev.kind = TraceEvent::Kind::kMemRead;
  ev.pc = pc;
  ev.addr = addr;
  ev.size = static_cast<uint8_t>(size);
  ev.value_symbolic = v.IsSymbolic();
  ev.value = v.IsConcrete() ? v.concrete() : 0;
  st.trace.Append(ev);
  return v;
}

bool Engine::WriteMem(ExecutionState& st, uint32_t addr, unsigned size, const Value& value,
                      uint32_t pc, bool addr_was_sym, ExprRef addr_expr) {
  if (IsMmioAddr(addr)) {
    uint32_t access_index = st.kernel.mmio_accesses++;
    uint32_t write_index = st.kernel.mmio_writes++;
    hw_site_profile_.max_mmio_accesses =
        std::max(hw_site_profile_.max_mmio_accesses, access_index + 1);
    hw_site_profile_.max_mmio_writes =
        std::max(hw_site_profile_.max_mmio_writes, write_index + 1);
    if (!st.kernel.device_removed &&
        config_.fault_plan.ShouldTriggerHw(HwFaultKind::kSurpriseRemoval, access_index)) {
      RemoveDevice(st, HwFaultKind::kSurpriseRemoval, access_index);
    }
    bool dropped = st.kernel.device_removed;
    if (dropped) {
      ++stats_.hw_writes_dropped;
    } else if (st.alive() &&
               config_.fault_plan.ShouldTriggerHw(HwFaultKind::kDoorbellDrop, write_index)) {
      ++stats_.hw_doorbells_dropped;
      RecordHwFault(st, HwFaultKind::kDoorbellDrop, write_index);
      dropped = true;
    }
    if (!st.alive()) {
      return false;
    }
    if (!dropped) {
      st.device->Write(addr - kMmioBase, size, value);
      // The device actually saw this write — let checkers validate the
      // driver↔device contract (dropped writes never reach the device, so
      // the DMA checker must not observe them either).
      if (!checkers_.empty()) {
        MmioWriteEvent mmio;
        mmio.pc = pc;
        mmio.offset = addr - kMmioBase;
        mmio.size = size;
        mmio.value_concrete = value.IsConcrete();
        mmio.value = value.IsConcrete() ? value.concrete() : 0;
        obs::ScopedPhase obs_phase(config_.profile, obs::Phase::kChecker);
        for (const auto& checker : checkers_) {
          checker->OnMmioWrite(st, mmio, *this);
          if (!st.alive()) {
            return false;
          }
        }
      }
    }
    TraceEvent ev;
    ev.kind = TraceEvent::Kind::kMemWrite;
    ev.pc = pc;
    ev.addr = addr;
    ev.size = static_cast<uint8_t>(size);
    ev.value_symbolic = value.IsSymbolic();
    ev.value = value.IsConcrete() ? value.concrete() : 0;
    st.trace.Append(ev);
    return true;
  }
  MemAccessEvent access;
  access.pc = pc;
  access.addr = addr;
  access.size = size;
  access.is_write = true;
  access.value_symbolic = value.IsSymbolic();
  access.addr_was_symbolic = addr_was_sym;
  access.addr_expr = addr_expr;
  for (const auto& checker : checkers_) {
    checker->OnMemAccess(st, access, *this);
    if (!st.alive()) {
      return false;
    }
  }
  WriteMemValueRaw(st, addr, value, size);
  TraceEvent ev;
  ev.kind = TraceEvent::Kind::kMemWrite;
  ev.pc = pc;
  ev.addr = addr;
  ev.size = static_cast<uint8_t>(size);
  ev.value_symbolic = value.IsSymbolic();
  ev.value = value.IsConcrete() ? value.concrete() : 0;
  st.trace.Append(ev);
  return true;
}

void Engine::HandleBranch(ExecutionState& st, ExprRef cond, uint32_t taken_pc,
                          uint32_t fall_pc) {
  auto record = [&st](uint32_t target, bool forked) {
    TraceEvent ev;
    ev.kind = TraceEvent::Kind::kBranch;
    ev.pc = st.pc;
    ev.a = target;
    ev.b = forked ? 1 : 0;
    st.trace.Append(ev);
  };

  if (config_.guided) {
    // Guided replays never carry symbolic conditions this far, but be safe.
    bool taken = GuidedEval(cond) != 0;
    record(taken ? taken_pc : fall_pc, false);
    st.pc = taken ? taken_pc : fall_pc;
    return;
  }

  bool may_true = solver_.MayBeTrue(st.constraints, cond);
  bool may_false = solver_.MayBeFalse(st.constraints, cond);
  if (may_true && may_false) {
    if (states_.size() >= config_.max_states || st.depth >= config_.max_fork_depth) {
      ++stats_.dropped_forks;
      NoteDroppedFork(st);
      // Promotion hints: a dropped fork historically always followed the
      // taken edge; with a promoted fuzz input installed, follow the edge
      // that input's concrete values take instead — both directions are
      // feasible here, so this only redirects the search, never unsounds it.
      if (!config_.concretization_hints.empty() && HintEval(cond) == 0) {
        st.constraints.push_back(ctx_.Not(cond));
        record(fall_pc, false);
        st.pc = fall_pc;
        return;
      }
      st.constraints.push_back(cond);
      record(taken_pc, false);
      st.pc = taken_pc;
      return;
    }
    std::unique_ptr<ExecutionState> child = CloneState(st);
    ++stats_.forks;
    obs::TraceInstant("engine.fork", "kind", "branch");
    // Fork profiler: the child is attributed to this branch PC; a branch
    // fork always rewrites both siblings' diamond bookkeeping (any older
    // group the parent was in is abandoned and later dissolves).
    child->origin_fork_pc = st.pc;
    child->origin_fault_site = CurrentFaultLabel(st);
    // Diamond merge: both targets ahead of the branch means if-then(-else)
    // shaped control flow whose static join is the farther target. Snapshot
    // the side-effect odometers now; at the join, identical snapshots prove
    // the suffixes were side-effect-free and the pair can merge.
    const bool diamond = config_.pathctl.enabled && config_.pathctl.merge &&
                         taken_pc > st.pc && fall_pc > st.pc;
    const uint64_t group = diamond ? next_sibling_group_++ : 0;
    const uint32_t join_pc = diamond ? std::max(taken_pc, fall_pc) : 0;
    for (ExecutionState* s : {&st, child.get()}) {
      s->sibling_group = group;
      s->merge_pc = join_pc;
      s->parked = false;
      if (diamond) {
        s->merge_prefix_len = st.constraints.size();
        s->merge_mem_accesses = s->mem.access_count();
        s->merge_kcall_seq = s->kernel.kcall_seq;
        s->merge_crossings = s->kernel.boundary_crossings;
        s->merge_mmio = s->kernel.mmio_accesses;
        s->merge_interrupts = s->interrupt_schedule.size();
        s->merge_alternatives = s->alternatives_taken.size();
        s->merge_concretizations = s->concretizations.size();
        s->merge_frames = s->frames.size();
        s->merge_workload = s->workload_trail.size();
        s->merge_device_reads = s->device->reads_served();
      }
    }
    child->constraints.push_back(ctx_.Not(cond));
    {
      TraceEvent ev;
      ev.kind = TraceEvent::Kind::kBranch;
      ev.pc = child->pc;
      ev.a = fall_pc;
      ev.b = 1;
      child->trace.Append(ev);
    }
    child->pc = fall_pc;
    AddState(std::move(child));
    st.constraints.push_back(cond);
    record(taken_pc, true);
    st.pc = taken_pc;
    return;
  }
  if (may_true) {
    MaybeBacktrackConcretization(st, ctx_.Not(cond));
    st.constraints.push_back(cond);
    record(taken_pc, false);
    st.pc = taken_pc;
    return;
  }
  if (may_false) {
    MaybeBacktrackConcretization(st, cond);
    st.constraints.push_back(ctx_.Not(cond));
    record(fall_pc, false);
    st.pc = fall_pc;
    return;
  }
  st.Terminate("infeasible branch (path constraints unsatisfiable)");
}

bool Engine::MaybeBacktrackConcretization(ExecutionState& st, ExprRef blocked_cond) {
  if (!config_.enable_concretization_backtracking || config_.guided ||
      st.kcall_checkpoints.empty() ||
      stats_.concretization_backtracks >= config_.max_concretization_backtracks ||
      states_.size() >= config_.max_states) {
    return false;
  }
  // Only worth backtracking when the blocked direction actually depends on
  // something a kernel call concretized on this path.
  std::unordered_set<uint32_t> cond_vars;
  CollectVars(blocked_cond, &cond_vars);
  bool depends_on_concretization = false;
  for (const ExecutionState::ConcretizationRecord& record : st.concretizations) {
    std::unordered_set<uint32_t> rec_vars;
    CollectVars(record.expr, &rec_vars);
    for (uint32_t var : rec_vars) {
      if (cond_vars.count(var) != 0) {
        depends_on_concretization = true;
        break;
      }
    }
    if (depends_on_concretization) {
      break;
    }
  }
  if (!depends_on_concretization) {
    return false;
  }
  // Find the most recent checkpoint at which the blocked direction is still
  // feasible: the concretization happened after it, so dropping the path
  // suffix re-enables the choice.
  for (auto it = st.kcall_checkpoints.rbegin(); it != st.kcall_checkpoints.rend(); ++it) {
    ExecutionState& snapshot = *it->snapshot;
    if (!backtrack_memo_.insert({snapshot.id, blocked_cond}).second) {
      continue;  // already revived this snapshot for this condition
    }
    if (!solver_.IsSatisfiable(snapshot.constraints, blocked_cond)) {
      continue;
    }
    std::unique_ptr<ExecutionState> revived = CloneState(snapshot);
    StampForkChild(st, *revived);
    // Steer every future concretization toward the blocked direction: the
    // condition is a predicate over input variables that all exist already.
    revived->constraints.push_back(blocked_cond);
    // The revived state restarts the kernel call and must not re-backtrack
    // to the same snapshot forever.
    revived->kcall_checkpoints.clear();
    ++stats_.forks;
    ++stats_.concretization_backtracks;
    AddState(std::move(revived));
    return true;
  }
  return false;
}

bool Engine::ExecuteInstruction(ExecutionState& st) {
  uint32_t pc = st.pc;
  if (!loaded_.ContainsCode(pc)) {
    ReportBug(st, BugType::kSegfault,
              StrFormat("execution reached invalid address 0x%08x", pc),
              "control flow left the driver's code segment");
    return false;
  }

  // Fetch: the translation cache serves decoded instructions in O(1) after
  // the enclosing block's first entry. The byte-wise path remains for the
  // cache-off ablation, misaligned pcs (hostile entry tables), and
  // undecodable slots — whose bug reports it reproduces identically, since
  // the write barrier guarantees the cached and in-guest bytes agree.
  std::optional<Instruction> decoded;
  const Instruction* fetched =
      block_cache_ != nullptr ? block_cache_->Lookup(pc) : nullptr;
  if (fetched == nullptr) {
    uint8_t raw[kInstructionSize];
    if (!st.mem.TryReadConcrete(pc, raw, kInstructionSize)) {
      ReportBug(st, BugType::kMemoryCorruption,
                StrFormat("executing symbolic/corrupted code at 0x%08x", pc),
                "driver code bytes were overwritten with symbolic data");
      return false;
    }
    decoded = DecodeInstruction(raw);
    if (!decoded.has_value()) {
      ReportBug(st, BugType::kSegfault,
                StrFormat("invalid instruction at 0x%08x", pc),
                "undecodable opcode (corrupted code or bad jump)");
      return false;
    }
    fetched = &*decoded;
  }
  const Instruction insn = *fetched;

  ++stats_.instructions;
  ++st.steps;
  ++st.steps_in_frame;
  NoteCoverage(st, pc);
  if (!st.alive()) {
    return false;  // edge/loop killer fired
  }
  st.trace.AppendExec(pc);
  for (const auto& checker : checkers_) {
    checker->OnInstruction(st, pc, *this);
    if (!st.alive()) {
      return false;
    }
  }

  uint32_t next_pc = pc + kInstructionSize;

  auto alu2 = [&](auto concrete_op, ExprRef (ExprContext::*sym_op)(ExprRef, ExprRef), Value a,
                  Value b) -> Value {
    if (a.IsConcrete() && b.IsConcrete()) {
      return Value::Concrete(concrete_op(a.concrete(), b.concrete()));
    }
    return Value::Symbolic((ctx_.*sym_op)(a.AsExpr(&ctx_), b.AsExpr(&ctx_)));
  };
  auto cmp2 = [&](auto concrete_op, ExprRef (ExprContext::*sym_op)(ExprRef, ExprRef), Value a,
                  Value b) -> Value {
    if (a.IsConcrete() && b.IsConcrete()) {
      return Value::Concrete(concrete_op(a.concrete(), b.concrete()) ? 1 : 0);
    }
    return Value::Symbolic(ctx_.ZExt((ctx_.*sym_op)(a.AsExpr(&ctx_), b.AsExpr(&ctx_)), 32));
  };

  // Guards division: handles the zero-divisor cases (report a crash bug on
  // feasible division by zero) and returns false if the state terminated.
  auto guard_divisor = [&](Value& divisor) -> bool {
    if (divisor.IsConcrete()) {
      if (divisor.concrete() == 0) {
        ReportBug(st, BugType::kKernelCrash,
                  StrFormat("integer division by zero at 0x%08x", pc),
                  "divide fault in kernel mode crashes the machine");
        return false;
      }
      return true;
    }
    ExprRef is_zero = ctx_.Eq(divisor.AsExpr(&ctx_), ctx_.Const(0, 32));
    if (config_.guided) {
      if (GuidedEval(is_zero) != 0) {
        ReportBug(st, BugType::kKernelCrash,
                  StrFormat("integer division by zero at 0x%08x", pc),
                  "divide fault in kernel mode crashes the machine");
        return false;
      }
      return true;
    }
    bool may_zero = solver_.MayBeTrue(st.constraints, is_zero);
    bool may_nonzero = solver_.MayBeFalse(st.constraints, is_zero);
    if (may_zero) {
      if (may_nonzero && states_.size() < config_.max_states) {
        // Fork a state that takes the faulting choice; report there.
        std::unique_ptr<ExecutionState> child = CloneState(st);
        ++stats_.forks;
        StampForkChild(st, *child);
        child->constraints.push_back(is_zero);
        ReportBug(*child, BugType::kKernelCrash,
                  StrFormat("integer division by zero at 0x%08x", pc),
                  "a feasible input makes the divisor zero; divide fault in kernel mode");
        AddState(std::move(child));
      } else if (!may_nonzero) {
        ReportBug(st, BugType::kKernelCrash,
                  StrFormat("integer division by zero at 0x%08x", pc),
                  "divisor is always zero on this path");
        return false;
      }
    }
    st.constraints.push_back(ctx_.Not(is_zero));
    return true;
  };

  Value ra = st.Reg(insn.ra);
  Value rb = st.Reg(insn.rb);
  Value imm = Value::Concrete(insn.imm);

  switch (insn.opcode) {
    case Opcode::kNop:
      break;
    case Opcode::kHalt:
      ReportBug(st, BugType::kApiMisuse,
                StrFormat("driver executed HALT at 0x%08x", pc),
                "drivers must never halt the CPU");
      return false;
    case Opcode::kMov:
      st.SetReg(insn.rd, ra);
      break;
    case Opcode::kMovI:
      st.SetReg(insn.rd, imm);
      break;

    case Opcode::kAdd:
    case Opcode::kAddI: {
      Value b = insn.opcode == Opcode::kAdd ? rb : imm;
      st.SetReg(insn.rd, alu2([](uint32_t x, uint32_t y) { return x + y; }, &ExprContext::Add,
                              ra, b));
      break;
    }
    case Opcode::kSub:
    case Opcode::kSubI: {
      Value b = insn.opcode == Opcode::kSub ? rb : imm;
      st.SetReg(insn.rd, alu2([](uint32_t x, uint32_t y) { return x - y; }, &ExprContext::Sub,
                              ra, b));
      break;
    }
    case Opcode::kMul:
    case Opcode::kMulI: {
      Value b = insn.opcode == Opcode::kMul ? rb : imm;
      st.SetReg(insn.rd, alu2([](uint32_t x, uint32_t y) { return x * y; }, &ExprContext::Mul,
                              ra, b));
      break;
    }
    case Opcode::kUDiv:
    case Opcode::kUDivI: {
      Value b = insn.opcode == Opcode::kUDiv ? rb : imm;
      if (!guard_divisor(b)) {
        return false;
      }
      st.SetReg(insn.rd, alu2([](uint32_t x, uint32_t y) { return x / y; }, &ExprContext::UDiv,
                              ra, b));
      break;
    }
    case Opcode::kSDiv: {
      Value b = rb;
      if (!guard_divisor(b)) {
        return false;
      }
      st.SetReg(insn.rd,
                alu2(
                    [](uint32_t x, uint32_t y) {
                      int32_t sx = static_cast<int32_t>(x);
                      int32_t sy = static_cast<int32_t>(y);
                      if (sx == INT32_MIN && sy == -1) {
                        return x;
                      }
                      return static_cast<uint32_t>(sx / sy);
                    },
                    &ExprContext::SDiv, ra, b));
      break;
    }
    case Opcode::kURem: {
      Value b = rb;
      if (!guard_divisor(b)) {
        return false;
      }
      st.SetReg(insn.rd, alu2([](uint32_t x, uint32_t y) { return x % y; }, &ExprContext::URem,
                              ra, b));
      break;
    }
    case Opcode::kAnd:
    case Opcode::kAndI: {
      Value b = insn.opcode == Opcode::kAnd ? rb : imm;
      st.SetReg(insn.rd, alu2([](uint32_t x, uint32_t y) { return x & y; }, &ExprContext::And,
                              ra, b));
      break;
    }
    case Opcode::kOr:
    case Opcode::kOrI: {
      Value b = insn.opcode == Opcode::kOr ? rb : imm;
      st.SetReg(insn.rd,
                alu2([](uint32_t x, uint32_t y) { return x | y; }, &ExprContext::Or, ra, b));
      break;
    }
    case Opcode::kXor:
    case Opcode::kXorI: {
      Value b = insn.opcode == Opcode::kXor ? rb : imm;
      st.SetReg(insn.rd, alu2([](uint32_t x, uint32_t y) { return x ^ y; }, &ExprContext::Xor,
                              ra, b));
      break;
    }
    case Opcode::kShl:
    case Opcode::kShlI: {
      Value b = insn.opcode == Opcode::kShl ? rb : imm;
      st.SetReg(insn.rd, alu2([](uint32_t x, uint32_t y) { return y >= 32 ? 0 : x << y; },
                              &ExprContext::Shl, ra, b));
      break;
    }
    case Opcode::kLShr:
    case Opcode::kLShrI: {
      Value b = insn.opcode == Opcode::kLShr ? rb : imm;
      st.SetReg(insn.rd, alu2([](uint32_t x, uint32_t y) { return y >= 32 ? 0 : x >> y; },
                              &ExprContext::LShr, ra, b));
      break;
    }
    case Opcode::kAShr:
    case Opcode::kAShrI: {
      Value b = insn.opcode == Opcode::kAShr ? rb : imm;
      st.SetReg(insn.rd,
                alu2(
                    [](uint32_t x, uint32_t y) {
                      int32_t sx = static_cast<int32_t>(x);
                      return static_cast<uint32_t>(sx >> (y >= 32 ? 31 : y));
                    },
                    &ExprContext::AShr, ra, b));
      break;
    }
    case Opcode::kNot:
      st.SetReg(insn.rd, ra.IsConcrete() ? Value::Concrete(~ra.concrete())
                                         : Value::Symbolic(ctx_.Not(ra.AsExpr(&ctx_))));
      break;
    case Opcode::kNeg:
      st.SetReg(insn.rd, ra.IsConcrete() ? Value::Concrete(0 - ra.concrete())
                                         : Value::Symbolic(ctx_.Neg(ra.AsExpr(&ctx_))));
      break;

    case Opcode::kSeq:
    case Opcode::kSeqI: {
      Value b = insn.opcode == Opcode::kSeq ? rb : imm;
      st.SetReg(insn.rd, cmp2([](uint32_t x, uint32_t y) { return x == y; }, &ExprContext::Eq,
                              ra, b));
      break;
    }
    case Opcode::kSne:
    case Opcode::kSneI: {
      Value b = insn.opcode == Opcode::kSne ? rb : imm;
      st.SetReg(insn.rd, cmp2([](uint32_t x, uint32_t y) { return x != y; }, &ExprContext::Ne,
                              ra, b));
      break;
    }
    case Opcode::kSltU:
    case Opcode::kSltUI: {
      Value b = insn.opcode == Opcode::kSltU ? rb : imm;
      st.SetReg(insn.rd, cmp2([](uint32_t x, uint32_t y) { return x < y; }, &ExprContext::Ult,
                              ra, b));
      break;
    }
    case Opcode::kSltS:
    case Opcode::kSltSI: {
      Value b = insn.opcode == Opcode::kSltS ? rb : imm;
      st.SetReg(insn.rd,
                cmp2(
                    [](uint32_t x, uint32_t y) {
                      return static_cast<int32_t>(x) < static_cast<int32_t>(y);
                    },
                    &ExprContext::Slt, ra, b));
      break;
    }
    case Opcode::kSleU:
    case Opcode::kSleUI: {
      Value b = insn.opcode == Opcode::kSleU ? rb : imm;
      st.SetReg(insn.rd, cmp2([](uint32_t x, uint32_t y) { return x <= y; }, &ExprContext::Ule,
                              ra, b));
      break;
    }
    case Opcode::kSleS:
    case Opcode::kSleSI: {
      Value b = insn.opcode == Opcode::kSleS ? rb : imm;
      st.SetReg(insn.rd,
                cmp2(
                    [](uint32_t x, uint32_t y) {
                      return static_cast<int32_t>(x) <= static_cast<int32_t>(y);
                    },
                    &ExprContext::Sle, ra, b));
      break;
    }

    case Opcode::kLd8U:
    case Opcode::kLd8S:
    case Opcode::kLd16U:
    case Opcode::kLd16S:
    case Opcode::kLd32: {
      Value addr_v = alu2([](uint32_t x, uint32_t y) { return x + y; }, &ExprContext::Add, ra,
                          imm);
      bool addr_sym = addr_v.IsSymbolic();
      ExprRef addr_expr = addr_sym ? addr_v.symbolic() : nullptr;
      unsigned size = insn.opcode == Opcode::kLd32
                          ? 4
                          : (insn.opcode == Opcode::kLd16U || insn.opcode == Opcode::kLd16S ? 2
                                                                                            : 1);
      uint32_t addr;
      if (addr_sym) {
        std::optional<uint32_t> resolved =
            ResolveSymbolicAddress(st, addr_expr, size, /*is_write=*/false);
        if (!resolved.has_value()) {
          return false;
        }
        addr = *resolved;
      } else {
        addr = addr_v.concrete();
      }
      bool ok;
      Value loaded = ReadMem(st, addr, size, pc, addr_sym, addr_expr, &ok);
      if (!ok) {
        return false;
      }
      if (size < 4) {
        bool sign = insn.opcode == Opcode::kLd8S || insn.opcode == Opcode::kLd16S;
        if (loaded.IsConcrete()) {
          uint32_t v = loaded.concrete();
          if (sign) {
            v = static_cast<uint32_t>(
                SignExtend(v, static_cast<uint8_t>(size * 8)));
          }
          loaded = Value::Concrete(v);
        } else {
          ExprRef e = loaded.symbolic();
          loaded = Value::Symbolic(sign ? ctx_.SExt(e, 32) : ctx_.ZExt(e, 32));
        }
      }
      st.SetReg(insn.rd, loaded);
      break;
    }

    case Opcode::kSt8:
    case Opcode::kSt16:
    case Opcode::kSt32: {
      Value addr_v = alu2([](uint32_t x, uint32_t y) { return x + y; }, &ExprContext::Add, ra,
                          imm);
      bool addr_sym = addr_v.IsSymbolic();
      ExprRef addr_expr = addr_sym ? addr_v.symbolic() : nullptr;
      unsigned size =
          insn.opcode == Opcode::kSt32 ? 4 : (insn.opcode == Opcode::kSt16 ? 2 : 1);
      uint32_t addr;
      if (addr_sym) {
        std::optional<uint32_t> resolved =
            ResolveSymbolicAddress(st, addr_expr, size, /*is_write=*/true);
        if (!resolved.has_value()) {
          return false;
        }
        addr = *resolved;
      } else {
        addr = addr_v.concrete();
      }
      if (!WriteMem(st, addr, size, rb, pc, addr_sym, addr_expr)) {
        return false;
      }
      break;
    }

    case Opcode::kBr:
      if (!loaded_.ContainsCode(insn.imm)) {
        ReportBug(st, BugType::kSegfault,
                  StrFormat("jump to invalid address 0x%08x", insn.imm), "branch leaves code");
        return false;
      }
      st.pc = insn.imm;
      return true;

    case Opcode::kBz:
    case Opcode::kBnz: {
      if (!loaded_.ContainsCode(insn.imm)) {
        ReportBug(st, BugType::kSegfault,
                  StrFormat("branch to invalid address 0x%08x", insn.imm), "branch leaves code");
        return false;
      }
      if (ra.IsConcrete()) {
        bool zero = ra.concrete() == 0;
        bool take = insn.opcode == Opcode::kBz ? zero : !zero;
        st.pc = take ? insn.imm : next_pc;
        return true;
      }
      ExprRef zero_cond = ctx_.Eq(ra.AsExpr(&ctx_), ctx_.Const(0, 32));
      ExprRef cond = insn.opcode == Opcode::kBz ? zero_cond : ctx_.Not(zero_cond);
      HandleBranch(st, cond, insn.imm, next_pc);
      return st.alive();
    }

    case Opcode::kJr:
    case Opcode::kCallR: {
      uint32_t target = ConcretizeValue(st, ra, "indirect-jump-target");
      if (!st.alive()) {
        return false;
      }
      if (insn.opcode == Opcode::kCallR) {
        st.SetReg(kRegLr, Value::Concrete(next_pc));
      }
      if (target == kMagicReturnAddress) {
        st.pc = target;
        return true;  // handled next iteration
      }
      if (!loaded_.ContainsCode(target) || (target - loaded_.code_begin) % kInstructionSize != 0) {
        ReportBug(st, BugType::kSegfault,
                  StrFormat("indirect jump to invalid address 0x%08x", target),
                  "computed jump target is outside the driver's code");
        return false;
      }
      st.pc = target;
      return true;
    }

    case Opcode::kCall:
      if (!loaded_.ContainsCode(insn.imm)) {
        ReportBug(st, BugType::kSegfault,
                  StrFormat("call to invalid address 0x%08x", insn.imm), "call leaves code");
        return false;
      }
      st.SetReg(kRegLr, Value::Concrete(next_pc));
      st.pc = insn.imm;
      return true;

    case Opcode::kRet: {
      uint32_t target = ConcretizeValue(st, st.Reg(kRegLr), "return-address");
      if (!st.alive()) {
        return false;
      }
      if (target == kMagicReturnAddress) {
        st.pc = target;
        return true;
      }
      if (!loaded_.ContainsCode(target) || (target - loaded_.code_begin) % kInstructionSize != 0) {
        ReportBug(st, BugType::kSegfault,
                  StrFormat("return to invalid address 0x%08x", target),
                  "clobbered return address (stack corruption?)");
        return false;
      }
      st.pc = target;
      return true;
    }

    case Opcode::kPush: {
      uint32_t sp = ConcretizeValue(st, st.Reg(kRegSp), "push-sp");
      if (!st.alive()) {
        return false;
      }
      uint32_t new_sp = sp - 4;
      st.SetReg(kRegSp, Value::Concrete(new_sp));
      if (!WriteMem(st, new_sp, 4, rb, pc, false, nullptr)) {
        return false;
      }
      break;
    }
    case Opcode::kPop: {
      uint32_t sp = ConcretizeValue(st, st.Reg(kRegSp), "pop-sp");
      if (!st.alive()) {
        return false;
      }
      bool ok;
      Value v = ReadMem(st, sp, 4, pc, false, nullptr, &ok);
      if (!ok) {
        return false;
      }
      st.SetReg(insn.rd, v);
      st.SetReg(kRegSp, Value::Concrete(sp + 4));
      break;
    }

    case Opcode::kKCall:
      HandleKCall(st, insn);
      return false;  // quantum ends at the boundary

    default:
      ReportBug(st, BugType::kSegfault,
                StrFormat("unimplemented opcode %u at 0x%08x",
                          static_cast<unsigned>(insn.opcode), pc),
                "decoder/interpreter mismatch");
      return false;
  }

  st.pc = next_pc;
  return true;
}

// ---------------------------------------------------------------------------
// Kernel calls: annotations + implementation + alternatives (§3.2, §3.4)
// ---------------------------------------------------------------------------

void Engine::HandleKCall(ExecutionState& st, const Instruction& insn) {
  uint32_t index = insn.imm;
  if (index >= import_table_.size()) {
    ReportBug(st, BugType::kApiMisuse,
              StrFormat("kcall with invalid import index %u at 0x%08x", index, st.pc),
              "import table bounds violation");
    return;
  }
  const std::string& name = loaded_.imports[index];
  uint32_t kcall_seq = st.kernel.kcall_seq++;
  ++stats_.kernel_calls;

  // §3.2 backtracking support: snapshot the state at the call boundary when
  // a symbolic argument may get concretized inside, so the call can be
  // repeated later with a different feasible value.
  if (config_.enable_concretization_backtracking && !config_.guided) {
    bool any_symbolic_arg = false;
    for (int i = 0; i < 4; ++i) {
      any_symbolic_arg |= st.Reg(i).IsSymbolic();
    }
    if (any_symbolic_arg) {
      ExecutionState::KCallCheckpoint checkpoint;
      checkpoint.kcall_pc = st.pc;
      std::unique_ptr<ExecutionState> snapshot = CloneState(st);
      snapshot->kcall_checkpoints.clear();
      checkpoint.snapshot = std::move(snapshot);
      st.kcall_checkpoints.push_back(std::move(checkpoint));
      if (st.kcall_checkpoints.size() > config_.max_kcall_checkpoints_per_state) {
        st.kcall_checkpoints.erase(st.kcall_checkpoints.begin());
      }
    }
  }

  {
    TraceEvent ev;
    ev.kind = TraceEvent::Kind::kKCall;
    ev.pc = st.pc;
    ev.a = index;
    st.trace.Append(ev);
  }

  CrossBoundary(st);
  if (!st.alive()) {
    return;
  }

  EngineKernelContext kc(this, &st);
  {
    KernelEvent ev;
    ev.kind = KernelEvent::Kind::kApiEnter;
    ev.text = name;
    EmitKernelEvent(st, ev);
  }

  const auto& annotations = annotations_.For(name);
  for (const auto& annotation : annotations) {
    annotation->OnCall(kc);
    if (!st.alive()) {
      return;
    }
  }

  import_table_[index](kc);
  if (!st.alive()) {
    return;
  }

  uint32_t return_pc = st.pc + kInstructionSize;

  // Annotation return hooks: may rewrite results and fork alternatives.
  for (const auto& annotation : annotations) {
    AnnotationOutcome outcome = annotation->OnReturn(kc);
    if (!st.alive()) {
      return;
    }
    for (const AnnotationAlternative& alternative : outcome.alternatives) {
      bool forced = false;
      if (config_.guided) {
        // Apply in place when the recorded schedule says this alternative was
        // taken on the buggy path.
        for (const auto& [seq, label] : config_.forced_alternatives) {
          if (seq == kcall_seq && label == alternative.label) {
            forced = true;
            break;
          }
        }
        if (forced) {
          alternative.apply(kc);
          st.alternatives_taken.emplace_back(kcall_seq, alternative.label);
        }
        continue;
      }
      if (states_.size() >= config_.max_states || st.depth >= config_.max_fork_depth) {
        ++stats_.dropped_forks;
        NoteDroppedFork(st);
        continue;
      }
      std::unique_ptr<ExecutionState> child = CloneState(st);
      ++stats_.forks;
      StampForkChild(st, *child);
      EngineKernelContext child_kc(this, child.get());
      alternative.apply(child_kc);
      child->alternatives_taken.emplace_back(kcall_seq, alternative.label);
      if (child->alive()) {
        child->pc = return_pc;
        // Mirror the post-call boundary crossing the parent is about to take,
        // keeping crossing indices aligned for replay.
        child->kernel.boundary_crossings++;
        AddState(std::move(child));
      }
    }
  }

  {
    Value r0 = st.Reg(0);
    KernelEvent ev;
    ev.kind = KernelEvent::Kind::kApiExit;
    ev.a = r0.IsConcrete() ? r0.concrete() : 0;
    ev.text = name;
    EmitKernelEvent(st, ev);
    TraceEvent tev;
    tev.kind = TraceEvent::Kind::kKRet;
    tev.a = index;
    tev.b = r0.IsConcrete() ? r0.concrete() : 0;
    st.trace.Append(tev);
  }

  // Advance past the kcall *before* the post-call crossing so interrupt
  // forks resume at the next instruction rather than re-issuing the call.
  st.pc = return_pc;
  CrossBoundary(st);
}

// ---------------------------------------------------------------------------
// Events, bugchecks, bug reports
// ---------------------------------------------------------------------------

void Engine::EmitKernelEvent(ExecutionState& st, const KernelEvent& event) {
  if (checkers_.empty()) {
    return;
  }
  obs::ScopedPhase obs_phase(config_.profile, obs::Phase::kChecker);
  for (const auto& checker : checkers_) {
    checker->OnKernelEvent(st, event, *this);
    if (!st.alive()) {
      return;
    }
  }
}

void Engine::DoBugCheck(ExecutionState& st, uint32_t code, const std::string& message) {
  if (st.kernel.crashed) {
    return;  // one crash per path
  }
  st.kernel.crashed = true;
  st.kernel.bugcheck_code = code;
  st.kernel.bugcheck_message = message;
  KernelEvent ev;
  ev.kind = KernelEvent::Kind::kBugCheck;
  ev.a = code;
  ev.text = message;
  EmitKernelEvent(st, ev);

  // DDT's crash-handler hook: intercept the BSOD and produce a bug report.
  BugType type = BugType::kKernelCrash;
  if (code == kBugcheckDeadlock) {
    type = BugType::kDeadlock;
  }
  ReportBug(st, type, StrFormat("BSOD 0x%02X: %s", code, message.c_str()),
            "kernel bugcheck intercepted by DDT's crash-handler hook");
}

std::vector<SolvedInput> Engine::SolveInputs(ExecutionState& st) {
  std::vector<SolvedInput> inputs;
  std::unordered_set<uint32_t> var_set;
  for (ExprRef c : st.constraints) {
    CollectVars(c, &var_set);
  }
  if (var_set.empty()) {
    return inputs;
  }
  Assignment model;
  if (!solver_.GetInitialValues(st.constraints, &model)) {
    return inputs;
  }
  // Variables referenced by the last few constraints are the proximate
  // cause: the branch/bounds decisions immediately preceding the report.
  std::unordered_set<uint32_t> proximate_vars;
  constexpr size_t kProximateWindow = 2;
  size_t start = st.constraints.size() > kProximateWindow
                     ? st.constraints.size() - kProximateWindow
                     : 0;
  for (size_t i = start; i < st.constraints.size(); ++i) {
    CollectVars(st.constraints[i], &proximate_vars);
  }

  std::vector<uint32_t> vars(var_set.begin(), var_set.end());
  std::sort(vars.begin(), vars.end());
  for (uint32_t var : vars) {
    const VarInfo& info = ctx_.var_info(var);
    SolvedInput input;
    input.var_name = info.name;
    input.origin = info.origin;
    input.width = info.width;
    input.value = MaskToWidth(model.Get(var), info.width);
    input.proximate = proximate_vars.count(var) != 0;
    inputs.push_back(input);
  }
  return inputs;
}

void Engine::ReportBug(ExecutionState& st, BugType type, const std::string& title,
                       const std::string& details) {
  // Race classification: a crash or memory error that fires in interrupt
  // context (or in code racing with an injected interrupt) is reported as a
  // race condition — it only occurs under that interleaving.
  BugType effective = type;
  std::string effective_details = details;
  if ((type == BugType::kKernelCrash || type == BugType::kSegfault ||
       type == BugType::kMemoryCorruption) &&
      st.InContext(ExecContextKind::kIsr)) {
    effective = BugType::kRaceCondition;
    effective_details += effective_details.empty() ? "" : "; ";
    effective_details +=
        "fires only under a specific interrupt interleaving (symbolic interrupt injected)";
  }

  std::string key = StrFormat("%d|%s", static_cast<int>(effective), title.c_str());
  bool fresh = bug_dedupe_.insert(key).second;

  {
    TraceEvent ev;
    ev.kind = TraceEvent::Kind::kBugMark;
    ev.pc = st.pc;
    ev.a = static_cast<uint32_t>(bugs_.size());
    st.trace.Append(ev);
  }

  if (fresh) {
    Bug bug;
    bug.type = effective;
    bug.title = title;
    bug.details = effective_details;
    bug.driver = image_.name;
    bug.checker = "engine";
    bug.pc = st.pc;
    bug.state_id = st.id;
    bug.context = st.CurrentContext();
    bug.trace = st.trace.Reconstruct();
    bug.inputs = SolveInputs(st);
    bug.interrupt_schedule = st.interrupt_schedule;
    bug.workload_trail = st.workload_trail;
    bug.alternatives = st.alternatives_taken;
    bug.fault_plan = config_.fault_plan;
    bug.fault_schedule = st.kernel.faults_injected;
    bug.hw_fault_schedule = st.kernel.hw_faults_injected;
    bug.constraints = st.constraints;
    bugs_.push_back(std::move(bug));
    DDT_LOG_INFO("bug found: %s", bugs_.back().Row().c_str());
  }

  st.bug_reported = true;
  // Lockset race reports are warnings — the interleaving *could* corrupt
  // state but this execution did not — so the path keeps running (and can
  // expose further bugs). Everything else (crashes, memory violations,
  // leaks at a terminal checkpoint) ends the path, as in §4.3.
  bool fatal = type != BugType::kRaceCondition;
  if (fatal) {
    st.Terminate(StrFormat("bug: %s", title.c_str()));
  }
  if (config_.stop_after_first_bug) {
    stop_requested_ = true;
  }
}

}  // namespace ddt
