#include "src/engine/pathctl.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

namespace ddt {

namespace {

// Parses one hex (0x-prefixed) or decimal PC. Returns false on junk.
bool ParsePc(const std::string& text, uint32_t* out) {
  if (text.empty()) {
    return false;
  }
  char* end = nullptr;
  unsigned long long v = std::strtoull(text.c_str(), &end, 0);
  if (end == nullptr || *end != '\0' || v > UINT32_MAX) {
    return false;
  }
  *out = static_cast<uint32_t>(v);
  return true;
}

}  // namespace

bool ParseEdgeKillRule(const std::string& text, EdgeKillRule* out) {
  size_t colon = text.find(':');
  if (colon == std::string::npos) {
    return false;
  }
  EdgeKillRule rule;
  if (!ParsePc(text.substr(0, colon), &rule.from) ||
      !ParsePc(text.substr(colon + 1), &rule.to)) {
    return false;
  }
  *out = rule;
  return true;
}

void ForkSiteStats::Accumulate(const ForkSiteStats& other) {
  states_created += other.states_created;
  dropped_forks += other.dropped_forks;
  states_evicted += other.states_evicted;
  sat_calls += other.sat_calls;
  states_merged += other.states_merged;
  kills += other.kills;
}

void AccumulateForkSites(ForkSiteTable* into, const ForkSiteTable& from) {
  for (const auto& [key, stats] : from) {
    (*into)[key].Accumulate(stats);
  }
}

std::string FormatHotForkSites(const ForkSiteTable& table, size_t n) {
  std::vector<const ForkSiteTable::value_type*> ranked;
  ranked.reserve(table.size());
  for (const auto& entry : table) {
    ranked.push_back(&entry);
  }
  std::sort(ranked.begin(), ranked.end(), [](const auto* a, const auto* b) {
    if (a->second.states_created != b->second.states_created) {
      return a->second.states_created > b->second.states_created;
    }
    return a->first < b->first;
  });
  std::string out = "hot fork sites (states spawned per fork-site pc/fault-site):\n";
  if (ranked.empty()) {
    return out + "  none observed\n";
  }
  for (size_t i = 0; i < ranked.size() && i < n; ++i) {
    const auto& [key, s] = *ranked[i];
    char buf[192];
    std::snprintf(buf, sizeof(buf),
                  "  pc=%08x fault=%s: %llu created, %llu dropped, %llu evicted, "
                  "%llu merged, %llu killed, %llu SAT calls\n",
                  key.first, key.second.c_str(),
                  static_cast<unsigned long long>(s.states_created),
                  static_cast<unsigned long long>(s.dropped_forks),
                  static_cast<unsigned long long>(s.states_evicted),
                  static_cast<unsigned long long>(s.states_merged),
                  static_cast<unsigned long long>(s.kills),
                  static_cast<unsigned long long>(s.sat_calls));
    out += buf;
  }
  return out;
}

std::string EncodeForkSiteTable(const ForkSiteTable& table) {
  std::string out;
  for (const auto& [key, s] : table) {
    char buf[256];
    std::snprintf(buf, sizeof(buf), "%s%08x:%s:%llu:%llu:%llu:%llu:%llu:%llu",
                  out.empty() ? "" : " ", key.first, key.second.c_str(),
                  static_cast<unsigned long long>(s.states_created),
                  static_cast<unsigned long long>(s.dropped_forks),
                  static_cast<unsigned long long>(s.states_evicted),
                  static_cast<unsigned long long>(s.sat_calls),
                  static_cast<unsigned long long>(s.states_merged),
                  static_cast<unsigned long long>(s.kills));
    out += buf;
  }
  return out;
}

ForkSiteTable DecodeForkSiteTable(const std::string& text) {
  ForkSiteTable table;
  size_t pos = 0;
  while (pos < text.size()) {
    size_t space = text.find(' ', pos);
    std::string token =
        text.substr(pos, space == std::string::npos ? std::string::npos : space - pos);
    pos = space == std::string::npos ? text.size() : space + 1;
    if (token.empty()) {
      continue;
    }
    // pc : label : 6 counters — split on ':' into exactly 8 fields.
    std::vector<std::string> fields;
    size_t start = 0;
    while (true) {
      size_t colon = token.find(':', start);
      if (colon == std::string::npos) {
        fields.push_back(token.substr(start));
        break;
      }
      fields.push_back(token.substr(start, colon - start));
      start = colon + 1;
    }
    if (fields.size() != 8) {
      continue;
    }
    uint32_t pc = 0;
    if (!ParsePc("0x" + fields[0], &pc)) {
      continue;
    }
    ForkSiteStats s;
    uint64_t* counters[6] = {&s.states_created, &s.dropped_forks, &s.states_evicted,
                             &s.sat_calls,      &s.states_merged, &s.kills};
    bool ok = true;
    for (size_t i = 0; i < 6; ++i) {
      char* end = nullptr;
      *counters[i] = std::strtoull(fields[i + 2].c_str(), &end, 10);
      if (end == nullptr || *end != '\0') {
        ok = false;
        break;
      }
    }
    if (ok) {
      table[{pc, fields[1]}] = s;
    }
  }
  return table;
}

}  // namespace ddt
