// ExecutionState: one explored path through the driver.
//
// Conceptually a complete system snapshot (§4.1.2): guest CPU registers,
// guest memory (chained COW), kernel bookkeeping, the device model, the path
// constraints, the execution trace, per-checker data, and the
// scheduler/frame bookkeeping. Forking clones all of it — cheaply, because
// the heavy parts (memory, trace) are chained-COW structures.
#ifndef SRC_ENGINE_EXECUTION_STATE_H_
#define SRC_ENGINE_EXECUTION_STATE_H_

#include <array>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/engine/checker.h"
#include "src/hw/device.h"
#include "src/kernel/kernel_state.h"
#include "src/support/rng.h"
#include "src/trace/trace.h"
#include "src/vm/guest_memory.h"
#include "src/vm/isa.h"
#include "src/vm/value.h"

namespace ddt {

// Return address sentinel: driver callbacks return here, handing control back
// to the engine's scheduler.
inline constexpr uint32_t kMagicReturnAddress = 0xFFFF0000;
// pc value meaning "no driver code active; scheduler decides".
inline constexpr uint32_t kIdlePc = 0;

class ExecutionState {
 public:
  // A driver invocation in progress (entry point, ISR, DPC, timer callback).
  struct Frame {
    ExecContextKind kind = ExecContextKind::kEntryPoint;
    int entry_slot = -1;  // valid for kEntryPoint
    std::array<Value, kNumRegisters> saved_regs;
    uint32_t saved_pc = kIdlePc;
    Irql saved_irql = Irql::kPassive;
  };

  struct ConcretizationRecord {
    ExprRef expr = nullptr;
    uint32_t chosen = 0;
    uint32_t pc = 0;
    std::string reason;
  };

  enum class LiveStatus { kRunning, kTerminated };

  ExecutionState() = default;
  ExecutionState(const ExecutionState&) = delete;
  ExecutionState& operator=(const ExecutionState&) = delete;

  // Forks this state; the clone gets a derived RNG stream and a fresh id.
  std::unique_ptr<ExecutionState> Clone(uint64_t new_id);

  // --- Registers (zr reads 0, ignores writes) ---
  Value Reg(int index) const {
    return index == kRegZero ? Value::Concrete(0) : regs[static_cast<size_t>(index)];
  }
  void SetReg(int index, const Value& value) {
    if (index != kRegZero) {
      regs[static_cast<size_t>(index)] = value;
    }
  }

  bool InContext(ExecContextKind kind) const {
    for (const Frame& frame : frames) {
      if (frame.kind == kind) {
        return true;
      }
    }
    return false;
  }
  ExecContextKind CurrentContext() const {
    return frames.empty() ? ExecContextKind::kNone : frames.back().kind;
  }
  int CurrentEntrySlot() const;

  void Terminate(const std::string& why) {
    status = LiveStatus::kTerminated;
    termination_reason = why;
  }
  bool alive() const { return status == LiveStatus::kRunning; }

  // --- identity / lineage ---
  uint64_t id = 0;
  uint64_t parent_id = 0;
  uint32_t depth = 0;  // fork depth

  // --- machine ---
  std::array<Value, kNumRegisters> regs = {};
  uint32_t pc = kIdlePc;
  GuestMemory mem;
  KernelState kernel;
  std::unique_ptr<DeviceModel> device;

  // --- symbolic path ---
  std::vector<ExprRef> constraints;
  std::vector<ConcretizationRecord> concretizations;

  // Checkpoints taken at kernel-call boundaries (§3.2 backtracking): if a
  // concretization made during a kernel call later blocks a branch
  // direction, the engine revives the snapshot, constrains it toward the
  // blocked direction, and re-executes the call with a compatible concrete
  // value. Snapshots are immutable and shared between forks.
  struct KCallCheckpoint {
    // Mutable only because reviving (Clone) freezes COW tails; logically the
    // snapshot is immutable. Shared between sibling forks.
    std::shared_ptr<ExecutionState> snapshot;
    uint32_t kcall_pc = 0;
  };
  std::vector<KCallCheckpoint> kcall_checkpoints;  // most recent last

  // --- evidence ---
  TraceRecorder trace;
  std::vector<uint32_t> interrupt_schedule;  // crossings where ISR was injected
  std::vector<uint32_t> workload_trail;      // entry slots invoked so far
  // Annotation alternatives applied on this path: (kernel call seq, label).
  std::vector<std::pair<uint32_t, std::string>> alternatives_taken;

  // --- scheduling ---
  std::vector<Frame> frames;
  LiveStatus status = LiveStatus::kRunning;
  std::string termination_reason;
  bool bug_reported = false;   // a bug fired on this path
  uint64_t steps = 0;          // instructions executed by this state
  uint64_t steps_in_frame = 0; // instructions since last frame/boundary change
  Rng rng{1};

  // --- path-explosion control (src/engine/pathctl.h) ---
  // Fork-profiler lineage: the fork-site PC and fault-site label that spawned
  // this state ("-" and 0 for the root). Overwritten on every fork child.
  uint32_t origin_fork_pc = 0;
  std::string origin_fault_site = "-";
  // Diamond-merge bookkeeping: a branch fork whose targets form a forward
  // diamond stamps both siblings with a shared nonzero group id and the
  // reconvergence PC; the first sibling to reach merge_pc parks until its
  // partner arrives (or the group dissolves). merge_prefix_len is the shared
  // constraint-prefix length snapshotted at the fork; the merge_* counters
  // snapshot side-effect odometers at the fork so suffix divergence in
  // memory/kernel/device state disqualifies the merge.
  uint64_t sibling_group = 0;
  uint32_t merge_pc = 0;
  size_t merge_prefix_len = 0;
  uint64_t merge_mem_accesses = 0;
  uint32_t merge_kcall_seq = 0;
  uint64_t merge_crossings = 0;
  uint64_t merge_mmio = 0;
  size_t merge_interrupts = 0;
  size_t merge_alternatives = 0;
  size_t merge_concretizations = 0;
  size_t merge_frames = 0;
  size_t merge_workload = 0;
  uint64_t merge_device_reads = 0;
  bool parked = false;  // waiting at merge_pc for the sibling
  // Loop-killer bookkeeping: last block leader executed, per-backedge
  // traversal counts, and the covered-block total at the last novelty.
  uint32_t prev_leader = 0;
  std::unordered_map<uint64_t, uint32_t> backedge_counts;
  size_t novelty_mark = 0;

  // --- per-checker data ---
  std::map<std::string, std::unique_ptr<CheckerState>> checker_state;
};

}  // namespace ddt

#endif  // SRC_ENGINE_EXECUTION_STATE_H_
