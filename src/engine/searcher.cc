#include "src/engine/searcher.h"

#include "src/support/check.h"

namespace ddt {

const char* SearchStrategyName(SearchStrategy strategy) {
  switch (strategy) {
    case SearchStrategy::kCoverageGreedy:
      return "coverage-greedy";
    case SearchStrategy::kDfs:
      return "dfs";
    case SearchStrategy::kBfs:
      return "bfs";
    case SearchStrategy::kRandom:
      return "random";
    case SearchStrategy::kCoverageStarved:
      return "coverage-starved";
  }
  return "?";
}

bool ParseSearchStrategy(const std::string& name, SearchStrategy* out) {
  for (SearchStrategy s : {SearchStrategy::kCoverageGreedy, SearchStrategy::kDfs,
                           SearchStrategy::kBfs, SearchStrategy::kRandom,
                           SearchStrategy::kCoverageStarved}) {
    if (name == SearchStrategyName(s)) {
      *out = s;
      return true;
    }
  }
  return false;
}

namespace {

class CoverageGreedySearcher : public Searcher {
 public:
  CoverageGreedySearcher(const BlockCountOracle* oracle, uint64_t seed)
      : oracle_(oracle), rng_(seed) {}

  size_t Select(const std::vector<ExecutionState*>& states) override {
    uint64_t best_count = UINT64_MAX;
    size_t best = 0;
    size_t ties = 0;
    for (size_t i = 0; i < states.size(); ++i) {
      uint64_t count = oracle_->BlockCountAt(states[i]->pc);
      if (count < best_count) {
        best_count = count;
        best = i;
        ties = 1;
      } else if (count == best_count) {
        // Reservoir-style random tie-break keeps exploration fair among
        // equally-fresh states.
        ++ties;
        if (rng_.NextBelow(ties) == 0) {
          best = i;
        }
      }
    }
    return best;
  }

 private:
  const BlockCountOracle* oracle_;
  Rng rng_;
};

class DfsSearcher : public Searcher {
 public:
  size_t Select(const std::vector<ExecutionState*>& states) override {
    return states.size() - 1;  // newest state first
  }
};

class BfsSearcher : public Searcher {
 public:
  size_t Select(const std::vector<ExecutionState*>& states) override {
    return 0;  // oldest state first
  }
};

// Coverage-starved selection: a state about to enter an *uncovered* block
// always wins over states grinding through covered code; covered states are
// ranked by execution count so polling loops (whose counters explode) starve.
// Unlike CoverageGreedySearcher there is no RNG tie-break — first index wins
// — so the policy is a pure function of (states, coverage), which is what
// the pathctl determinism contract needs.
class CoverageStarvedSearcher : public Searcher {
 public:
  explicit CoverageStarvedSearcher(const BlockCountOracle* oracle) : oracle_(oracle) {}

  size_t Select(const std::vector<ExecutionState*>& states) override {
    uint64_t best_count = UINT64_MAX;
    size_t best = 0;
    for (size_t i = 0; i < states.size(); ++i) {
      uint64_t count = oracle_->BlockCountAt(states[i]->pc);
      if (count == 0) {
        return i;  // uncovered next block: run it now
      }
      if (count < best_count) {
        best_count = count;
        best = i;
      }
    }
    return best;
  }

 private:
  const BlockCountOracle* oracle_;
};

class RandomSearcher : public Searcher {
 public:
  explicit RandomSearcher(uint64_t seed) : rng_(seed) {}
  size_t Select(const std::vector<ExecutionState*>& states) override {
    return static_cast<size_t>(rng_.NextBelow(states.size()));
  }

 private:
  Rng rng_;
};

}  // namespace

std::unique_ptr<Searcher> MakeSearcher(SearchStrategy strategy, const BlockCountOracle* oracle,
                                       uint64_t seed) {
  switch (strategy) {
    case SearchStrategy::kCoverageGreedy:
      DDT_CHECK(oracle != nullptr);
      return std::make_unique<CoverageGreedySearcher>(oracle, seed);
    case SearchStrategy::kDfs:
      return std::make_unique<DfsSearcher>();
    case SearchStrategy::kBfs:
      return std::make_unique<BfsSearcher>();
    case SearchStrategy::kRandom:
      return std::make_unique<RandomSearcher>(seed);
    case SearchStrategy::kCoverageStarved:
      DDT_CHECK(oracle != nullptr);
      return std::make_unique<CoverageStarvedSearcher>(oracle);
  }
  DDT_UNREACHABLE("bad strategy");
}

}  // namespace ddt
