#include "src/engine/searcher.h"

#include "src/support/check.h"

namespace ddt {

const char* SearchStrategyName(SearchStrategy strategy) {
  switch (strategy) {
    case SearchStrategy::kCoverageGreedy:
      return "coverage-greedy";
    case SearchStrategy::kDfs:
      return "dfs";
    case SearchStrategy::kBfs:
      return "bfs";
    case SearchStrategy::kRandom:
      return "random";
  }
  return "?";
}

namespace {

class CoverageGreedySearcher : public Searcher {
 public:
  CoverageGreedySearcher(const BlockCountOracle* oracle, uint64_t seed)
      : oracle_(oracle), rng_(seed) {}

  size_t Select(const std::vector<ExecutionState*>& states) override {
    uint64_t best_count = UINT64_MAX;
    size_t best = 0;
    size_t ties = 0;
    for (size_t i = 0; i < states.size(); ++i) {
      uint64_t count = oracle_->BlockCountAt(states[i]->pc);
      if (count < best_count) {
        best_count = count;
        best = i;
        ties = 1;
      } else if (count == best_count) {
        // Reservoir-style random tie-break keeps exploration fair among
        // equally-fresh states.
        ++ties;
        if (rng_.NextBelow(ties) == 0) {
          best = i;
        }
      }
    }
    return best;
  }

 private:
  const BlockCountOracle* oracle_;
  Rng rng_;
};

class DfsSearcher : public Searcher {
 public:
  size_t Select(const std::vector<ExecutionState*>& states) override {
    return states.size() - 1;  // newest state first
  }
};

class BfsSearcher : public Searcher {
 public:
  size_t Select(const std::vector<ExecutionState*>& states) override {
    return 0;  // oldest state first
  }
};

class RandomSearcher : public Searcher {
 public:
  explicit RandomSearcher(uint64_t seed) : rng_(seed) {}
  size_t Select(const std::vector<ExecutionState*>& states) override {
    return static_cast<size_t>(rng_.NextBelow(states.size()));
  }

 private:
  Rng rng_;
};

}  // namespace

std::unique_ptr<Searcher> MakeSearcher(SearchStrategy strategy, const BlockCountOracle* oracle,
                                       uint64_t seed) {
  switch (strategy) {
    case SearchStrategy::kCoverageGreedy:
      DDT_CHECK(oracle != nullptr);
      return std::make_unique<CoverageGreedySearcher>(oracle, seed);
    case SearchStrategy::kDfs:
      return std::make_unique<DfsSearcher>();
    case SearchStrategy::kBfs:
      return std::make_unique<BfsSearcher>();
    case SearchStrategy::kRandom:
      return std::make_unique<RandomSearcher>(seed);
  }
  DDT_UNREACHABLE("bad strategy");
}

}  // namespace ddt
