// The DDT engine: selective symbolic execution of a driver binary against a
// concretely-executing MiniOS kernel and fully symbolic hardware.
//
// One Engine instance = one testing run of one driver. The engine owns the
// state pool, the interpreter, the scheduler (workload steps, DPCs, timers),
// symbolic interrupt injection at kernel/driver boundary crossings (§3.3),
// annotation dispatch at API boundaries (§3.4), checker dispatch, coverage
// accounting (Figures 2/3), and bug collection.
//
// The same engine also runs fully concretely (scripted device, no
// annotations, no symbolic interrupts, forced interrupt schedule) — that
// mode implements both trace replay (§3.5) and the Driver Verifier stress
// baseline.
#ifndef SRC_ENGINE_ENGINE_H_
#define SRC_ENGINE_ENGINE_H_

#include <atomic>
#include <chrono>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/annotations/annotation.h"
#include "src/engine/bug_report.h"
#include "src/engine/checker.h"
#include "src/engine/execution_state.h"
#include "src/engine/fault_injection.h"
#include "src/engine/pathctl.h"
#include "src/engine/searcher.h"
#include "src/hw/pci.h"
#include "src/kernel/exerciser.h"
#include "src/kernel/kernel_api.h"
#include "src/obs/metrics.h"
#include "src/obs/profiler.h"
#include "src/solver/solver.h"
#include "src/support/status.h"
#include "src/vm/coverage_map.h"
#include "src/vm/disasm.h"
#include "src/vm/image.h"

namespace ddt {

class BlockCache;
class SuperblockCache;
struct Superblock;

struct EngineConfig {
  // Budgets.
  uint64_t max_instructions = 3'000'000;
  uint64_t max_states = 512;
  uint64_t max_wall_ms = 60'000;
  uint32_t max_fork_depth = 64;
  // --- Resource governor ---
  // Per-state instruction fuel: a single path exceeding this is evicted
  // (counted in EngineStats::states_evicted) so one runaway loop cannot
  // starve the rest of the exploration. 0 = unlimited.
  uint64_t max_instructions_per_state = 0;
  // Soft ceiling on the approximate working set across live states (same
  // accounting as EngineStats::peak_state_bytes). When exceeded, the engine
  // evicts the largest states until back under the ceiling, always keeping
  // at least one state alive. 0 = unlimited.
  uint64_t max_state_bytes = 0;
  // Per-path symbolic interrupt budget (§3.3: simplified model injects at
  // boundary crossings; one injection usually suffices to expose races).
  uint32_t max_interrupts_per_path = 1;
  // Concretization backtracking (§3.2): when a concretization performed
  // during a kernel call later blocks a branch direction, revive a snapshot
  // taken at the call boundary, constrain it toward the blocked direction,
  // and re-execute the call with a compatible concrete value.
  bool enable_concretization_backtracking = true;
  uint32_t max_kcall_checkpoints_per_state = 4;
  uint32_t max_concretization_backtracks = 32;  // engine-wide budget
  bool enable_symbolic_interrupts = true;
  // Forced concrete interrupt schedule (replay / stress modes): deliver the
  // ISR at exactly these boundary-crossing indices.
  std::vector<uint32_t> forced_interrupt_schedule;
  // Terminate a path when an entry point returns failure (§4.3).
  bool terminate_on_entry_failure = true;
  SearchStrategy strategy = SearchStrategy::kCoverageGreedy;
  // Path-explosion control (src/engine/pathctl.h): loop/edge killers and
  // diamond state merging. Off by default; the fork profiler (per-fork-site
  // attribution in EngineStats::fork_sites) runs regardless because it is
  // pure accounting.
  PathCtlConfig pathctl;
  uint64_t seed = 0xDD7;
  // Memory-model ablation: eager full-copy forking instead of chained COW.
  bool eager_cow = false;
  // Decoded basic-block translation cache (src/vm/block_cache.h): decode each
  // straight-line block once on first entry and fetch from the cached form
  // afterwards, instead of re-reading and re-decoding 8 code bytes per step.
  // Sound because driver code is immutable after LoadDriver — enforced by a
  // write barrier that reports (and suppresses) any store landing in the code
  // segment. Off = the original byte-wise interpreter (ablation/benchmarks).
  bool enable_block_cache = true;
  // Tier-2 execution (src/vm/superblock.h): when a decoded block's entry
  // counter crosses superblock_hot_threshold, compile it and its hot static
  // successors into a superblock of pre-lowered threaded ops with direct
  // block-to-block chaining on the concrete path. Symbolic operands, MMIO
  // accesses, fault-eligible kernel calls, forks, and write-barrier trips all
  // side-exit to the tier-1 interpreter at exact instruction boundaries, so
  // coverage, traces, bugs, and deterministic reports are byte-identical with
  // the tier on or off. Requires enable_block_cache.
  bool superblocks = false;
  // Block-entry count at which a region is compiled (minimum 1).
  uint32_t superblock_hot_threshold = 16;
  // Stop the whole run at the first bug (Driver Verifier semantics; DDT's
  // default keeps going and finds multiple bugs in one run, §5.1).
  bool stop_after_first_bug = false;
  size_t max_trace_tail_events = 1 << 18;
  SolverConfig solver;

  // Fault-injection plan for this pass (§3.4 campaigns). Empty = plain run.
  // Kernel API handlers consult the plan through the engine at each
  // fault-eligible site; matching (class, occurrence) points fail
  // deterministically on every path. Recorded into bugs for replay.
  FaultPlan fault_plan;

  // --- Guided replay (§3.5): re-execute a recorded buggy path concretely ---
  // When guided is true, every symbolic value is immediately resolved to a
  // concrete one by looking up its origin in guided_inputs; no forking
  // happens; annotation alternatives are applied in-place per the recorded
  // schedule; interrupts fire per forced_interrupt_schedule.
  bool guided = false;
  std::map<std::string, uint64_t> guided_inputs;  // OriginKeyString -> value
  std::vector<std::pair<uint32_t, std::string>> forced_alternatives;  // (kcall seq, label)

  // --- Concolic seed derivation (src/fuzz) ---
  // When nonzero, every terminated path with constraints asks the solver for
  // a concrete model (the paper's replayable concrete inputs) and records it
  // as a PathSeed, up to this cap. 0 = off (no extra solver work, no
  // behavior change).
  uint32_t max_path_seeds = 0;

  // --- Promotion hints (src/fuzz promotion channel) ---
  // A coverage-novel fuzz input promoted back to symbolic exploration:
  // OriginKeyString -> concrete value. During a (non-guided) symbolic run,
  // concretization picks the hinted evaluation when it is feasible under the
  // current path constraints, and a branch whose fork would be dropped (state
  // or depth cap) follows the hint-evaluated direction instead of defaulting
  // to taken — biasing exploration toward the fuzz input's concrete path
  // while remaining sound (every choice is constraint-checked). Empty = no
  // effect anywhere.
  std::map<std::string, uint64_t> concretization_hints;

  // Cooperative cancellation token shared with a supervisor (the campaign
  // watchdog): when it becomes true the run loop stops at the next budget
  // check and any in-flight SAT query unwinds within one propagation. When
  // null the engine allocates a private token so RequestAbort() always works.
  std::shared_ptr<std::atomic<bool>> abort_token;

  // --- Observability (src/obs); both null = disabled, the runtime kill
  // switch. Non-owning: must outlive the engine. The engine propagates them
  // into its solver and block cache, publishes its stats as named metrics at
  // the end of Run(), and attributes run wall time to phases. Observation
  // only — they never influence exploration, bug sets, or reports.
  obs::MetricsRegistry* metrics = nullptr;
  obs::PassProfile* profile = nullptr;
};

// Stable string key identifying a symbolic variable's origin across runs
// (used to map solved inputs onto replay inputs).
std::string OriginKeyString(const VarOrigin& origin);

struct EngineStats {
  uint64_t instructions = 0;
  uint64_t forks = 0;
  uint64_t dropped_forks = 0;  // suppressed by max_states
  uint64_t states_created = 0;
  uint64_t states_terminated = 0;
  uint64_t max_live_states = 0;
  uint64_t kernel_calls = 0;
  uint64_t interrupts_injected = 0;
  uint64_t entry_invocations = 0;
  uint64_t concretizations = 0;
  uint64_t concretization_backtracks = 0;
  // Deliberate kernel-API failures delivered by the active FaultPlan.
  uint64_t faults_injected = 0;
  // Hardware fault plane (device-level schedules in the same FaultPlan):
  // total points triggered, plus per-behavior tallies.
  uint64_t hw_faults_injected = 0;
  uint64_t hw_removals = 0;           // surprise removals (MMIO- or IRQ-indexed)
  uint64_t hw_sticky_faults = 0;      // sticky all-ones error states latched
  uint64_t hw_irq_storms = 0;         // interrupts forced past the path budget
  uint64_t hw_irq_suppressed = 0;     // deliveries withheld (drought/removal)
  uint64_t hw_doorbells_dropped = 0;  // single writes silently dropped
  uint64_t hw_reads_floated = 0;      // reads served all-ones (removed/sticky)
  uint64_t hw_writes_dropped = 0;     // writes dropped after removal
  uint64_t hw_removal_events = 0;     // PnP removal deliveries to the exerciser
  // States killed by the resource governor (per-state fuel or memory
  // pressure), as opposed to normal termination.
  uint64_t states_evicted = 0;
  // Peak approximate working-set across live states: COW delta bytes plus
  // path-constraint counts (the §5.2 "DDT used at most 4 GB" accounting,
  // scaled to this reproduction).
  uint64_t peak_state_bytes = 0;
  // Translation-cache accounting: straight-line blocks decoded once, and
  // instruction fetches served from already-decoded slots.
  uint64_t blocks_decoded = 0;
  uint64_t block_cache_hits = 0;
  // Probes the cache could not serve (misaligned pc or undecodable slot) that
  // fell back to byte-wise fetch, and blocks whose entry counter crossed the
  // tier-2 hotness threshold.
  uint64_t block_cache_fallback_fetches = 0;
  uint64_t block_cache_hot_blocks = 0;
  // Tier-2 superblock accounting (volatile: never in deterministic reports).
  uint64_t superblocks_compiled = 0;
  uint64_t superblock_ops_lowered = 0;
  uint64_t superblock_entries = 0;       // dispatcher entries into compiled regions
  uint64_t superblock_chains = 0;        // direct superblock-to-superblock transfers
  uint64_t superblock_side_exits = 0;    // pre-instruction exits to tier 1
  uint64_t superblock_instructions = 0;  // guest instructions retired by tier 2
  // Path-explosion control (volatile: never in deterministic reports).
  uint64_t states_merged = 0;  // diamond merges performed (one per pair)
  uint64_t loop_kills = 0;     // back-edge-starvation kills
  uint64_t edge_kills = 0;     // explicit edge-rule kills (sum of per-rule)
  // Per-rule kill counts, index-aligned with PathCtlConfig::kill_edges.
  std::vector<uint64_t> edge_rule_kills;
  // Fork profiler: per-(fork-site pc, fault-site) attribution of the state
  // churn counters above. Always populated (pathctl on or off).
  ForkSiteTable fork_sites;
  double wall_ms = 0;

  // Adds `other`'s counters into this (sums, except high-water marks which
  // take the max). Used to aggregate per-pass stats across a campaign.
  void Accumulate(const EngineStats& other);
};

// One coverage datapoint, taken whenever a new basic block is first covered.
struct CoverageSample {
  uint64_t instructions = 0;
  double wall_ms = 0;
  size_t covered_blocks = 0;
};

// A solver-derived concrete model of one explored symbolic path (§3.5's
// replayable concrete inputs, packaged for the fuzz subsystem): everything a
// guided concrete re-execution needs to retrace the path. Collected when
// EngineConfig::max_path_seeds is nonzero.
struct PathSeed {
  std::vector<SolvedInput> inputs;
  std::vector<uint32_t> interrupt_schedule;  // boundary-crossing indices
  std::vector<std::pair<uint32_t, std::string>> alternatives;  // (kcall seq, label)
  std::vector<uint32_t> workload_trail;  // entry slots invoked, in order
  std::string termination;               // why the path ended
};

class Engine : public CheckerHost, private BlockCountOracle {
 public:
  explicit Engine(const EngineConfig& config = EngineConfig());
  ~Engine() override;

  // --- setup ---
  void AddChecker(std::unique_ptr<Checker> checker);
  void SetAnnotations(AnnotationSet annotations) { annotations_ = std::move(annotations); }
  // Registry contents the kernel serves to MosReadConfiguration.
  void SetRegistry(std::map<std::string, uint32_t> registry) { registry_ = std::move(registry); }
  void SetWorkload(std::vector<WorkloadStep> workload) { workload_ = std::move(workload); }
  // Device model prototype for the initial state (SymbolicDevice by default).
  void SetDevice(std::unique_ptr<DeviceModel> device) { device_proto_ = std::move(device); }

  // Loads the driver image behind the PCI shell and prepares the initial
  // state (but does not run). Fails on unresolvable imports or a bad image.
  Status LoadDriver(const DriverImage& image, const PciDescriptor& descriptor);

  // Explores until budgets are exhausted or every state terminated.
  void Run();

  // Cooperative cancellation: may be called from any thread (typically a
  // watchdog). The engine winds down at the next budget check; partial
  // results (bugs, stats, coverage) remain valid.
  void RequestAbort() { abort_token_->store(true, std::memory_order_relaxed); }
  bool AbortRequested() const { return abort_token_->load(std::memory_order_relaxed); }

  // --- results ---
  const std::vector<Bug>& bugs() const { return bugs_; }
  const EngineStats& stats() const { return stats_; }
  const std::vector<CoverageSample>& coverage_samples() const { return coverage_samples_; }
  size_t covered_blocks() const { return covered_blocks_.size(); }
  size_t total_blocks() const { return cfg_.NumBlocks(); }
  const std::unordered_set<uint32_t>& covered_block_leaders() const { return covered_blocks_; }
  // Covered block leaders as a dense instruction-slot bitmap (the stable
  // coverage-novelty API; see src/vm/coverage_map.h). Slot i = the aligned
  // instruction at code_begin + i * kInstructionSize.
  CoverageBitmap CoverageSnapshot() const;
  // Path seeds collected this run (empty unless config.max_path_seeds > 0).
  const std::vector<PathSeed>& path_seeds() const { return path_seeds_; }
  const Cfg& cfg() const { return cfg_; }
  const LoadedDriver& loaded_driver() const { return loaded_; }
  const MemStats& mem_stats() const { return mem_stats_; }
  // The decoded-block translation cache; null when enable_block_cache is off
  // or LoadDriver has not run.
  BlockCache* block_cache() { return block_cache_.get(); }
  // Fault-eligible call sites observed across all paths of this run; a
  // campaign uses the baseline pass's profile to enumerate injection plans.
  const FaultSiteProfile& fault_site_profile() const { return fault_site_profile_; }
  // Device-interaction high-water marks (MMIO accesses, crossings, interrupt
  // deliveries) — the index spaces hardware fault plans are placed in.
  const HwSiteProfile& hw_site_profile() const { return hw_site_profile_; }
  Solver& solver() { return solver_; }
  ExprContext* expr() override { return &ctx_; }

  // --- CheckerHost ---
  void ReportBug(ExecutionState& st, BugType type, const std::string& title,
                 const std::string& details) override;
  Solver& checker_solver() override { return solver_; }

 private:
  friend class EngineKernelContext;

  // --- BlockCountOracle ---
  uint64_t BlockCountAt(uint32_t pc) const override;

  // State pool helpers.
  void AddState(std::unique_ptr<ExecutionState> state);
  std::unique_ptr<ExecutionState> CloneState(ExecutionState& st);

  // One scheduling quantum for `st`: either execute driver code or let the
  // scheduler pick the next workload item / pending callback.
  void StepState(ExecutionState& st);
  void ScheduleNext(ExecutionState& st);
  void FinishState(ExecutionState& st, const std::string& why);

  // Interpreter.
  void ExecuteBlock(ExecutionState& st);
  // Executes one instruction; returns false if the quantum must end
  // (boundary, fault, fork preference, frame switch).
  bool ExecuteInstruction(ExecutionState& st);
  // Tier-2 dispatch. ProbeSuperblock bumps the block-entry counter at CFG
  // leaders and returns the compiled superblock to enter (compiling it when
  // the counter crosses the hotness threshold), or null to stay in tier 1.
  // RunSuperblock is the threaded-code executor: runs from `sb` with `i`
  // instructions of the current quantum already used, returns the updated
  // count with st.pc always left at the next instruction to execute.
  const Superblock* ProbeSuperblock(uint32_t pc);
  int RunSuperblock(ExecutionState& st, const Superblock* sb, int i);
  void HandleKCall(ExecutionState& st, const Instruction& insn);
  void HandleMagicReturn(ExecutionState& st);
  void HandleBranch(ExecutionState& st, ExprRef cond, uint32_t taken_pc, uint32_t fall_pc);
  // A branch direction proved infeasible under the current constraints; if a
  // kernel-call concretization caused that, revive the checkpoint constrained
  // toward `blocked_cond` (§3.2 backtracking). Returns true if revived.
  bool MaybeBacktrackConcretization(ExecutionState& st, ExprRef blocked_cond);

  // Memory access paths (after address concretization).
  Value ReadMem(ExecutionState& st, uint32_t addr, unsigned size, uint32_t pc, bool addr_was_sym,
                ExprRef addr_expr, bool* ok);
  bool WriteMem(ExecutionState& st, uint32_t addr, unsigned size, const Value& value, uint32_t pc,
                bool addr_was_sym, ExprRef addr_expr);

  // Driver invocation machinery.
  void InvokeGuestFunction(ExecutionState& st, uint32_t fn, const std::vector<Value>& args,
                           ExecContextKind kind, int entry_slot);
  void RunEntryAnnotations(ExecutionState& st, int slot);

  // Kernel/driver boundary crossing: counts the crossing and (maybe) injects
  // a symbolic interrupt by forking.
  void CrossBoundary(ExecutionState& st);
  void DeliverIsr(ExecutionState& st, uint32_t crossing_index);

  // Helpers shared with EngineKernelContext.
  uint32_t ConcretizeValue(ExecutionState& st, const Value& value, const std::string& reason);
  // Two-phase concretization for memory addresses: pick a feasible value
  // WITHOUT binding it (so checkers can still reason about the symbolic
  // address), then bind once the access is approved.
  std::optional<uint32_t> PickValue(ExecutionState& st, ExprRef e);
  void BindConcretization(ExecutionState& st, ExprRef e, uint32_t value,
                          const std::string& reason);
  // Resolves a symbolic memory address: if it can escape every region the
  // driver may touch, fork a state taking that choice and report the bug
  // there; constrain this state in-bounds; pick and bind a concrete address.
  // Returns nullopt if this state terminated.
  std::optional<uint32_t> ResolveSymbolicAddress(ExecutionState& st, ExprRef addr_expr,
                                                 unsigned size, bool is_write);
  // Guided replay: resolve a symbolic value to the recorded concrete input.
  Value MaybeGuide(const Value& value);
  uint32_t GuidedEval(ExprRef e);
  // Promotion hints: evaluate `e` under concretization_hints (unhinted
  // origins default to 0). Only meaningful when hints are non-empty.
  uint32_t HintEval(ExprRef e);
  // Records a PathSeed for a finished path when seed derivation is on.
  void MaybeCollectPathSeed(ExecutionState& st, const std::string& why);
  Value ReadMemValueRaw(ExecutionState& st, uint32_t addr, unsigned size);
  void WriteMemValueRaw(ExecutionState& st, uint32_t addr, const Value& value, unsigned size);
  void EmitKernelEvent(ExecutionState& st, const KernelEvent& event);
  // Fault-eligible site hit in `st`: bumps the per-path occurrence counter
  // (always — occurrence indices must be deterministic whether or not a plan
  // is active), updates the engine-wide site profile, and consults the
  // configured FaultPlan. True = the kernel call must fail now.
  bool ShouldInjectFault(ExecutionState& st, FaultClass cls, const char* api);
  // Hardware fault plane: records a triggered device-level fault (schedule
  // entry, stats, trace instant, kernel event). RemoveDevice additionally
  // latches the hot-unplug condition and emits the PnP removal event.
  void RecordHwFault(ExecutionState& st, HwFaultKind kind, uint32_t index);
  void RemoveDevice(ExecutionState& st, HwFaultKind kind, uint32_t index);
  // Memory-pressure eviction: terminates the largest states until the
  // approximate working set is back under max_state_bytes.
  void EvictStatesOverMemoryBudget(uint64_t current_bytes);
  void DoBugCheck(ExecutionState& st, uint32_t code, const std::string& message);
  void AddConstraintChecked(ExecutionState& st, ExprRef constraint);

  void NoteCoverage(ExecutionState& st, uint32_t pc);
  // --- path-explosion control (src/engine/pathctl.h) ---
  // The fault-site label for profiler attribution: the spawning path's most
  // recent injected fault as "class#occurrence", or "-".
  static std::string CurrentFaultLabel(const ExecutionState& st);
  // Stamps fork-profiler lineage onto a fresh fork child spawned at `st`'s
  // current position, and clears any diamond-merge group inherited from the
  // parent (non-branch forks never form mergeable diamonds).
  void StampForkChild(ExecutionState& parent, ExecutionState& child);
  // Attributes a suppressed fork / governor eviction at `st`'s position.
  void NoteDroppedFork(ExecutionState& st);
  void NoteEvictedState(ExecutionState& st);
  // Loop/edge killer, called from NoteCoverage on each block-leader entry.
  // May terminate `st` (callers must re-check st.alive()).
  void MaybeKillOnEdge(ExecutionState& st, uint32_t from_leader, uint32_t to_leader);
  // Diamond merge: `st` arrived at its merge_pc. Merges with the parked
  // sibling if present (terminating `st`), parks `st` if the sibling is
  // still en route, or dissolves the group when the sibling is gone.
  // Returns true if `st` stopped (merged away or parked).
  bool TryMergeAtPc(ExecutionState& st);
  // Clears diamond bookkeeping on every state of `group` (0 = no-op).
  void DissolveSiblingGroup(uint64_t group);
  bool MergeEligible(const ExecutionState& st) const;
  bool BudgetExceeded() const;
  double ElapsedMs() const;
  // Publishes EngineStats/SolverStats into config_.metrics as named counters
  // at the end of Run(); no-op when metrics are off.
  void PublishObsMetrics();

  std::vector<SolvedInput> SolveInputs(ExecutionState& st);

  EngineConfig config_;
  std::shared_ptr<std::atomic<bool>> abort_token_;  // never null after ctor
  ExprContext ctx_;
  Solver solver_;
  Rng rng_;

  // Driver under test.
  DriverImage image_;
  LoadedDriver loaded_;
  PciDescriptor pci_;
  Cfg cfg_;
  // Decode-once translation cache over the immutable code segment, plus a
  // dense leader bitmap (one slot per aligned instruction) replacing the
  // per-instruction std::map lookup on the coverage path.
  std::unique_ptr<BlockCache> block_cache_;
  std::vector<uint8_t> block_leader_slots_;
  // Tier-2 superblock table; null unless config_.superblocks (and the block
  // cache) are enabled.
  std::unique_ptr<SuperblockCache> superblocks_;
  std::vector<KernelApiFn> import_table_;  // resolved import handlers
  std::map<std::string, uint32_t> registry_;
  std::vector<WorkloadStep> workload_;
  std::unique_ptr<DeviceModel> device_proto_;
  AnnotationSet annotations_;

  // State pool.
  std::vector<std::unique_ptr<ExecutionState>> states_;
  std::unique_ptr<Searcher> searcher_;
  uint64_t next_state_id_ = 1;
  // Diamond-merge group ids (0 = not in a group).
  uint64_t next_sibling_group_ = 1;

  // Checkers.
  std::vector<std::unique_ptr<Checker>> checkers_;

  // Results.
  std::vector<Bug> bugs_;
  std::set<std::string> bug_dedupe_;
  // (snapshot id, blocked condition) pairs already revived once.
  std::set<std::pair<uint64_t, ExprRef>> backtrack_memo_;
  EngineStats stats_;
  MemStats mem_stats_;
  FaultSiteProfile fault_site_profile_;
  HwSiteProfile hw_site_profile_;
  std::vector<PathSeed> path_seeds_;

  // Coverage.
  std::unordered_map<uint32_t, uint64_t> block_counts_;  // leader -> executions
  std::unordered_set<uint32_t> covered_blocks_;
  std::vector<CoverageSample> coverage_samples_;

  std::chrono::steady_clock::time_point run_start_;
  bool stop_requested_ = false;

  // Cached metrics handle for the periodic live-state sample (registration
  // takes a lock; updates do not). Null when metrics are off.
  obs::Gauge* obs_live_states_ = nullptr;
};

}  // namespace ddt

#endif  // SRC_ENGINE_ENGINE_H_
