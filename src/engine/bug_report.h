// Bug reports: DDT's output (§3.5).
//
// A Bug couples the classification and human-readable description (the
// Table-2 "Bug Type" / "Description" columns) with replayable evidence: the
// execution trace, the concrete inputs derived from the path constraints by
// the solver, and the interrupt schedule.
#ifndef SRC_ENGINE_BUG_REPORT_H_
#define SRC_ENGINE_BUG_REPORT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/engine/fault_injection.h"
#include "src/expr/expr.h"
#include "src/kernel/api.h"
#include "src/trace/trace.h"

namespace ddt {

enum class BugType {
  kMemoryCorruption,  // out-of-bounds write / wild write
  kSegfault,          // invalid read / null dereference / bad jump
  kResourceLeak,      // unfreed handles, packets, pools
  kMemoryLeak,        // unfreed pool memory
  kRaceCondition,     // interrupt-interleaving bug
  kKernelCrash,       // bugcheck raised by kernel/verifier (API misuse)
  kDeadlock,          // lock-order cycle or self-deadlock
  kApiMisuse,         // non-crashing API contract violation
  kInfiniteLoop,      // suspected hang
};

const char* BugTypeName(BugType type);

// One concrete input that drives the driver down the buggy path: a solved
// symbolic variable, mapped back to its origin (hardware read #n, registry
// parameter, entry argument...).
struct SolvedInput {
  std::string var_name;
  VarOrigin origin;
  uint8_t width = 32;
  uint64_t value = 0;
  // True if this variable appears in the constraints added just before the
  // bug fired — the proximate cause, as opposed to inputs that merely shaped
  // the path earlier (bug analysis keys off this).
  bool proximate = false;
};

struct Bug {
  BugType type = BugType::kSegfault;
  std::string title;    // one-line description (Table 2 style)
  std::string details;  // longer explanation
  std::string driver;
  std::string checker;  // who detected it
  uint32_t pc = 0;      // guest pc at detection
  uint64_t state_id = 0;
  ExecContextKind context = ExecContextKind::kNone;

  // Replayable evidence.
  std::vector<TraceEvent> trace;
  std::vector<SolvedInput> inputs;
  std::vector<uint32_t> interrupt_schedule;  // boundary-crossing indices
  std::vector<uint32_t> workload_trail;      // entry slots invoked, in order
  // Annotation alternatives taken on the path: (kernel call seq, label).
  std::vector<std::pair<uint32_t, std::string>> alternatives;
  // Fault plan active during the run that found this bug, and the faults
  // actually injected on the buggy path (§3.4 campaigns). Replay re-applies
  // the plan; deterministic occurrence counters reproduce the schedule.
  FaultPlan fault_plan;
  std::vector<InjectedFault> fault_schedule;
  // Device-level faults triggered on the buggy path (the hardware fault
  // plane's half of the schedule; the plan above carries its hw_points).
  std::vector<InjectedHwFault> hw_fault_schedule;
  // The path constraints at detection time (the satisfiability obligation
  // behind `inputs`). Expression pointers are owned by the engine's
  // ExprContext — valid while the Ddt/Engine instance lives; export with
  // ToSmtLib for archival.
  std::vector<ExprRef> constraints;

  // Formats the Table-2 style row: "driver | type | title".
  std::string Row() const;
  // Full report including inputs and the tail of the trace. With a
  // symbolizer, trace addresses render as symbol+offset (§3.5's source
  // mapping, driven by the assembler's symbol table).
  std::string Format(size_t trace_lines = 40, const TraceSymbolizer* symbolizer = nullptr) const;
};

}  // namespace ddt

#endif  // SRC_ENGINE_BUG_REPORT_H_
