// Concrete workload generator — the Device Path Exerciser analogue (§4.3).
//
// DDT "uses Microsoft's Device Path Exerciser as a concrete workload
// generator to invoke the entry points of the drivers to be tested": this
// module builds the per-driver-class scripts of entry-point invocations the
// engine's scheduler walks. Symbolic execution then explores paths from each
// exercised entry point; annotations (optionally) make the request arguments
// symbolic.
#ifndef SRC_KERNEL_EXERCISER_H_
#define SRC_KERNEL_EXERCISER_H_

#include <string>
#include <vector>

#include "src/kernel/kernel_state.h"

namespace ddt {

enum class DriverClass {
  kNetwork,  // NDIS-miniport-flavored: Query/SetInformation, Send
  kAudio,    // WDM-audio-flavored: Write (playback), Stop
};

// The paper's workloads: "for the network drivers, the workload consisted of
// sending one packet; for the audio drivers, we played a small sound file" —
// plus the error-mode OID pokes the Device Path Exerciser issues.
std::vector<WorkloadStep> BuildWorkload(DriverClass driver_class);

// Driver class by corpus name ("rtl8029" -> network, "audiopci" -> audio...).
DriverClass DriverClassFor(const std::string& driver_name);

}  // namespace ddt

#endif  // SRC_KERNEL_EXERCISER_H_
