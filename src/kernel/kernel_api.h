// The MiniOS kernel API: name -> implementation table.
//
// Every function a driver can import lives here. Implementations run
// concretely against the KernelContext capability surface, concretizing
// symbolic arguments on demand. In-guest Driver Verifier checks (§3.1.2) are
// woven into the implementations and raise bugchecks on API misuse — DDT
// intercepts those via its crash-handler hook, exactly as the paper
// cooperates with Microsoft's Driver Verifier.
#ifndef SRC_KERNEL_KERNEL_API_H_
#define SRC_KERNEL_KERNEL_API_H_

#include <map>
#include <string>

#include "src/kernel/kernel_context.h"

namespace ddt {

using KernelApiFn = void (*)(KernelContext&);

// All registered kernel API functions, keyed by import name.
const std::map<std::string, KernelApiFn>& KernelApiTable();

// Lookup; nullptr if the name is unknown (an unresolved driver import).
KernelApiFn FindKernelApi(const std::string& name);

// Internal allocation helper shared by the pool APIs and the packet pool
// (exposed for the exerciser, which allocates request buffers).
uint32_t KernelAllocate(KernelContext& kc, uint32_t size, uint32_t tag, const std::string& api);

// Removes a grant starting at `begin` (used when kernel objects are freed).
void RemoveGrant(KernelState& ks, uint32_t begin);

}  // namespace ddt

#endif  // SRC_KERNEL_KERNEL_API_H_
