#include "src/kernel/kernel_state.h"

namespace ddt {

const PoolAllocation* KernelState::FindAllocation(uint32_t addr) const {
  // Largest base <= addr, then bounds check.
  auto it = pool.upper_bound(addr);
  if (it == pool.begin()) {
    return nullptr;
  }
  --it;
  const PoolAllocation& alloc = it->second;
  if (addr >= alloc.addr && addr < alloc.addr + alloc.size) {
    return &alloc;
  }
  return nullptr;
}

bool KernelState::IsGranted(uint32_t addr) const { return FindGrant(addr) != nullptr; }

const MemoryGrant* KernelState::FindGrant(uint32_t addr) const {
  for (const MemoryGrant& grant : grants) {
    if (addr >= grant.begin && addr < grant.end) {
      return &grant;
    }
  }
  return nullptr;
}

void KernelState::RevokeGrantsForSlot(int slot) {
  std::vector<MemoryGrant> kept;
  kept.reserve(grants.size());
  for (const MemoryGrant& grant : grants) {
    if (!(grant.revoke_on_entry_exit && grant.granted_in_slot == slot)) {
      kept.push_back(grant);
    }
  }
  grants = std::move(kept);
}

std::vector<const PoolAllocation*> KernelState::LiveAllocations(int slot) const {
  std::vector<const PoolAllocation*> out;
  for (const auto& [addr, alloc] : pool) {
    if (alloc.alive && (slot < 0 || alloc.alloc_entry_slot == slot)) {
      out.push_back(&alloc);
    }
  }
  return out;
}

std::vector<uint32_t> KernelState::OpenConfigHandles(int slot) const {
  std::vector<uint32_t> out;
  for (const auto& [handle, state] : config_handles) {
    if (state.open && (slot < 0 || state.opened_in_slot == slot)) {
      out.push_back(handle);
    }
  }
  return out;
}

}  // namespace ddt
