#include "src/kernel/api.h"

namespace ddt {

const char* IrqlName(Irql irql) {
  switch (irql) {
    case Irql::kPassive:
      return "PASSIVE";
    case Irql::kDispatch:
      return "DISPATCH";
    case Irql::kDevice:
      return "DEVICE";
  }
  return "?";
}

const char* ExecContextName(ExecContextKind kind) {
  switch (kind) {
    case ExecContextKind::kNone:
      return "none";
    case ExecContextKind::kEntryPoint:
      return "entry-point";
    case ExecContextKind::kIsr:
      return "ISR";
    case ExecContextKind::kDpc:
      return "DPC";
    case ExecContextKind::kTimer:
      return "timer";
  }
  return "?";
}

const char* EntrySlotName(int slot) {
  switch (slot) {
    case kEpInitialize:
      return "Initialize";
    case kEpHalt:
      return "Halt";
    case kEpQueryInfo:
      return "QueryInformation";
    case kEpSetInfo:
      return "SetInformation";
    case kEpSend:
      return "Send";
    case kEpWrite:
      return "Write";
    case kEpStop:
      return "Stop";
    case kEpDiag:
      return "Diag";
    default:
      return "?";
  }
}

const char* KernelEventKindName(KernelEvent::Kind kind) {
  switch (kind) {
    case KernelEvent::Kind::kApiEnter:
      return "api-enter";
    case KernelEvent::Kind::kApiExit:
      return "api-exit";
    case KernelEvent::Kind::kEntryEnter:
      return "entry-enter";
    case KernelEvent::Kind::kEntryExit:
      return "entry-exit";
    case KernelEvent::Kind::kInterruptInjected:
      return "interrupt-injected";
    case KernelEvent::Kind::kBugCheck:
      return "bugcheck";
    case KernelEvent::Kind::kAlloc:
      return "alloc";
    case KernelEvent::Kind::kFree:
      return "free";
    case KernelEvent::Kind::kConfigOpen:
      return "config-open";
    case KernelEvent::Kind::kConfigClose:
      return "config-close";
    case KernelEvent::Kind::kConfigRead:
      return "config-read";
    case KernelEvent::Kind::kLockAcquire:
      return "lock-acquire";
    case KernelEvent::Kind::kLockRelease:
      return "lock-release";
    case KernelEvent::Kind::kIrqlChange:
      return "irql-change";
    case KernelEvent::Kind::kTimerInit:
      return "timer-init";
    case KernelEvent::Kind::kTimerSet:
      return "timer-set";
    case KernelEvent::Kind::kIsrRegister:
      return "isr-register";
    case KernelEvent::Kind::kDpcQueue:
      return "dpc-queue";
    case KernelEvent::Kind::kPacketAlloc:
      return "packet-alloc";
    case KernelEvent::Kind::kPacketFree:
      return "packet-free";
    case KernelEvent::Kind::kPacketPoolAlloc:
      return "packet-pool-alloc";
    case KernelEvent::Kind::kPacketPoolFree:
      return "packet-pool-free";
    case KernelEvent::Kind::kFaultInjected:
      return "fault-injected";
    case KernelEvent::Kind::kHwFaultInjected:
      return "hw-fault-injected";
    case KernelEvent::Kind::kDeviceRemoved:
      return "device-removed";
  }
  return "?";
}

const char* FaultClassName(FaultClass cls) {
  switch (cls) {
    case FaultClass::kAllocation:
      return "allocation";
    case FaultClass::kMapIoSpace:
      return "map-io-space";
    case FaultClass::kRegistryRead:
      return "registry-read";
    case FaultClass::kDeviceNotPresent:
      return "device-not-present";
    case FaultClass::kNumFaultClasses:
      break;
  }
  return "?";
}

}  // namespace ddt
