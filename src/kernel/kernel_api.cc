#include "src/kernel/kernel_api.h"

#include <algorithm>

#include "src/hw/device.h"
#include "src/support/check.h"
#include "src/support/log.h"
#include "src/support/strings.h"
#include "src/vm/layout.h"

namespace ddt {

namespace {

// --- Shared helpers -----------------------------------------------------------

uint32_t ArgU32(KernelContext& kc, int index, const char* what) {
  return kc.Concretize(kc.Arg(index), what);
}

void ReturnU32(KernelContext& kc, uint32_t value) { kc.SetReturn(Value::Concrete(value)); }

// Driver Verifier: pageable-path APIs must run at PASSIVE_LEVEL.
bool RequirePassive(KernelContext& kc, const char* api) {
  KernelState& ks = kc.kernel();
  if (ks.verifier.enabled && ks.verifier.check_irql && ks.irql != Irql::kPassive) {
    kc.BugCheck(kBugcheckDriverIrqlViolation,
                StrFormat("%s called at IRQL %s (requires PASSIVE): pageable code touched at "
                          "raised IRQL",
                          api, IrqlName(ks.irql)));
    return false;
  }
  return true;
}

bool RequireAtMostDispatch(KernelContext& kc, const char* api) {
  KernelState& ks = kc.kernel();
  if (ks.verifier.enabled && ks.verifier.check_irql && ks.irql > Irql::kDispatch) {
    kc.BugCheck(kBugcheckDriverIrqlViolation,
                StrFormat("%s called at IRQL %s (max DISPATCH)", api, IrqlName(ks.irql)));
    return false;
  }
  return true;
}

void SetIrql(KernelContext& kc, Irql next) {
  KernelState& ks = kc.kernel();
  Irql old = ks.irql;
  ks.irql = next;
  KernelEvent event;
  event.kind = KernelEvent::Kind::kIrqlChange;
  event.a = static_cast<uint32_t>(next);
  event.b = static_cast<uint32_t>(old);
  kc.EmitEvent(event);
}

// --- Driver registration --------------------------------------------------------

void MosRegisterDriver(KernelContext& kc) {
  KernelState& ks = kc.kernel();
  uint32_t table_ptr = ArgU32(kc, 0, "MosRegisterDriver.table");
  for (int slot = 0; slot < kNumEntrySlots; ++slot) {
    ks.entry_points[static_cast<size_t>(slot)] =
        kc.ReadGuestU32(table_ptr + static_cast<uint32_t>(slot) * 4);
  }
  if (ks.entry_points[kEpInitialize] == 0) {
    ReturnU32(kc, kStatusUnsuccessful);
    return;
  }
  ks.driver_registered = true;
  ReturnU32(kc, kStatusSuccess);
}

// --- Pool allocation -------------------------------------------------------------

}  // namespace

uint32_t KernelAllocate(KernelContext& kc, uint32_t size, uint32_t tag, const std::string& api) {
  KernelState& ks = kc.kernel();
  if (kc.ShouldInjectFault(FaultClass::kAllocation, api.c_str())) {
    return 0;
  }
  // 16-byte aligned bump allocation; never recycled, so use-after-free is
  // detectable as access to a dead allocation.
  uint32_t aligned = (size + 15u) & ~15u;
  if (aligned == 0) {
    aligned = 16;
  }
  if (ks.heap_cursor + aligned > kKernelHeapLimit) {
    return 0;  // genuinely out of heap window
  }
  uint32_t addr = ks.heap_cursor;
  ks.heap_cursor += aligned;
  PoolAllocation alloc;
  alloc.addr = addr;
  alloc.size = size;
  alloc.tag = tag;
  alloc.alive = true;
  alloc.seq = ks.alloc_seq++;
  alloc.alloc_entry_slot = ks.current_entry_slot;
  alloc.api = api;
  ks.pool.emplace(addr, alloc);

  KernelEvent event;
  event.kind = KernelEvent::Kind::kAlloc;
  event.a = addr;
  event.b = size;
  event.c = tag;
  event.text = api;
  kc.EmitEvent(event);
  return addr;
}

void RemoveGrant(KernelState& ks, uint32_t begin) {
  ks.grants.erase(std::remove_if(ks.grants.begin(), ks.grants.end(),
                                 [begin](const MemoryGrant& g) { return g.begin == begin; }),
                  ks.grants.end());
}

namespace {

bool FreeAllocation(KernelContext& kc, uint32_t addr, const char* api) {
  KernelState& ks = kc.kernel();
  auto it = ks.pool.find(addr);
  if (it == ks.pool.end() || !it->second.alive) {
    if (ks.verifier.enabled && ks.verifier.check_pool) {
      kc.BugCheck(kBugcheckBadPointer,
                  StrFormat("%s: freeing invalid or already-freed pool pointer 0x%x", api, addr));
    }
    return false;
  }
  it->second.alive = false;
  KernelEvent event;
  event.kind = KernelEvent::Kind::kFree;
  event.a = addr;
  kc.EmitEvent(event);
  return true;
}

void MosAllocatePool(KernelContext& kc) {
  if (!RequireAtMostDispatch(kc, "MosAllocatePool")) {
    return;
  }
  uint32_t size = ArgU32(kc, 0, "MosAllocatePool.size");
  ReturnU32(kc, KernelAllocate(kc, size, 0, "MosAllocatePool"));
}

void MosAllocatePoolWithTag(KernelContext& kc) {
  if (!RequireAtMostDispatch(kc, "MosAllocatePoolWithTag")) {
    return;
  }
  uint32_t size = ArgU32(kc, 0, "MosAllocatePoolWithTag.size");
  uint32_t tag = ArgU32(kc, 1, "MosAllocatePoolWithTag.tag");
  ReturnU32(kc, KernelAllocate(kc, size, tag, "MosAllocatePoolWithTag"));
}

void MosFreePool(KernelContext& kc) {
  if (!RequireAtMostDispatch(kc, "MosFreePool")) {
    return;
  }
  uint32_t addr = ArgU32(kc, 0, "MosFreePool.ptr");
  FreeAllocation(kc, addr, "MosFreePool");
  ReturnU32(kc, kStatusSuccess);
}

// NDIS-style: status return, pointer through an out-parameter.
void MosAllocateMemoryWithTag(KernelContext& kc) {
  if (!RequireAtMostDispatch(kc, "MosAllocateMemoryWithTag")) {
    return;
  }
  uint32_t out_ptr = ArgU32(kc, 0, "MosAllocateMemoryWithTag.out");
  uint32_t size = ArgU32(kc, 1, "MosAllocateMemoryWithTag.size");
  uint32_t tag = ArgU32(kc, 2, "MosAllocateMemoryWithTag.tag");
  uint32_t addr = KernelAllocate(kc, size, tag, "MosAllocateMemoryWithTag");
  if (addr == 0) {
    ReturnU32(kc, kStatusInsufficientResources);
    return;
  }
  kc.WriteGuestU32(out_ptr, addr);
  ReturnU32(kc, kStatusSuccess);
}

void MosFreeMemory(KernelContext& kc) {
  if (!RequireAtMostDispatch(kc, "MosFreeMemory")) {
    return;
  }
  uint32_t addr = ArgU32(kc, 0, "MosFreeMemory.ptr");
  FreeAllocation(kc, addr, "MosFreeMemory");
  ReturnU32(kc, kStatusSuccess);
}

void MosZeroMemory(KernelContext& kc) {
  uint32_t addr = ArgU32(kc, 0, "MosZeroMemory.ptr");
  uint32_t len = ArgU32(kc, 1, "MosZeroMemory.len");
  len = std::min<uint32_t>(len, 1u << 20);
  for (uint32_t i = 0; i < len; ++i) {
    kc.WriteGuestU8(addr + i, 0);
  }
  ReturnU32(kc, kStatusSuccess);
}

void MosMoveMemory(KernelContext& kc) {
  uint32_t dst = ArgU32(kc, 0, "MosMoveMemory.dst");
  uint32_t src = ArgU32(kc, 1, "MosMoveMemory.src");
  uint32_t len = ArgU32(kc, 2, "MosMoveMemory.len");
  len = std::min<uint32_t>(len, 1u << 20);
  // Byte-wise, preserving symbolic bytes (the kernel treats driver buffers as
  // opaque; copying must not concretize them — §3.2 "private driver state ...
  // preserved in symbolic form").
  if (dst <= src) {
    for (uint32_t i = 0; i < len; ++i) {
      kc.WriteGuestValue(dst + i, kc.ReadGuestValue(src + i, 1), 1);
    }
  } else {
    for (uint32_t i = len; i > 0; --i) {
      kc.WriteGuestValue(dst + i - 1, kc.ReadGuestValue(src + i - 1, 1), 1);
    }
  }
  ReturnU32(kc, kStatusSuccess);
}

// --- Configuration (registry) -----------------------------------------------------

void MosOpenConfiguration(KernelContext& kc) {
  if (!RequirePassive(kc, "MosOpenConfiguration")) {
    return;
  }
  KernelState& ks = kc.kernel();
  uint32_t out_handle_ptr = ArgU32(kc, 0, "MosOpenConfiguration.out");
  uint32_t handle = ks.next_config_handle++;
  ConfigHandleState state;
  state.open = true;
  state.opened_in_slot = ks.current_entry_slot;
  ks.config_handles.emplace(handle, state);
  kc.WriteGuestU32(out_handle_ptr, handle);

  KernelEvent event;
  event.kind = KernelEvent::Kind::kConfigOpen;
  event.a = handle;
  kc.EmitEvent(event);
  ReturnU32(kc, kStatusSuccess);
}

void MosReadConfiguration(KernelContext& kc) {
  if (!RequirePassive(kc, "MosReadConfiguration")) {
    return;
  }
  KernelState& ks = kc.kernel();
  uint32_t handle = ArgU32(kc, 0, "MosReadConfiguration.handle");
  uint32_t name_ptr = ArgU32(kc, 1, "MosReadConfiguration.name");
  uint32_t param_ptr = ArgU32(kc, 2, "MosReadConfiguration.param");

  auto it = ks.config_handles.find(handle);
  if (it == ks.config_handles.end() || !it->second.open) {
    ReturnU32(kc, kStatusUnsuccessful);
    return;
  }
  std::string name = kc.ReadGuestCString(name_ptr, 64);
  KernelEvent event;
  event.kind = KernelEvent::Kind::kConfigRead;
  event.text = name;
  kc.EmitEvent(event);

  auto reg_it = ks.registry.find(name);
  if (reg_it == ks.registry.end() ||
      kc.ShouldInjectFault(FaultClass::kRegistryRead, "MosReadConfiguration")) {
    ReturnU32(kc, kStatusNotFound);
    return;
  }
  // Parameter block: { u32 type (1 = integer); u32 value }.
  kc.WriteGuestU32(param_ptr, 1);
  kc.WriteGuestU32(param_ptr + 4, reg_it->second);
  ReturnU32(kc, kStatusSuccess);
}

void MosCloseConfiguration(KernelContext& kc) {
  if (!RequirePassive(kc, "MosCloseConfiguration")) {
    return;
  }
  KernelState& ks = kc.kernel();
  uint32_t handle = ArgU32(kc, 0, "MosCloseConfiguration.handle");
  auto it = ks.config_handles.find(handle);
  if (it == ks.config_handles.end() || !it->second.open) {
    if (ks.verifier.enabled) {
      kc.BugCheck(kBugcheckBadPointer,
                  StrFormat("MosCloseConfiguration: invalid handle 0x%x", handle));
    }
    return;
  }
  it->second.open = false;
  KernelEvent event;
  event.kind = KernelEvent::Kind::kConfigClose;
  event.a = handle;
  kc.EmitEvent(event);
  ReturnU32(kc, kStatusSuccess);
}

// --- Spinlocks and IRQL -------------------------------------------------------------

void AcquireLockCommon(KernelContext& kc, bool dpr) {
  KernelState& ks = kc.kernel();
  const char* api = dpr ? "MosDprAcquireSpinLock" : "MosAcquireSpinLock";
  uint32_t lock_addr = ArgU32(kc, 0, "SpinLock.addr");
  SpinLockState& lock = ks.locks[lock_addr];

  if (ks.verifier.enabled && ks.verifier.check_spinlocks) {
    if (lock.held) {
      // Re-acquiring a spinlock you hold deadlocks the CPU.
      kc.BugCheck(kBugcheckDeadlock,
                  StrFormat("%s: recursive acquisition of spinlock 0x%x (self-deadlock)", api,
                            lock_addr));
      return;
    }
    if (dpr && ks.irql < Irql::kDispatch) {
      kc.BugCheck(kBugcheckDriverIrqlViolation,
                  StrFormat("%s requires IRQL >= DISPATCH (current %s)", api, IrqlName(ks.irql)));
      return;
    }
  }
  lock.held = true;
  lock.dpr_acquired = dpr;
  lock.holder = kc.CurrentContext();
  lock.acquire_order = ks.lock_order_counter++;
  if (!dpr) {
    lock.saved_irql = ks.irql;
    SetIrql(kc, Irql::kDispatch);
  }
  ks.lock_stack.push_back(lock_addr);

  KernelEvent event;
  event.kind = KernelEvent::Kind::kLockAcquire;
  event.a = lock_addr;
  event.b = dpr ? 1 : 0;
  kc.EmitEvent(event);
  ReturnU32(kc, kStatusSuccess);
}

void ReleaseLockCommon(KernelContext& kc, bool dpr) {
  KernelState& ks = kc.kernel();
  const char* api = dpr ? "MosDprReleaseSpinLock" : "MosReleaseSpinLock";
  uint32_t lock_addr = ArgU32(kc, 0, "SpinLock.addr");
  auto it = ks.locks.find(lock_addr);

  if (it == ks.locks.end() || !it->second.held) {
    if (ks.verifier.enabled && ks.verifier.check_spinlocks) {
      kc.BugCheck(kBugcheckSpinLockMisuse,
                  StrFormat("%s: releasing spinlock 0x%x that is not held", api, lock_addr));
    }
    return;
  }
  SpinLockState& lock = it->second;
  if (ks.verifier.enabled && ks.verifier.check_spinlocks && lock.dpr_acquired != dpr) {
    // The Intel Pro/100 bug class: NdisReleaseSpinLock instead of
    // NdisDprReleaseSpinLock (or vice versa) corrupts the IRQL.
    kc.BugCheck(kBugcheckIrqlNotLessOrEqual,
                StrFormat("%s: spinlock 0x%x was acquired with the %s variant; releasing with "
                          "the wrong variant corrupts the IRQL (KeReleaseSpinLock from DPC)",
                          api, lock_addr, lock.dpr_acquired ? "Dpr" : "non-Dpr"));
    return;
  }
  lock.held = false;
  // Out-of-order release is legal-but-suspect; the DDT lock checker flags
  // cross-path cycles. Here we just maintain the stack.
  auto stack_it = std::find(ks.lock_stack.rbegin(), ks.lock_stack.rend(), lock_addr);
  if (stack_it != ks.lock_stack.rend()) {
    ks.lock_stack.erase(std::next(stack_it).base());
  }
  if (!dpr) {
    SetIrql(kc, lock.saved_irql);
  }

  KernelEvent event;
  event.kind = KernelEvent::Kind::kLockRelease;
  event.a = lock_addr;
  event.b = dpr ? 1 : 0;
  kc.EmitEvent(event);
  ReturnU32(kc, kStatusSuccess);
}

void MosAcquireSpinLock(KernelContext& kc) { AcquireLockCommon(kc, false); }
void MosReleaseSpinLock(KernelContext& kc) { ReleaseLockCommon(kc, false); }
void MosDprAcquireSpinLock(KernelContext& kc) { AcquireLockCommon(kc, true); }
void MosDprReleaseSpinLock(KernelContext& kc) { ReleaseLockCommon(kc, true); }

void MosGetCurrentIrql(KernelContext& kc) {
  ReturnU32(kc, static_cast<uint32_t>(kc.kernel().irql));
}

void MosRaiseIrql(KernelContext& kc) {
  KernelState& ks = kc.kernel();
  uint32_t level = ArgU32(kc, 0, "MosRaiseIrql.level");
  uint32_t old = static_cast<uint32_t>(ks.irql);
  if (level < old || level > static_cast<uint32_t>(Irql::kDevice)) {
    if (ks.verifier.enabled && ks.verifier.check_irql) {
      kc.BugCheck(kBugcheckDriverIrqlViolation,
                  StrFormat("MosRaiseIrql: invalid target level %u (current %u)", level, old));
      return;
    }
  }
  SetIrql(kc, static_cast<Irql>(level));
  ReturnU32(kc, old);
}

void MosLowerIrql(KernelContext& kc) {
  KernelState& ks = kc.kernel();
  uint32_t level = ArgU32(kc, 0, "MosLowerIrql.level");
  if (level > static_cast<uint32_t>(ks.irql)) {
    if (ks.verifier.enabled && ks.verifier.check_irql) {
      kc.BugCheck(kBugcheckDriverIrqlViolation,
                  StrFormat("MosLowerIrql: target level %u above current %u", level,
                            static_cast<uint32_t>(ks.irql)));
      return;
    }
  }
  SetIrql(kc, static_cast<Irql>(level));
  ReturnU32(kc, kStatusSuccess);
}

// --- Interrupts ---------------------------------------------------------------------

void MosRegisterInterrupt(KernelContext& kc) {
  KernelState& ks = kc.kernel();
  uint32_t fn = ArgU32(kc, 0, "MosRegisterInterrupt.fn");
  uint32_t ctx = ArgU32(kc, 1, "MosRegisterInterrupt.ctx");
  if (fn == 0 || !ks.driver.ContainsCode(fn)) {
    ReturnU32(kc, kStatusUnsuccessful);
    return;
  }
  if (ks.device_removed ||
      kc.ShouldInjectFault(FaultClass::kDeviceNotPresent, "MosRegisterInterrupt")) {
    ReturnU32(kc, kStatusDeviceNotConnected);
    return;
  }
  ks.isr_fn = fn;
  ks.isr_ctx = ctx;
  ks.isr_registered = true;
  ks.isr_deregistered = false;

  KernelEvent event;
  event.kind = KernelEvent::Kind::kIsrRegister;
  event.a = fn;
  kc.EmitEvent(event);
  ReturnU32(kc, kStatusSuccess);
}

void MosDeregisterInterrupt(KernelContext& kc) {
  KernelState& ks = kc.kernel();
  ks.isr_registered = false;
  ks.isr_deregistered = true;
  ReturnU32(kc, kStatusSuccess);
}

// Audio-style interrupt synchronization object (PcNewInterruptSync analogue).
void MosNewInterruptSync(KernelContext& kc) {
  uint32_t out_ptr = ArgU32(kc, 0, "MosNewInterruptSync.out");
  // The sync object is an opaque kernel allocation.
  uint32_t handle = KernelAllocate(kc, 32, 0x53594E49 /* 'INYS' */, "MosNewInterruptSync");
  if (handle == 0) {
    ReturnU32(kc, kStatusInsufficientResources);
    return;
  }
  kc.WriteGuestU32(out_ptr, handle);
  ReturnU32(kc, kStatusSuccess);
}

// --- Timers -----------------------------------------------------------------------

void MosInitializeTimer(KernelContext& kc) {
  KernelState& ks = kc.kernel();
  uint32_t timer_addr = ArgU32(kc, 0, "MosInitializeTimer.timer");
  uint32_t fn = ArgU32(kc, 1, "MosInitializeTimer.fn");
  uint32_t ctx = ArgU32(kc, 2, "MosInitializeTimer.ctx");
  TimerState& timer = ks.timers[timer_addr];
  timer.initialized = true;
  timer.fn = fn;
  timer.ctx_arg = ctx;

  KernelEvent event;
  event.kind = KernelEvent::Kind::kTimerInit;
  event.a = timer_addr;
  kc.EmitEvent(event);
  ReturnU32(kc, kStatusSuccess);
}

void MosSetTimer(KernelContext& kc) {
  KernelState& ks = kc.kernel();
  uint32_t timer_addr = ArgU32(kc, 0, "MosSetTimer.timer");
  auto it = ks.timers.find(timer_addr);
  if (it == ks.timers.end() || !it->second.initialized || it->second.fn == 0) {
    // Passing an uninitialized timer descriptor dereferences garbage inside
    // the kernel — this is the RTL8029 interrupt-before-timer-init BSOD.
    if (ks.verifier.enabled && ks.verifier.check_timers) {
      kc.BugCheck(kBugcheckUninitializedTimer,
                  StrFormat("MosSetTimer: timer descriptor 0x%x was never initialized "
                            "(uninitialized timer passed to kernel)",
                            timer_addr));
    }
    return;
  }
  it->second.armed = true;
  KernelEvent event;
  event.kind = KernelEvent::Kind::kTimerSet;
  event.a = timer_addr;
  kc.EmitEvent(event);
  ReturnU32(kc, kStatusSuccess);
}

void MosCancelTimer(KernelContext& kc) {
  KernelState& ks = kc.kernel();
  uint32_t timer_addr = ArgU32(kc, 0, "MosCancelTimer.timer");
  auto it = ks.timers.find(timer_addr);
  bool was_armed = false;
  if (it != ks.timers.end()) {
    was_armed = it->second.armed;
    it->second.armed = false;
  }
  ReturnU32(kc, was_armed ? 1 : 0);
}

// --- DPCs --------------------------------------------------------------------------

void MosQueueDpc(KernelContext& kc) {
  KernelState& ks = kc.kernel();
  uint32_t fn = ArgU32(kc, 0, "MosQueueDpc.fn");
  uint32_t ctx = ArgU32(kc, 1, "MosQueueDpc.ctx");
  if (fn == 0 || !ks.driver.ContainsCode(fn)) {
    ReturnU32(kc, kStatusUnsuccessful);
    return;
  }
  ks.dpc_queue.emplace_back(fn, ctx);
  KernelEvent event;
  event.kind = KernelEvent::Kind::kDpcQueue;
  event.a = fn;
  kc.EmitEvent(event);
  ReturnU32(kc, kStatusSuccess);
}

// --- Packets -----------------------------------------------------------------------

void MosAllocatePacketPool(KernelContext& kc) {
  KernelState& ks = kc.kernel();
  uint32_t out_ptr = ArgU32(kc, 0, "MosAllocatePacketPool.out");
  uint32_t count = ArgU32(kc, 1, "MosAllocatePacketPool.count");
  if (kc.ShouldInjectFault(FaultClass::kAllocation, "MosAllocatePacketPool")) {
    ReturnU32(kc, kStatusInsufficientResources);
    return;
  }
  uint32_t handle = ks.next_pool_handle++;
  PacketPoolState pool;
  pool.alive = true;
  pool.capacity = count;
  ks.packet_pools.emplace(handle, pool);
  kc.WriteGuestU32(out_ptr, handle);

  KernelEvent event;
  event.kind = KernelEvent::Kind::kPacketPoolAlloc;
  event.a = handle;
  kc.EmitEvent(event);
  ReturnU32(kc, kStatusSuccess);
}

void MosFreePacketPool(KernelContext& kc) {
  KernelState& ks = kc.kernel();
  uint32_t handle = ArgU32(kc, 0, "MosFreePacketPool.pool");
  auto it = ks.packet_pools.find(handle);
  if (it == ks.packet_pools.end() || !it->second.alive) {
    if (ks.verifier.enabled) {
      kc.BugCheck(kBugcheckBadPointer,
                  StrFormat("MosFreePacketPool: invalid pool handle 0x%x", handle));
    }
    return;
  }
  it->second.alive = false;
  KernelEvent event;
  event.kind = KernelEvent::Kind::kPacketPoolFree;
  event.a = handle;
  kc.EmitEvent(event);
  ReturnU32(kc, kStatusSuccess);
}

void MosAllocatePacket(KernelContext& kc) {
  KernelState& ks = kc.kernel();
  uint32_t out_ptr = ArgU32(kc, 0, "MosAllocatePacket.out");
  uint32_t pool_handle = ArgU32(kc, 1, "MosAllocatePacket.pool");
  auto pool_it = ks.packet_pools.find(pool_handle);
  if (pool_it == ks.packet_pools.end() || !pool_it->second.alive) {
    ReturnU32(kc, kStatusUnsuccessful);
    return;
  }
  if (pool_it->second.outstanding >= pool_it->second.capacity) {
    ReturnU32(kc, kStatusInsufficientResources);
    return;
  }
  if (kc.ShouldInjectFault(FaultClass::kAllocation, "MosAllocatePacket")) {
    ReturnU32(kc, kStatusInsufficientResources);
    return;
  }
  constexpr uint32_t kPayloadSize = 1600;
  if (ks.packet_arena_cursor + kPayloadSize + 16 > kPacketArenaLimit) {
    ReturnU32(kc, kStatusInsufficientResources);
    return;
  }
  // Packet descriptor: { u32 payload_ptr; u32 payload_len; u32 pool; u32 flags }.
  uint32_t desc = ks.packet_arena_cursor;
  uint32_t payload = desc + 16;
  ks.packet_arena_cursor += 16 + kPayloadSize;
  kc.WriteGuestU32(desc + 0, payload);
  kc.WriteGuestU32(desc + 4, kPayloadSize);
  kc.WriteGuestU32(desc + 8, pool_handle);
  kc.WriteGuestU32(desc + 12, 0);
  PacketState pkt;
  pkt.alive = true;
  pkt.pool = pool_handle;
  pkt.payload_addr = payload;
  pkt.payload_len = kPayloadSize;
  ks.packets.emplace(desc, pkt);
  pool_it->second.outstanding += 1;
  // Grant the driver access to the descriptor + payload until freed.
  MemoryGrant grant;
  grant.begin = desc;
  grant.end = payload + kPayloadSize;
  grant.revoke_on_entry_exit = false;
  grant.granted_in_slot = ks.current_entry_slot;
  ks.grants.push_back(grant);
  kc.WriteGuestU32(out_ptr, desc);

  KernelEvent event;
  event.kind = KernelEvent::Kind::kPacketAlloc;
  event.a = desc;
  kc.EmitEvent(event);
  ReturnU32(kc, kStatusSuccess);
}

void MosFreePacket(KernelContext& kc) {
  KernelState& ks = kc.kernel();
  uint32_t desc = ArgU32(kc, 0, "MosFreePacket.pkt");
  auto it = ks.packets.find(desc);
  if (it == ks.packets.end() || !it->second.alive) {
    if (ks.verifier.enabled) {
      kc.BugCheck(kBugcheckBadPointer, StrFormat("MosFreePacket: invalid packet 0x%x", desc));
    }
    return;
  }
  it->second.alive = false;
  auto pool_it = ks.packet_pools.find(it->second.pool);
  if (pool_it != ks.packet_pools.end() && pool_it->second.outstanding > 0) {
    pool_it->second.outstanding -= 1;
  }
  RemoveGrant(ks, desc);
  KernelEvent event;
  event.kind = KernelEvent::Kind::kPacketFree;
  event.a = desc;
  kc.EmitEvent(event);
  ReturnU32(kc, kStatusSuccess);
}

void MosIndicateReceive(KernelContext& kc) {
  // The driver hands a received packet up the stack; MiniOS just validates it.
  KernelState& ks = kc.kernel();
  uint32_t desc = ArgU32(kc, 0, "MosIndicateReceive.pkt");
  auto it = ks.packets.find(desc);
  if (it == ks.packets.end() || !it->second.alive) {
    if (ks.verifier.enabled) {
      kc.BugCheck(kBugcheckBadPointer,
                  StrFormat("MosIndicateReceive: indicating invalid packet 0x%x", desc));
    }
    return;
  }
  ReturnU32(kc, kStatusSuccess);
}

// --- PCI / hardware ------------------------------------------------------------------

void MosReadPciConfig(KernelContext& kc) {
  KernelState& ks = kc.kernel();
  uint32_t offset = ArgU32(kc, 0, "MosReadPciConfig.offset");
  uint32_t out_ptr = ArgU32(kc, 1, "MosReadPciConfig.out");
  uint32_t len = ArgU32(kc, 2, "MosReadPciConfig.len");
  if (ks.device_removed ||
      kc.ShouldInjectFault(FaultClass::kDeviceNotPresent, "MosReadPciConfig")) {
    // An absent (or surprise-removed) device floats the bus: config reads
    // return all-ones and the API reports zero bytes transferred.
    for (uint32_t i = 0; i < len && i < 4; ++i) {
      kc.WriteGuestU8(out_ptr + i, 0xFF);
    }
    ReturnU32(kc, 0);
    return;
  }
  // Serve from the (concrete) device descriptor. Annotations overlay
  // symbolic values for descriptor fields like the hardware revision
  // (§4.1.4).
  uint32_t value = 0;
  switch (offset) {
    case kPciCfgVendorId:
      value = ks.pci.vendor_id;
      break;
    case kPciCfgDeviceId:
      value = ks.pci.device_id;
      break;
    case kPciCfgRevision:
      value = ks.pci.revision;
      break;
    case kPciCfgIrqLine:
      value = ks.pci.irq_line;
      break;
    default:
      value = 0;
      break;
  }
  for (uint32_t i = 0; i < len && i < 4; ++i) {
    kc.WriteGuestU8(out_ptr + i, static_cast<uint8_t>((value >> (8 * i)) & 0xFF));
  }
  ReturnU32(kc, std::min<uint32_t>(len, 4));
}

void MosMapIoSpace(KernelContext& kc) {
  KernelState& ks = kc.kernel();
  uint32_t bar = ArgU32(kc, 0, "MosMapIoSpace.bar");
  if (bar >= ks.pci.bars.size()) {
    ReturnU32(kc, 0);
    return;
  }
  if (ks.device_removed || kc.ShouldInjectFault(FaultClass::kMapIoSpace, "MosMapIoSpace")) {
    ReturnU32(kc, 0);
    return;
  }
  ReturnU32(kc, ks.pci.BarBase(bar));
}

// --- Misc --------------------------------------------------------------------------

void MosStallExecution(KernelContext& kc) {
  // Busy-wait; only effect is the boundary crossing itself (an interrupt
  // injection opportunity).
  ReturnU32(kc, kStatusSuccess);
}

void MosLog(KernelContext& kc) {
  uint32_t msg_ptr = ArgU32(kc, 0, "MosLog.msg");
  std::string message = kc.ReadGuestCString(msg_ptr, 128);
  DDT_LOG_DEBUG("guest driver: %s", message.c_str());
  ReturnU32(kc, kStatusSuccess);
}

void MosBugCheck(KernelContext& kc) {
  uint32_t code = ArgU32(kc, 0, "MosBugCheck.code");
  kc.BugCheck(code != 0 ? code : kBugcheckDriverRequested, "driver-requested bugcheck");
}

}  // namespace

const std::map<std::string, KernelApiFn>& KernelApiTable() {
  static const std::map<std::string, KernelApiFn>* table = [] {
    auto* map = new std::map<std::string, KernelApiFn>{
        {"MosRegisterDriver", &MosRegisterDriver},
        {"MosAllocatePool", &MosAllocatePool},
        {"MosAllocatePoolWithTag", &MosAllocatePoolWithTag},
        {"MosFreePool", &MosFreePool},
        {"MosAllocateMemoryWithTag", &MosAllocateMemoryWithTag},
        {"MosFreeMemory", &MosFreeMemory},
        {"MosZeroMemory", &MosZeroMemory},
        {"MosMoveMemory", &MosMoveMemory},
        {"MosOpenConfiguration", &MosOpenConfiguration},
        {"MosReadConfiguration", &MosReadConfiguration},
        {"MosCloseConfiguration", &MosCloseConfiguration},
        {"MosAcquireSpinLock", &MosAcquireSpinLock},
        {"MosReleaseSpinLock", &MosReleaseSpinLock},
        {"MosDprAcquireSpinLock", &MosDprAcquireSpinLock},
        {"MosDprReleaseSpinLock", &MosDprReleaseSpinLock},
        {"MosGetCurrentIrql", &MosGetCurrentIrql},
        {"MosRaiseIrql", &MosRaiseIrql},
        {"MosLowerIrql", &MosLowerIrql},
        {"MosRegisterInterrupt", &MosRegisterInterrupt},
        {"MosDeregisterInterrupt", &MosDeregisterInterrupt},
        {"MosNewInterruptSync", &MosNewInterruptSync},
        {"MosInitializeTimer", &MosInitializeTimer},
        {"MosSetTimer", &MosSetTimer},
        {"MosCancelTimer", &MosCancelTimer},
        {"MosQueueDpc", &MosQueueDpc},
        {"MosAllocatePacketPool", &MosAllocatePacketPool},
        {"MosFreePacketPool", &MosFreePacketPool},
        {"MosAllocatePacket", &MosAllocatePacket},
        {"MosFreePacket", &MosFreePacket},
        {"MosIndicateReceive", &MosIndicateReceive},
        {"MosReadPciConfig", &MosReadPciConfig},
        {"MosMapIoSpace", &MosMapIoSpace},
        {"MosStallExecution", &MosStallExecution},
        {"MosLog", &MosLog},
        {"MosBugCheck", &MosBugCheck},
    };
    return map;
  }();
  return *table;
}

KernelApiFn FindKernelApi(const std::string& name) {
  const auto& table = KernelApiTable();
  auto it = table.find(name);
  return it == table.end() ? nullptr : it->second;
}

}  // namespace ddt
