// KernelContext: the capability surface kernel API implementations and
// annotations run against.
//
// The engine implements this interface on top of its ExecutionState; the
// kernel module stays independent of the engine. Everything a kernel
// function can do — read driver arguments, touch guest memory (with
// on-demand concretization of symbolic bytes, §3.2), create symbolic values,
// raise a bugcheck, request a driver callback — goes through here, which is
// also what makes the whole kernel replayable and forkable.
#ifndef SRC_KERNEL_KERNEL_CONTEXT_H_
#define SRC_KERNEL_KERNEL_CONTEXT_H_

#include <cstdint>
#include <string>

#include "src/expr/expr.h"
#include "src/kernel/api.h"
#include "src/kernel/kernel_state.h"
#include "src/support/rng.h"
#include "src/vm/value.h"

namespace ddt {

class DeviceModel;

class KernelContext {
 public:
  virtual ~KernelContext() = default;

  virtual ExprContext* expr() = 0;
  virtual KernelState& kernel() = 0;
  virtual Rng& rng() = 0;
  virtual DeviceModel& device() = 0;

  // --- Driver call arguments (calling convention: r0..r3, stack beyond) ---
  virtual Value Arg(int index) = 0;
  virtual void SetReturn(const Value& value) = 0;
  // Current return value (annotations inspect/rewrite it on the return path).
  virtual Value GetReturn() = 0;
  // Overwrites an argument register (entry-point annotations use this to
  // inject symbolic arguments before the entry point runs).
  virtual void SetArg(int index, const Value& value) = 0;

  // Concretizes a value under the current path constraints, recording the
  // constraint (value == chosen) on the path. The choice is "random feasible"
  // per §3.2; the concretization site is logged so DDT can backtrack and
  // retry other feasible values if this one disables paths later.
  virtual uint32_t Concretize(const Value& value, const std::string& reason) = 0;

  // Concrete convenience accessors over guest memory; symbolic bytes are
  // concretized on demand (this is exactly "delays concretization as long as
  // possible ... concretizing them only when they are actually read").
  virtual uint32_t ReadGuestU32(uint32_t addr) = 0;
  virtual uint8_t ReadGuestU8(uint32_t addr) = 0;
  virtual void WriteGuestU32(uint32_t addr, uint32_t value) = 0;
  virtual void WriteGuestU8(uint32_t addr, uint8_t value) = 0;
  virtual std::string ReadGuestCString(uint32_t addr, size_t max_len) = 0;

  // Symbolic-aware guest memory access (annotations plant symbolic values
  // with these; size is 1, 2, or 4 bytes).
  virtual Value ReadGuestValue(uint32_t addr, unsigned size) = 0;
  virtual void WriteGuestValue(uint32_t addr, const Value& value, unsigned size) = 0;

  // Adds a path constraint (must be satisfiable together with the existing
  // ones — the caller checks with MayBeTrue via annotations helpers, or
  // knows it by construction). Kills the state if it contradicts.
  virtual void AddConstraint(ExprRef constraint) = 0;

  // The context the driver code that issued this call runs in.
  virtual ExecContextKind CurrentContext() const = 0;

  // Raises a kernel panic (BSOD). The current path terminates; DDT's crash
  // interceptor turns it into a bug report.
  virtual void BugCheck(uint32_t code, const std::string& message) = 0;

  // Emits a kernel event to the checker pipeline and trace.
  virtual void EmitEvent(const KernelEvent& event) = 0;

  // Fault injection (§3.4 campaigns): kernel API handlers call this at each
  // fault-eligible site; true means the call must fail deliberately. The
  // default never injects — only the engine's context, driven by an active
  // FaultPlan, does (and it also counts occurrences and records the
  // injection so the schedule replays).
  virtual bool ShouldInjectFault(FaultClass /*cls*/, const char* /*api*/) { return false; }

  // Current guest program counter of the driver call site (for reports).
  virtual uint32_t CallSitePc() const = 0;
};

}  // namespace ddt

#endif  // SRC_KERNEL_KERNEL_CONTEXT_H_
