// MiniOS kernel API surface: status codes, IRQLs, driver entry-point slots,
// OIDs, and the kernel event stream that DDT's VM-level checkers observe.
//
// The API is NDIS/WDM-flavored on purpose: every Table-2 bug class in the
// paper involves one of these interfaces (configuration reads, tagged pool,
// spinlocks + IRQL, timers, interrupt registration, packet pools, OID
// query/set requests).
#ifndef SRC_KERNEL_API_H_
#define SRC_KERNEL_API_H_

#include <cstddef>
#include <cstdint>
#include <string>

namespace ddt {

// --- Status codes (NTSTATUS-flavored) ---
inline constexpr uint32_t kStatusSuccess = 0x00000000;
inline constexpr uint32_t kStatusUnsuccessful = 0xC0000001;
inline constexpr uint32_t kStatusInsufficientResources = 0xC000009A;
inline constexpr uint32_t kStatusInvalidDeviceRequest = 0xC0000010;
inline constexpr uint32_t kStatusNotFound = 0xC0000225;
inline constexpr uint32_t kStatusBufferTooSmall = 0xC0000023;
inline constexpr uint32_t kStatusDeviceNotConnected = 0xC000009D;

// --- Fault-injection classes (§3.4 error-path campaigns) ---------------------
// Kernel API handlers ask their KernelContext whether the current call should
// fail deliberately. Annotations make error returns *possible* (forked
// alternatives); fault classes make them *systematic*: a FaultPlan names
// (class, occurrence) pairs that must fail on every path, which is what makes
// a failure schedule replayable.
enum class FaultClass : uint8_t {
  kAllocation = 0,       // pool/memory/packet allocators return failure
  kMapIoSpace = 1,       // BAR mapping fails (DMA/MMIO window unavailable)
  kRegistryRead = 2,     // configuration parameter lookup fails
  kDeviceNotPresent = 3, // interrupt registration / PCI config access fails
  kNumFaultClasses = 4,
};

inline constexpr size_t kNumFaultClasses =
    static_cast<size_t>(FaultClass::kNumFaultClasses);

const char* FaultClassName(FaultClass cls);

// One fault actually injected on a path: which class, the per-path occurrence
// index of the eligible call site, and the API that failed. The sequence of
// these is the bug's concrete failure schedule.
struct InjectedFault {
  FaultClass cls = FaultClass::kAllocation;
  uint32_t occurrence = 0;
  std::string api;
};

// --- IRQLs ---
enum class Irql : uint8_t {
  kPassive = 0,
  kDispatch = 2,
  kDevice = 5,
};

const char* IrqlName(Irql irql);

// Which driver-side context is currently executing.
enum class ExecContextKind : uint8_t {
  kNone = 0,       // no driver code on the (virtual) CPU
  kEntryPoint = 1,
  kIsr = 2,
  kDpc = 3,
  kTimer = 4,
};

const char* ExecContextName(ExecContextKind kind);

// --- Driver entry-point slots ---
// The driver's load routine fills a table of guest function pointers and
// hands it to MosRegisterDriver. Slot 0 must be present.
enum EntrySlot : int {
  kEpInitialize = 0,  // () -> status
  kEpHalt = 1,        // () -> void
  kEpQueryInfo = 2,   // (oid, buf, len) -> status
  kEpSetInfo = 3,     // (oid, buf, len) -> status
  kEpSend = 4,        // (packet, length) -> status
  kEpWrite = 5,       // (buf, len) -> status          (audio-style playback)
  kEpStop = 6,        // () -> void                    (audio-style stop)
  kEpDiag = 7,        // (code) -> status              (diagnostic dispatch)
  kNumEntrySlots = 8,
};

const char* EntrySlotName(int slot);

// --- Bugcheck codes (what the in-guest verifier / kernel raises) ---
inline constexpr uint32_t kBugcheckIrqlNotLessOrEqual = 0x0A;
inline constexpr uint32_t kBugcheckDriverIrqlViolation = 0xD1;
inline constexpr uint32_t kBugcheckSpinLockMisuse = 0x81;
inline constexpr uint32_t kBugcheckUninitializedTimer = 0xDE;
inline constexpr uint32_t kBugcheckBadPointer = 0x50;
inline constexpr uint32_t kBugcheckDeadlock = 0xE2;
inline constexpr uint32_t kBugcheckDriverRequested = 0xCC;

// --- OIDs the exerciser issues ---
inline constexpr uint32_t kOidGenMaxFrameSize = 0x00010106;
inline constexpr uint32_t kOidGenLinkSpeed = 0x00010107;
inline constexpr uint32_t kOidGenCurrentAddress = 0x00010102;
inline constexpr uint32_t kOidGenMulticastList = 0x00010103;
inline constexpr uint32_t kOid802_3PermanentAddress = 0x01010101;

// --- Kernel events -----------------------------------------------------------
// Emitted by the kernel implementation as it services driver calls; the
// engine forwards them to registered checkers (and records them in traces).
struct KernelEvent {
  enum class Kind {
    kApiEnter,           // text = api name
    kApiExit,            // text = api name, a = return value
    kEntryEnter,         // a = slot
    kEntryExit,          // a = slot, b = return value (r0)
    kInterruptInjected,  // a = crossing index
    kBugCheck,           // a = code, text = message
    kAlloc,              // a = addr, b = size, c = tag
    kFree,               // a = addr
    kConfigOpen,         // a = handle
    kConfigClose,        // a = handle
    kConfigRead,         // text = parameter name
    kLockAcquire,        // a = lock addr, b = 1 if Dpr variant
    kLockRelease,        // a = lock addr, b = 1 if Dpr variant
    kIrqlChange,         // a = new level, b = old level
    kTimerInit,          // a = timer addr
    kTimerSet,           // a = timer addr
    kIsrRegister,        // a = isr fn
    kDpcQueue,           // a = fn
    kPacketAlloc,        // a = packet addr
    kPacketFree,         // a = packet addr
    kPacketPoolAlloc,    // a = pool handle
    kPacketPoolFree,     // a = pool handle
    kFaultInjected,      // a = fault class, b = occurrence, text = api name
    kHwFaultInjected,    // a = hw fault kind, b = index, text = kind name
    kDeviceRemoved,      // a = trigger index (device hot-unplugged)
  };

  Kind kind;
  uint32_t a = 0;
  uint32_t b = 0;
  uint32_t c = 0;
  std::string text;
};

const char* KernelEventKindName(KernelEvent::Kind kind);

}  // namespace ddt

#endif  // SRC_KERNEL_API_H_
