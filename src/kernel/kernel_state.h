// Per-execution-state kernel bookkeeping.
//
// MiniOS itself runs *concretely* (it is the concrete side of selective
// symbolic execution), but its bookkeeping must fork with the driver's
// symbolic paths: a path where an allocation failed has different kernel
// state than one where it succeeded. KernelState is therefore a plain value
// type copied on every state fork — it is kept deliberately small and
// copyable (the heavyweight guest memory forks via chained COW separately).
#ifndef SRC_KERNEL_KERNEL_STATE_H_
#define SRC_KERNEL_KERNEL_STATE_H_

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/hw/hw_fault.h"
#include "src/hw/pci.h"
#include "src/kernel/api.h"
#include "src/vm/image.h"
#include "src/vm/layout.h"

namespace ddt {

struct PoolAllocation {
  uint32_t addr = 0;
  uint32_t size = 0;
  uint32_t tag = 0;
  bool alive = true;
  uint32_t seq = 0;                 // allocation order
  int alloc_entry_slot = -1;        // entry point during which it was made
  std::string api;                  // allocating API name
};

struct SpinLockState {
  bool held = false;
  bool dpr_acquired = false;        // acquired with the Dpr variant
  Irql saved_irql = Irql::kPassive; // only meaningful for non-Dpr acquire
  ExecContextKind holder = ExecContextKind::kNone;
  uint32_t acquire_order = 0;       // position in the acquisition stack
};

struct TimerState {
  bool initialized = false;
  bool armed = false;
  uint32_t fn = 0;
  uint32_t ctx_arg = 0;
};

struct ConfigHandleState {
  bool open = false;
  int opened_in_slot = -1;
};

struct PacketPoolState {
  bool alive = true;
  uint32_t capacity = 0;
  uint32_t outstanding = 0;
};

struct PacketState {
  bool alive = true;
  uint32_t pool = 0;
  uint32_t payload_addr = 0;
  uint32_t payload_len = 0;
};

// A memory range the kernel has granted the driver access to (buffers passed
// into entry points, configuration parameter blocks). Grants issued for one
// entry invocation are revoked when it returns.
struct MemoryGrant {
  uint32_t begin = 0;
  uint32_t end = 0;  // exclusive
  bool revoke_on_entry_exit = false;
  int granted_in_slot = -1;
  // Pageable buffers (request buffers handed down from user space) may only
  // be touched at PASSIVE_LEVEL: at DISPATCH or above a page fault cannot be
  // serviced and the machine bugchecks (the paper's "accesses to pageable
  // memory when page faults are not allowed" checker keys off this).
  bool pageable = false;
};

// The exerciser workload: which entry point to poke next (§4.3, Device Path
// Exerciser). Each forked path continues its own copy of the script. The
// ArgPlan tells the scheduler how to conjure arguments at invocation time
// (request buffers are allocated from kernel scratch and granted per-call).
struct WorkloadStep {
  enum class ArgPlan {
    kNone,        // no arguments
    kOidRequest,  // (oid = param, scratch buffer, length) for Query/SetInfo
    kSendPacket,  // (packet descriptor, length) for Send
    kWriteBuffer, // (scratch buffer, length) for audio Write
    kDiagCode,    // (code = param)
  };

  int slot = kEpInitialize;
  ArgPlan plan = ArgPlan::kNone;
  uint32_t param = 0;
  uint32_t buffer_len = 64;
  bool only_if_init_ok = false;
};

// In-guest Driver Verifier toggles (§3.1.2). On by default; the stress
// baseline runs with the same checks but concrete inputs.
struct VerifierConfig {
  bool enabled = true;
  bool check_irql = true;
  bool check_spinlocks = true;
  bool check_timers = true;
  bool check_pool = true;
};

struct KernelState {
  // Driver + device.
  LoadedDriver driver;
  PciDescriptor pci;
  std::array<uint32_t, kNumEntrySlots> entry_points = {};
  bool driver_registered = false;

  // Interrupts.
  uint32_t isr_fn = 0;
  uint32_t isr_ctx = 0;
  bool isr_registered = false;
  bool isr_deregistered = false;

  // IRQL.
  Irql irql = Irql::kPassive;

  // Pool allocator (bump; frees never recycle so stale pointers stay
  // detectable).
  uint32_t heap_cursor = kKernelHeapBase;
  std::map<uint32_t, PoolAllocation> pool;  // keyed by base address
  uint32_t alloc_seq = 0;

  // Spinlocks (keyed by the guest address of the driver's lock variable).
  std::map<uint32_t, SpinLockState> locks;
  std::vector<uint32_t> lock_stack;  // acquisition order (addresses)
  uint32_t lock_order_counter = 0;

  // Configuration (registry) handles.
  std::map<uint32_t, ConfigHandleState> config_handles;
  uint32_t next_config_handle = 0x7000;

  // Timers (keyed by guest timer-struct address).
  std::map<uint32_t, TimerState> timers;

  // Packet pools and packets.
  std::map<uint32_t, PacketPoolState> packet_pools;
  std::map<uint32_t, PacketState> packets;
  uint32_t next_pool_handle = 0x9000;
  uint32_t packet_arena_cursor = kPacketArenaBase;

  // Kernel scratch allocator (request buffers handed to entry points).
  uint32_t scratch_cursor = kKernelScratchBase;

  // Memory grants.
  std::vector<MemoryGrant> grants;

  // Pending DPCs: (function, context).
  std::vector<std::pair<uint32_t, uint32_t>> dpc_queue;

  // Crash state.
  bool crashed = false;
  uint32_t bugcheck_code = 0;
  std::string bugcheck_message;

  // Exerciser progress.
  std::vector<WorkloadStep> workload;
  size_t workload_pos = 0;
  bool init_succeeded = false;
  int current_entry_slot = -1;
  uint32_t last_entry_status = 0;

  // Symbolic interrupt budget already spent on this path.
  uint32_t interrupts_injected = 0;
  uint32_t boundary_crossings = 0;
  // Sequence number of kernel API calls on this path (keys the annotation
  // alternative schedule during guided replay).
  uint32_t kcall_seq = 0;
  bool driver_entry_invoked = false;

  // Fault injection (§3.4 campaigns): per-path count of fault-eligible call
  // sites seen so far, per class — the occurrence index a FaultPlan keys on.
  // Forks copy the counters, so the schedule is deterministic per path and
  // identical under guided replay.
  std::array<uint32_t, kNumFaultClasses> fault_occurrences = {};
  // Faults actually injected on this path, in order (the failure schedule
  // recorded into bug reports).
  std::vector<InjectedFault> faults_injected;

  // Hardware fault plane: per-path device-interaction counters — the index
  // spaces HwFaultPoints key on. Advanced on every event (like
  // fault_occurrences), fork-copied, so schedules replay exactly.
  uint32_t mmio_accesses = 0;  // reads + writes combined
  uint32_t mmio_reads = 0;
  uint32_t mmio_writes = 0;
  uint32_t irq_deliveries = 0;  // interrupt deliveries attempted on this path
  // Sticky device conditions (once set they outlive the triggering point).
  bool device_removed = false;        // hot-unplugged: reads float, writes drop
  bool removal_halt_delivered = false;  // PnP removal handed to the exerciser
  bool halt_invoked = false;            // Halt entry ran (workload or PnP)
  bool hw_sticky_error = false;         // MMIO reads return all-ones
  bool hw_irq_drought = false;          // interrupt deliveries suppressed
  // Hardware faults actually triggered on this path, in order (the
  // device-side failure schedule recorded into bug reports).
  std::vector<InjectedHwFault> hw_faults_injected;

  VerifierConfig verifier;

  // Registry contents (concrete defaults; annotations overlay symbolic
  // values on the return path).
  std::map<std::string, uint32_t> registry;

  // --- helpers ---
  // The allocation containing `addr`, or nullptr.
  const PoolAllocation* FindAllocation(uint32_t addr) const;
  // True if `addr` lies in any live grant.
  bool IsGranted(uint32_t addr) const;
  // The grant containing `addr`, or nullptr.
  const MemoryGrant* FindGrant(uint32_t addr) const;
  void RevokeGrantsForSlot(int slot);
  // Live (unfreed) allocations made during `slot` (-1 = any).
  std::vector<const PoolAllocation*> LiveAllocations(int slot) const;
  // Open config handles opened during `slot` (-1 = any).
  std::vector<uint32_t> OpenConfigHandles(int slot) const;
};

}  // namespace ddt

#endif  // SRC_KERNEL_KERNEL_STATE_H_
