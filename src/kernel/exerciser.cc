#include "src/kernel/exerciser.h"

namespace ddt {

std::vector<WorkloadStep> BuildWorkload(DriverClass driver_class) {
  std::vector<WorkloadStep> steps;

  WorkloadStep init;
  init.slot = kEpInitialize;
  init.plan = WorkloadStep::ArgPlan::kNone;
  steps.push_back(init);

  auto add = [&steps](int slot, WorkloadStep::ArgPlan plan, uint32_t param = 0,
                      uint32_t len = 64) {
    WorkloadStep step;
    step.slot = slot;
    step.plan = plan;
    step.param = param;
    step.buffer_len = len;
    step.only_if_init_ok = true;
    steps.push_back(step);
  };

  switch (driver_class) {
    case DriverClass::kNetwork:
      add(kEpQueryInfo, WorkloadStep::ArgPlan::kOidRequest, kOidGenMaxFrameSize);
      add(kEpQueryInfo, WorkloadStep::ArgPlan::kOidRequest, kOidGenCurrentAddress);
      add(kEpSetInfo, WorkloadStep::ArgPlan::kOidRequest, kOidGenMulticastList);
      add(kEpSend, WorkloadStep::ArgPlan::kSendPacket, 0, 128);
      add(kEpDiag, WorkloadStep::ArgPlan::kDiagCode, 0);
      break;
    case DriverClass::kAudio:
      add(kEpWrite, WorkloadStep::ArgPlan::kWriteBuffer, 0, 256);
      add(kEpStop, WorkloadStep::ArgPlan::kNone);
      add(kEpDiag, WorkloadStep::ArgPlan::kDiagCode, 0);
      break;
  }

  WorkloadStep halt;
  halt.slot = kEpHalt;
  halt.plan = WorkloadStep::ArgPlan::kNone;
  halt.only_if_init_ok = true;
  steps.push_back(halt);
  return steps;
}

DriverClass DriverClassFor(const std::string& driver_name) {
  if (driver_name.find("audio") != std::string::npos ||
      driver_name.find("ac97") != std::string::npos ||
      driver_name.find("sound") != std::string::npos) {
    return DriverClass::kAudio;
  }
  return DriverClass::kNetwork;
}

}  // namespace ddt
