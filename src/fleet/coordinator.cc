// Fleet coordinator: lease scheduling, liveness, salvage, plan-order merge.
//
// The coordinator is a single-threaded event loop over the worker pipes plus
// waitpid. Per tick it (1) drains every readable pipe through a FrameDecoder
// and dispatches complete frames, (2) reaps exited workers, (3) declares
// heartbeat-silent workers lost, (4) hands pending pass indices to idle
// workers. A lost worker — exited, signaled, timed out, or speaking a corrupt
// stream — always takes the same path: kill with certainty, salvage every
// intact record from its shard journal, re-queue its in-flight lease (bounded
// by max_lease_retries, then the pass is quarantined), and respawn a
// replacement if work remains.
//
// Determinism: the coordinator never merges in arrival order. It accumulates
// records keyed by pass index (first record wins — a pass can legally be
// reported twice, once over the wire and once via salvage) and merges them in
// plan order at the end with the same CampaignMerger the in-process scheduler
// uses, so the deterministic report is byte-identical to a single-process run
// regardless of worker count, interleaving, or crash history.
#include "src/fleet/fleet.h"

#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <deque>
#include <map>
#include <memory>
#include <set>
#include <utility>
#include <vector>

#include "src/core/campaign_exec.h"
#include "src/core/campaign_journal.h"
#include "src/fleet/wire.h"
#include "src/solver/shared_cache.h"
#include "src/support/eintr.h"
#include "src/support/log.h"
#include "src/support/strings.h"

namespace ddt {
namespace fleet {
namespace {

using Clock = std::chrono::steady_clock;

std::string ShardJournalPath(const std::string& shard_dir, uint32_t slot, uint64_t generation) {
  return StrFormat("%s/worker-%u-%llu.journal", shard_dir.c_str(), slot,
                   static_cast<unsigned long long>(generation));
}

// How a pass record reached the coordinator; drives journaling and tallies.
enum class RecordSource {
  kResume,   // restored from the main journal (counts into passes_loaded)
  kWire,     // RESULT frame (or synthesized quarantine)
  kSalvage,  // recovered from a dead worker's shard journal
};

struct Slot {
  uint32_t id = 0;
  uint64_t generation = 0;
  pid_t pid = -1;
  int to_fd = -1;
  int from_fd = -1;
  FrameDecoder decoder;
  bool helloed = false;
  bool draining = false;   // BYE sent; expecting the worker's BYE + exit
  bool recycling = false;  // draining specifically to respawn fresh
  bool got_bye = false;
  bool eof = false;
  bool retired = false;  // never respawn (rejected HELLO or campaign drain)
  int64_t lease = -1;    // pass index in flight
  Clock::time_point last_heard;
  uint64_t leases_served = 0;
  std::string journal_path;
  std::string cache_delta_path;

  bool alive() const { return pid > 0; }
};

class Coordinator {
 public:
  Coordinator(const FaultCampaignConfig& config, const DriverImage& image,
              const PciDescriptor& descriptor, const FleetCampaignConfig& fleet)
      : config_(config), image_(image), descriptor_(descriptor), fleet_(fleet) {}

  Result<FaultCampaignResult> Run() {
    auto campaign_start = Clock::now();
    Status st = Setup();
    if (st.ok()) {
      st = EventLoop();
    }
    if (!st.ok()) {
      Shutdown();
      return st;
    }
    st = MergeAll();
    if (!st.ok()) {
      return st;
    }
    FoldCaches();
    PublishTallies();
    result_.campaign_wall_ms =
        std::chrono::duration<double, std::milli>(Clock::now() - campaign_start).count();
    return std::move(result_);
  }

 private:
  // --- Setup --------------------------------------------------------------

  Status Setup() {
    Status valid = ValidateCampaignConfig(config_);
    if (!valid.ok()) {
      return valid;
    }
    if (fleet_.workers == 0) {
      return Status::Error("fleet.workers must be >= 1");
    }
    if (fleet_.shard_dir.empty()) {
      return Status::Error("fleet.shard_dir is required (per-worker journals live there)");
    }
    if (config_.max_pass_wall_ms != 0 &&
        fleet_.heartbeat_timeout_ms <= config_.max_pass_wall_ms) {
      // Cross-field inversion caught up front rather than surfacing as
      // spurious "drain timeout" losses: the drain deadline reuses
      // heartbeat_timeout_ms, so it must outlast the watchdog budget a final
      // in-flight pass is still legitimately allowed to spend.
      return Status::Error(StrFormat(
          "fleet heartbeat/watchdog budget inversion: heartbeat_timeout_ms (%u) must exceed "
          "max_pass_wall_ms (%u)",
          fleet_.heartbeat_timeout_ms, config_.max_pass_wall_ms));
    }
    fingerprint_ = CampaignFingerprint(config_, image_);

    if (config_.collect_metrics) {
      metrics_ = std::make_shared<obs::MetricsRegistry>();
    }

    // Main journal: exactly the in-process semantics — Create fresh, or
    // OpenForResume and pre-populate completed passes.
    std::map<uint64_t, CampaignPassRecord> resumed;
    if (config_.resume) {
      std::vector<CampaignPassRecord> records;
      Result<std::unique_ptr<CampaignJournal>> opened = CampaignJournal::OpenForResume(
          config_.journal_path, image_.name, fingerprint_, &records);
      if (!opened.ok()) {
        return opened.status();
      }
      journal_ = opened.take();
      for (CampaignPassRecord& rec : records) {
        resumed.insert_or_assign(rec.index, std::move(rec));
      }
    } else if (!config_.journal_path.empty()) {
      Result<std::unique_ptr<CampaignJournal>> created =
          CampaignJournal::Create(config_.journal_path, image_.name, fingerprint_);
      if (!created.ok()) {
        return created.status();
      }
      journal_ = created.take();
    }
    if (journal_ != nullptr && metrics_ != nullptr) {
      journal_->SetMetrics(metrics_.get());
    }

    // A restored baseline (with its profile) makes the whole schedule known
    // before any worker spawns; later restored passes are validated against
    // the regenerated plans inside OnPlansReady.
    resume_records_ = std::move(resumed);
    auto base = resume_records_.find(0);
    if (base != resume_records_.end() && base->second.has_profile && !base->second.quarantined) {
      CampaignPassRecord rec = std::move(base->second);
      resume_records_.erase(base);
      Status accepted = AcceptRecord(std::move(rec), RecordSource::kResume);
      if (!accepted.ok()) {
        return accepted;
      }
    } else {
      pending_.push_back(0);
    }

    slots_.resize(fleet_.workers);
    for (uint32_t i = 0; i < fleet_.workers; ++i) {
      slots_[i].id = i;
      Status spawned = Spawn(slots_[i]);
      if (!spawned.ok()) {
        return spawned;
      }
    }
    return Status::Ok();
  }

  Status Spawn(Slot& slot) {
    slot.generation = ++generation_counter_;
    slot.journal_path = ShardJournalPath(fleet_.shard_dir, slot.id, slot.generation);
    slot.helloed = slot.draining = slot.recycling = slot.got_bye = slot.eof = false;
    slot.decoder = FrameDecoder();
    slot.lease = -1;
    slot.cache_delta_path.clear();

    FleetWorkerOptions wopts = fleet_.worker_test;
    wopts.shard_dir = fleet_.shard_dir;
    wopts.slot = slot.id;
    wopts.generation = slot.generation;
    wopts.heartbeat_interval_ms = fleet_.heartbeat_interval_ms;

    Result<ChildProcess> child = [&]() -> Result<ChildProcess> {
      if (fleet_.spawn_override) {
        return fleet_.spawn_override(wopts);
      }
      if (!fleet_.worker_exec.empty()) {
        std::vector<std::string> args = fleet_.worker_args;
        args.push_back("--fleet-worker");
        args.push_back(StrFormat("--fleet-slot=%u", wopts.slot));
        args.push_back(StrFormat("--fleet-gen=%llu",
                                 static_cast<unsigned long long>(wopts.generation)));
        args.push_back(StrFormat("--fleet-shard-dir=%s", wopts.shard_dir.c_str()));
        args.push_back(StrFormat("--fleet-heartbeat-ms=%u", wopts.heartbeat_interval_ms));
        return SpawnChildExec(fleet_.worker_exec, args);
      }
      const FaultCampaignConfig& config = config_;
      const DriverImage& image = image_;
      const PciDescriptor& descriptor = descriptor_;
      return SpawnChild([&config, &image, &descriptor, wopts](int in_fd, int out_fd) {
        FleetWorkerOptions options = wopts;
        options.in_fd = in_fd;
        options.out_fd = out_fd;
        return RunFleetWorker(config, image, descriptor, options);
      });
    }();
    if (!child.ok()) {
      return child.status();
    }
    slot.pid = child.value().pid;
    slot.to_fd = child.value().to_child_fd;
    slot.from_fd = child.value().from_child_fd;
    ::fcntl(slot.from_fd, F_SETFL, O_NONBLOCK);
    slot.last_heard = Clock::now();
    ++result_.fleet_workers_spawned;
    return Status::Ok();
  }

  // --- Event loop ---------------------------------------------------------

  Status EventLoop() {
    for (;;) {
      if (AllSlotsDead()) {
        if (!WorkComplete()) {
          if (result_.fleet_workers_rejected > 0) {
            return Status::Error(
                "all fleet workers were rejected (campaign fingerprint mismatch); "
                "check that workers run the same configuration and driver image");
          }
          return Status::Error("fleet exhausted: no live workers and work remains");
        }
        return Status::Ok();
      }
      if (WorkComplete() && !drain_started_) {
        StartDrain();
      }

      Status st = PollOnce();
      if (!st.ok()) {
        return st;
      }
      st = ReapAndTimeout();
      if (!st.ok()) {
        return st;
      }
      st = AssignLeases();
      if (!st.ok()) {
        return st;
      }
    }
  }

  bool AllSlotsDead() const {
    for (const Slot& slot : slots_) {
      if (slot.alive()) {
        return false;
      }
    }
    return true;
  }

  bool WorkComplete() const {
    if (!have_plans_ || !pending_.empty()) {
      return false;
    }
    for (const Slot& slot : slots_) {
      if (slot.lease >= 0) {
        return false;
      }
    }
    return true;
  }

  void StartDrain() {
    drain_started_ = true;
    drain_deadline_ = Clock::now() + std::chrono::milliseconds(fleet_.heartbeat_timeout_ms);
    for (Slot& slot : slots_) {
      if (slot.alive() && !slot.draining) {
        slot.draining = true;
        slot.retired = true;
        WriteFrame(slot.to_fd, FrameType::kBye, EncodeBye(ByeBody{kByeDrain, ""}));
      }
    }
  }

  Status PollOnce() {
    std::vector<pollfd> fds;
    std::vector<uint32_t> owners;
    for (Slot& slot : slots_) {
      if (slot.alive() && slot.from_fd >= 0 && !slot.eof) {
        fds.push_back(pollfd{slot.from_fd, POLLIN, 0});
        owners.push_back(slot.id);
      }
    }
    int timeout_ms =
        std::max(10, std::min<int>(100, static_cast<int>(fleet_.heartbeat_interval_ms) / 2));
    for (const Slot& slot : slots_) {
      // A slot at EOF no longer has a pollable fd, so nothing would wake the
      // poll when its process becomes reapable — without this, a worker that
      // exits between two polls costs a full timeout of dead air (with one
      // worker, poll() degenerates into a plain sleep).
      if (slot.alive() && slot.eof) {
        timeout_ms = 1;
        break;
      }
    }
    int ready = RetryOnEintr(
        [&] { return ::poll(fds.empty() ? nullptr : fds.data(), fds.size(), timeout_ms); });
    if (ready < 0) {
      return Status::Error(StrFormat("fleet poll failed: %s", std::strerror(errno)));
    }
    if (ready <= 0) {
      return Status::Ok();
    }
    for (size_t i = 0; i < fds.size(); ++i) {
      if ((fds[i].revents & (POLLIN | POLLHUP | POLLERR)) == 0) {
        continue;
      }
      Status st = DrainPipe(slots_[owners[i]]);
      if (!st.ok()) {
        return st;
      }
    }
    return Status::Ok();
  }

  Status DrainPipe(Slot& slot) {
    char chunk[16384];
    for (;;) {
      ssize_t n = RetryOnEintr([&] { return ::read(slot.from_fd, chunk, sizeof(chunk)); });
      if (n > 0) {
        slot.decoder.Feed(chunk, static_cast<size_t>(n));
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        break;
      }
      slot.eof = true;  // worker closed its end (exit is reaped separately)
      break;
    }
    Frame frame;
    for (;;) {
      FrameDecoder::Next next = slot.decoder.Pop(&frame);
      if (next == FrameDecoder::Next::kNeedMore) {
        break;
      }
      if (next == FrameDecoder::Next::kCorrupt) {
        return HandleLoss(slot, "corrupt frame stream");
      }
      Status st = Dispatch(slot, frame);
      if (!st.ok() || !slot.alive()) {
        return st;
      }
    }
    if (slot.eof && slot.alive() && !slot.got_bye) {
      // Pipe closed without a clean BYE: the worker is dying or dead.
      return HandleLoss(slot, "pipe closed");
    }
    return Status::Ok();
  }

  Status Dispatch(Slot& slot, const Frame& frame) {
    auto now = Clock::now();
    // How long the worker went dark before this frame — the coordinator-side
    // view of heartbeat latency (pass execution never blocks it; heartbeats
    // come from a dedicated worker thread). Spikes approaching
    // heartbeat_timeout_ms mean loss declarations are running close to the
    // wire.
    if (metrics_ != nullptr) {
      metrics_
          ->histogram("fleet.frame_gap_ms", obs::Histogram::LatencyBucketsMs())
          ->Observe(std::chrono::duration<double, std::milli>(now - slot.last_heard).count());
    }
    slot.last_heard = now;
    switch (frame.type) {
      case FrameType::kHello: {
        HelloBody hello;
        if (!DecodeHello(frame.body, &hello)) {
          return HandleLoss(slot, "malformed HELLO");
        }
        if (hello.fingerprint != fingerprint_) {
          // A mismatched worker is *rejected*, not quarantined: it is running
          // a different campaign (config or image skew), which is an
          // operator problem, not a pass problem. No salvage, no respawn.
          WriteFrame(slot.to_fd, FrameType::kBye,
                     EncodeBye(ByeBody{kByeRejected, "campaign fingerprint mismatch"}));
          slot.draining = true;
          slot.retired = true;
          ++result_.fleet_workers_rejected;
          return Status::Ok();
        }
        slot.helloed = true;
        return Status::Ok();
      }
      case FrameType::kHeartbeat:
        ++heartbeats_;
        return Status::Ok();
      case FrameType::kResult: {
        CampaignPassRecord record;
        if (!DecodeCampaignPassRecord(frame.body, &record)) {
          return HandleLoss(slot, "undecodable RESULT record");
        }
        uint64_t index = record.index;
        if (slot.lease >= 0 && static_cast<uint64_t>(slot.lease) == index) {
          slot.lease = -1;
          ++slot.leases_served;
        } else if (completed_.find(index) == completed_.end()) {
          return HandleLoss(slot, "RESULT for a pass this worker does not hold");
        }
        Status accepted = AcceptRecord(std::move(record), RecordSource::kWire);
        if (!accepted.ok()) {
          return accepted;
        }
        if (fleet_.on_result) {
          fleet_.on_result(slot.id, slot.pid, index);
        }
        if (fleet_.max_leases_per_worker > 0 &&
            slot.leases_served >= fleet_.max_leases_per_worker && !slot.draining) {
          slot.draining = true;
          slot.recycling = true;
          ++result_.fleet_workers_recycled;
          WriteFrame(slot.to_fd, FrameType::kBye, EncodeBye(ByeBody{kByeDrain, ""}));
        }
        return Status::Ok();
      }
      case FrameType::kBye: {
        ByeBody bye;
        if (DecodeBye(frame.body, &bye) && !bye.detail.empty() && slot.helloed) {
          slot.cache_delta_path = bye.detail;
        }
        slot.got_bye = true;
        return Status::Ok();
      }
      default:
        return HandleLoss(slot, "unexpected frame type");
    }
  }

  Status ReapAndTimeout() {
    auto now = Clock::now();
    auto timeout = std::chrono::milliseconds(fleet_.heartbeat_timeout_ms);
    for (Slot& slot : slots_) {
      if (!slot.alive()) {
        continue;
      }
      int status = 0;
      if (TryReap(slot.pid, &status)) {
        if (slot.got_bye || (slot.draining && !slot.recycling && WIFEXITED(status) &&
                             WEXITSTATUS(status) == 0)) {
          Status st = RetireCleanly(slot);
          if (!st.ok()) {
            return st;
          }
        } else {
          Status st = HandleLoss(slot, DescribeExit(status), /*already_reaped=*/true);
          if (!st.ok()) {
            return st;
          }
        }
        continue;
      }
      bool silent = now - slot.last_heard > timeout;
      bool drain_overdue = drain_started_ && now > drain_deadline_;
      if (silent || drain_overdue) {
        Status st = HandleLoss(slot, silent ? "heartbeat timeout" : "drain timeout");
        if (!st.ok()) {
          return st;
        }
      }
    }
    return Status::Ok();
  }

  Status RetireCleanly(Slot& slot) {
    CloseSlot(slot);
    if (slot.recycling && (!pending_.empty() || !have_plans_) && !drain_started_) {
      slot.retired = false;
      return Spawn(slot);
    }
    slot.retired = true;
    return Status::Ok();
  }

  // The one road out for every abnormal end: kill with certainty, salvage the
  // shard journal, requeue the in-flight lease, respawn if work remains.
  Status HandleLoss(Slot& slot, const std::string& reason, bool already_reaped = false) {
    if (!slot.alive()) {
      return Status::Ok();
    }
    DDT_LOG_WARN("fleet worker %u (pid %d, gen %llu) lost: %s", slot.id,
                 static_cast<int>(slot.pid), static_cast<unsigned long long>(slot.generation),
                 reason.c_str());
    if (!already_reaped) {
      KillAndReap(slot.pid);  // no zombie writer may race the shard journal
    }
    bool was_rejected = slot.draining && slot.retired && !slot.recycling && !slot.helloed;
    CloseSlot(slot);
    if (was_rejected) {
      return Status::Ok();  // a rejected worker's exit is not a loss
    }
    ++result_.fleet_workers_lost;

    // Salvage: every intact record in the dead worker's journal is a
    // completed pass the campaign keeps — including, possibly, the in-flight
    // lease itself (died after journaling, before RESULT).
    Result<std::vector<CampaignPassRecord>> salvaged =
        LoadCampaignJournalRecords(slot.journal_path, image_.name, fingerprint_);
    if (salvaged.ok()) {
      for (CampaignPassRecord& rec : salvaged.value()) {
        Status accepted = AcceptRecord(std::move(rec), RecordSource::kSalvage);
        if (!accepted.ok()) {
          return accepted;
        }
      }
    } else {
      DDT_LOG_WARN("fleet worker %u: shard journal unsalvageable: %s", slot.id,
                   salvaged.status().message().c_str());
    }

    if (slot.lease >= 0) {
      uint64_t index = static_cast<uint64_t>(slot.lease);
      slot.lease = -1;
      if (completed_.find(index) == completed_.end()) {
        uint32_t losses = ++lease_losses_[index];
        if (losses > fleet_.max_lease_retries) {
          if (index == 0) {
            return Status::Error(StrFormat(
                "campaign baseline pass failed: worker process lost %u times executing it",
                losses));
          }
          // The pass kills whoever runs it. Quarantine it with a
          // deterministic failure string (no pids, no timing) so resumed or
          // re-run fleets produce the same record.
          CampaignPassRecord rec;
          rec.index = index;
          rec.label = plans_[index - 1].label;
          rec.points = plans_[index - 1].points;
          rec.hw_points = plans_[index - 1].hw_points;
          rec.quarantined = true;
          rec.failure =
              StrFormat("worker process lost %u times executing this pass", losses);
          Status accepted = AcceptRecord(std::move(rec), RecordSource::kWire);
          if (!accepted.ok()) {
            return accepted;
          }
        } else {
          pending_.push_front(index);
          ++result_.fleet_leases_reassigned;
        }
      }
    }

    if (!drain_started_ && (!pending_.empty() || !have_plans_)) {
      return Spawn(slot);
    }
    slot.retired = true;
    return Status::Ok();
  }

  void CloseSlot(Slot& slot) {
    if (slot.to_fd >= 0) {
      ::close(slot.to_fd);
      slot.to_fd = -1;
    }
    if (slot.from_fd >= 0) {
      ::close(slot.from_fd);
      slot.from_fd = -1;
    }
    if (!slot.cache_delta_path.empty()) {
      cache_delta_paths_.push_back(slot.cache_delta_path);
      slot.cache_delta_path.clear();
    }
    slot.pid = -1;
  }

  Status AssignLeases() {
    for (Slot& slot : slots_) {
      if (pending_.empty()) {
        return Status::Ok();
      }
      if (!slot.alive() || !slot.helloed || slot.draining || slot.lease >= 0) {
        continue;
      }
      uint64_t index = pending_.front();
      LeaseBody lease;
      lease.index = index;
      if (index > 0) {
        lease.plan = plans_[index - 1];
      }
      Status written = WriteFrame(slot.to_fd, FrameType::kLease, EncodeLease(lease));
      if (!written.ok()) {
        Status st = HandleLoss(slot, "lease write failed");
        if (!st.ok()) {
          return st;
        }
        continue;
      }
      pending_.pop_front();
      slot.lease = static_cast<int64_t>(index);
      if (++leases_assigned_ == fleet_.kill_lease_number) {
        ::kill(slot.pid, SIGKILL);  // crash injection: dies holding the lease
      }
    }
    return Status::Ok();
  }

  // --- Record accounting ---------------------------------------------------

  Status AcceptRecord(CampaignPassRecord record, RecordSource source) {
    uint64_t index = record.index;
    if (completed_.find(index) != completed_.end()) {
      return Status::Ok();  // idempotent: wire + salvage may both report it
    }
    if (have_plans_ && index > plans_.size()) {
      return Status::Ok();  // stray record beyond the schedule
    }
    if (index == 0) {
      if (record.quarantined) {
        return Status::Error("campaign baseline pass failed: " + record.failure);
      }
      if (!record.has_profile) {
        return Status::Error(
            "fleet worker returned a baseline record without a fault-site profile");
      }
    }
    if (source != RecordSource::kResume && journal_ != nullptr) {
      Status appended = journal_->Append(record);
      if (!appended.ok()) {
        return appended;
      }
    }
    if (source == RecordSource::kResume) {
      restored_.insert(index);
    }
    if (source == RecordSource::kSalvage) {
      ++result_.fleet_results_salvaged;
    }
    bool was_baseline = index == 0 && !have_plans_;
    FaultSiteProfile profile = record.profile;
    HwSiteProfile hw_profile = record.hw_profile;
    completed_.emplace(index, std::move(record));
    if (was_baseline) {
      return OnPlansReady(profile, hw_profile);
    }
    return Status::Ok();
  }

  Status OnPlansReady(const FaultSiteProfile& profile, const HwSiteProfile& hw_profile) {
    size_t plan_budget = config_.max_passes > 0 ? config_.max_passes - 1 : 0;
    plans_ = GenerateCampaignPlans(profile, config_.seed, config_.max_occurrences_per_class,
                                   config_.escalation_rounds, plan_budget);
    // Same appending rule as the in-process scheduler, from the same profile
    // (carried in the baseline record), so both schedulers derive the
    // identical schedule and the merged reports stay byte-identical.
    if (config_.hw_faults && plans_.size() < plan_budget) {
      std::vector<FaultPlan> hw_plans = GenerateHwCampaignPlans(
          hw_profile, config_.hw_max_points_per_kind, plan_budget - plans_.size());
      for (FaultPlan& plan : hw_plans) {
        plans_.push_back(std::move(plan));
      }
    }
    have_plans_ = true;
    // Fold in resume-journal records now that labels can be validated, then
    // queue whatever is still missing.
    for (size_t i = 0; i < plans_.size(); ++i) {
      auto it = resume_records_.find(i + 1);
      if (it == resume_records_.end()) {
        continue;
      }
      if (it->second.label != plans_[i].label) {
        return Status::Error(StrFormat(
            "journal '%s' does not match the campaign schedule: pass %zu is '%s' in the "
            "journal but '%s' in the regenerated plan",
            config_.journal_path.c_str(), i + 1, it->second.label.c_str(),
            plans_[i].label.c_str()));
      }
      Status accepted = AcceptRecord(std::move(it->second), RecordSource::kResume);
      if (!accepted.ok()) {
        return accepted;
      }
    }
    resume_records_.clear();
    for (size_t i = 0; i < plans_.size(); ++i) {
      if (completed_.find(i + 1) == completed_.end()) {
        pending_.push_back(i + 1);
      }
    }
    return Status::Ok();
  }

  // --- Finalization --------------------------------------------------------

  Status MergeAll() {
    CampaignMerger merger(&result_);
    auto merge_one = [this, &merger](uint64_t index, const FaultPlan& plan) -> Status {
      auto it = completed_.find(index);
      if (it == completed_.end()) {
        return Status::Error(StrFormat(
            "fleet internal error: pass %llu completed nowhere",
            static_cast<unsigned long long>(index)));
      }
      PassOutcome outcome = OutcomeFromRecord(
          std::move(it->second), /*restored_from_journal=*/restored_.count(index) != 0);
      merger.Merge(plan, outcome);
      return Status::Ok();
    };
    Status st = merge_one(0, FaultPlan{});
    if (!st.ok()) {
      return st;
    }
    for (size_t i = 0; i < plans_.size(); ++i) {
      st = merge_one(i + 1, plans_[i]);
      if (!st.ok()) {
        return st;
      }
    }
    return Status::Ok();
  }

  void FoldCaches() {
    if (!config_.shared_cache && config_.shared_cache_path.empty()) {
      return;
    }
    result_.shared_cache_used = true;
    if (config_.shared_cache_path.empty()) {
      return;  // memory-only mode: each worker's cache died with it
    }
    SharedCacheConfig cache_config;
    cache_config.max_bytes = config_.shared_cache_max_bytes;
    SharedQueryCache cache(cache_config);
    cache.LoadFromFile(config_.shared_cache_path);
    for (const std::string& path : cache_delta_paths_) {
      cache.LoadFromFile(path);
    }
    Status saved = cache.SaveToFile(config_.shared_cache_path);
    if (!saved.ok()) {
      DDT_LOG_WARN("%s", saved.message().c_str());
    }
    SharedQueryCache::Stats stats = cache.stats();
    result_.shared_cache_entries = stats.entries;
    result_.shared_cache_bytes = stats.bytes;
    result_.shared_cache_evictions = stats.evictions;
    result_.shared_cache_load_errors = stats.load_errors;
    result_.shared_cache_loaded_entries = stats.loaded_entries;
    result_.shared_cache_saved_entries = stats.saved_entries;
  }

  void PublishTallies() {
    result_.fleet_mode = true;
    result_.fleet_workers = fleet_.workers;
    result_.threads_used = 1;
    result_.inline_scheduler = false;
    result_.searcher_name = SearchStrategyName(config_.base.engine.strategy);
    if (metrics_ != nullptr) {
      metrics_->counter("fleet.workers_spawned")->Add(result_.fleet_workers_spawned);
      metrics_->counter("fleet.workers_lost")->Add(result_.fleet_workers_lost);
      metrics_->counter("fleet.workers_rejected")->Add(result_.fleet_workers_rejected);
      metrics_->counter("fleet.workers_recycled")->Add(result_.fleet_workers_recycled);
      metrics_->counter("fleet.leases_reassigned")->Add(result_.fleet_leases_reassigned);
      metrics_->counter("fleet.results_salvaged")->Add(result_.fleet_results_salvaged);
      metrics_->counter("fleet.heartbeats")->Add(heartbeats_);
      metrics_->gauge("fleet.workers")->Set(static_cast<int64_t>(fleet_.workers));
      result_.metrics.Merge(metrics_->Snapshot());
    }
  }

  void Shutdown() {
    for (Slot& slot : slots_) {
      if (slot.alive()) {
        KillAndReap(slot.pid);
        CloseSlot(slot);
      }
    }
  }

  const FaultCampaignConfig& config_;
  const DriverImage& image_;
  const PciDescriptor& descriptor_;
  const FleetCampaignConfig& fleet_;

  uint64_t fingerprint_ = 0;
  std::unique_ptr<CampaignJournal> journal_;
  std::shared_ptr<obs::MetricsRegistry> metrics_;
  FaultCampaignResult result_;

  std::vector<Slot> slots_;
  uint64_t generation_counter_ = 0;

  std::vector<FaultPlan> plans_;
  bool have_plans_ = false;
  std::deque<uint64_t> pending_;
  std::map<uint64_t, uint32_t> lease_losses_;
  std::map<uint64_t, CampaignPassRecord> completed_;
  std::map<uint64_t, CampaignPassRecord> resume_records_;
  std::set<uint64_t> restored_;

  bool drain_started_ = false;
  int64_t leases_assigned_ = 0;
  Clock::time_point drain_deadline_;
  std::vector<std::string> cache_delta_paths_;
  uint64_t heartbeats_ = 0;
};

}  // namespace

Result<FaultCampaignResult> RunFleetCampaign(const FaultCampaignConfig& config,
                                             const DriverImage& image,
                                             const PciDescriptor& descriptor,
                                             const FleetCampaignConfig& fleet) {
  ::signal(SIGPIPE, SIG_IGN);  // a dying worker's pipe must error, not kill us
  Coordinator coordinator(config, image, descriptor, fleet);
  return coordinator.Run();
}

}  // namespace fleet
}  // namespace ddt
