// Fleet worker process: lease -> execute -> journal -> RESULT, until BYE.
//
// A worker is the in-process scheduler's worker *thread* promoted to a
// process. It owns a private CampaignPassExecutor (so a pass runs under the
// exact same watchdog/retry/quarantine supervision), a private shard journal
// (so its completed passes survive its own death), and a private solver cache
// warm-started read-only from the shared persistence file. Ordering is the
// crash-safety contract: a pass is journaled *before* its RESULT frame is
// sent, so the coordinator can always salvage from the journal anything it
// never heard about — and a RESULT the coordinator did hear about may also be
// salvaged later, which is why the coordinator's merge is idempotent by pass
// index.
#include <signal.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <thread>

#include "src/core/campaign_exec.h"
#include "src/core/campaign_journal.h"
#include "src/fleet/fleet.h"
#include "src/fleet/wire.h"
#include "src/solver/shared_cache.h"
#include "src/support/log.h"
#include "src/support/strings.h"

namespace ddt {
namespace fleet {
namespace {

std::string ShardJournalPath(const FleetWorkerOptions& options) {
  return StrFormat("%s/worker-%u-%llu.journal", options.shard_dir.c_str(), options.slot,
                   static_cast<unsigned long long>(options.generation));
}

std::string CacheDeltaPath(const FleetWorkerOptions& options) {
  return StrFormat("%s/cache-%u-%llu.bin", options.shard_dir.c_str(), options.slot,
                   static_cast<unsigned long long>(options.generation));
}

// Serializes the heartbeat thread and the lease loop onto one pipe: frames
// must never interleave.
class FrameWriter {
 public:
  explicit FrameWriter(int fd) : fd_(fd) {}

  Status Write(FrameType type, std::string_view body) {
    std::unique_lock<std::mutex> lock(mu_);
    return WriteFrame(fd_, type, body);
  }

 private:
  int fd_;
  std::mutex mu_;
};

// Periodic liveness beacon. Beats for the whole worker session — including
// while a pass executes — so the coordinator's heartbeat timeout bounds
// worker liveness, not pass duration. A failed beat means the coordinator is
// gone; the worker has nothing left to live for.
class HeartbeatThread {
 public:
  HeartbeatThread(FrameWriter* writer, uint32_t interval_ms)
      : writer_(writer), interval_ms_(interval_ms == 0 ? 200 : interval_ms) {
    thread_ = std::thread([this] { Loop(); });
  }

  ~HeartbeatThread() {
    {
      std::unique_lock<std::mutex> lock(mu_);
      stop_ = true;
    }
    cv_.notify_all();
    thread_.join();
  }

 private:
  void Loop() {
    uint64_t seq = 0;
    std::unique_lock<std::mutex> lock(mu_);
    for (;;) {
      cv_.wait_for(lock, std::chrono::milliseconds(interval_ms_), [this] { return stop_; });
      if (stop_) {
        return;
      }
      lock.unlock();
      Status st = writer_->Write(FrameType::kHeartbeat, EncodeHeartbeat(seq++));
      if (!st.ok()) {
        ::_exit(2);  // orphaned: the coordinator's pipe is gone
      }
      lock.lock();
    }
  }

  FrameWriter* writer_;
  uint32_t interval_ms_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  std::thread thread_;
};

}  // namespace

int RunFleetWorker(const FaultCampaignConfig& config, const DriverImage& image,
                   const PciDescriptor& descriptor, const FleetWorkerOptions& options) {
  ::signal(SIGPIPE, SIG_IGN);

  // The worker's config drops everything the coordinator owns: the main
  // journal (the shard journal replaces it) and the observability collectors
  // (volatile-only, and a record cannot carry live registries anyway). None
  // of these enter the campaign fingerprint, so the HELLO fingerprint still
  // matches the coordinator's.
  FaultCampaignConfig worker_config = config;
  worker_config.journal_path.clear();
  worker_config.resume = false;
  worker_config.collect_metrics = false;
  worker_config.collect_profile = false;

  uint64_t fingerprint = CampaignFingerprint(worker_config, image);

  // Private solver cache, warm-started read-only from the shared file. The
  // worker never writes the shared path — its accumulated entries go to a
  // per-worker delta file at drain, which the coordinator folds back.
  std::shared_ptr<SharedQueryCache> cache;
  if (worker_config.shared_cache || !worker_config.shared_cache_path.empty()) {
    SharedCacheConfig cache_config;
    cache_config.max_bytes = worker_config.shared_cache_max_bytes;
    cache = std::make_shared<SharedQueryCache>(cache_config);
    if (!worker_config.shared_cache_path.empty()) {
      cache->LoadFromFile(worker_config.shared_cache_path);
    }
  }

  std::string journal_path = ShardJournalPath(options);
  Result<std::unique_ptr<CampaignJournal>> journal =
      CampaignJournal::Create(journal_path, image.name, fingerprint);
  if (!journal.ok()) {
    DDT_LOG_WARN("fleet worker %u: %s", options.slot, journal.status().message().c_str());
    return 3;
  }

  CampaignPassExecutor executor(worker_config, image, descriptor, cache.get(),
                                /*campaign_metrics=*/nullptr);

  FrameWriter writer(options.out_fd);
  HelloBody hello;
  hello.fingerprint = fingerprint;
  hello.pid = static_cast<uint64_t>(::getpid());
  if (!writer.Write(FrameType::kHello, EncodeHello(hello)).ok()) {
    return 2;
  }
  HeartbeatThread heartbeat(&writer, options.heartbeat_interval_ms);

  int64_t executed = 0;
  for (;;) {
    Result<Frame> frame = ReadFrame(options.in_fd);
    if (!frame.ok()) {
      return 2;  // coordinator died or the stream broke: nothing to clean up
    }
    switch (frame.value().type) {
      case FrameType::kLease: {
        LeaseBody lease;
        if (!DecodeLease(frame.value().body, &lease)) {
          return 2;
        }
        PassOutcome out = executor.Execute(lease.plan);
        FaultSiteProfile profile;
        HwSiteProfile hw_profile;
        const FaultSiteProfile* profile_ptr = nullptr;
        const HwSiteProfile* hw_profile_ptr = nullptr;
        if (lease.index == 0 && !out.quarantined) {
          profile = out.ddt->engine().fault_site_profile();
          profile_ptr = &profile;
          hw_profile = out.ddt->engine().hw_site_profile();
          hw_profile_ptr = &hw_profile;
        }
        CampaignPassRecord record =
            MakePassRecord(lease.index, lease.plan, out, profile_ptr, hw_profile_ptr);
        Status appended = journal.value()->Append(record);
        if (!appended.ok()) {
          DDT_LOG_WARN("fleet worker %u: %s", options.slot, appended.message().c_str());
          return 3;
        }
        ++executed;
        if (options.kill_after_journal_result == executed) {
          ::raise(SIGKILL);  // record durable, RESULT never sent: salvage path
        }
        std::string payload = EncodeCampaignPassRecord(record);
        if (!writer.Write(FrameType::kResult, payload).ok()) {
          return 2;
        }
        if (options.duplicate_results &&
            !writer.Write(FrameType::kResult, payload).ok()) {
          return 2;
        }
        if (options.kill_after_result == executed) {
          ::raise(SIGKILL);
        }
        break;
      }
      case FrameType::kBye: {
        std::string cache_path;
        if (cache != nullptr && !worker_config.shared_cache_path.empty()) {
          cache_path = CacheDeltaPath(options);
          Status saved = cache->SaveToFile(cache_path);
          if (!saved.ok()) {
            DDT_LOG_WARN("fleet worker %u: %s", options.slot, saved.message().c_str());
            cache_path.clear();
          }
        }
        ByeBody bye;
        bye.code = kByeDrain;
        bye.detail = cache_path;
        writer.Write(FrameType::kBye, EncodeBye(bye));
        return 0;
      }
      default:
        return 2;  // protocol violation; the coordinator treats exit as loss
    }
  }
}

}  // namespace fleet
}  // namespace ddt
