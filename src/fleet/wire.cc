#include "src/fleet/wire.h"

#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "src/support/crc32.h"
#include "src/support/eintr.h"
#include "src/support/strings.h"

namespace ddt {
namespace fleet {
namespace {

void AppendU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

void AppendU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

void AppendStr(std::string* out, std::string_view s) {
  AppendU32(out, static_cast<uint32_t>(s.size()));
  out->append(s.data(), s.size());
}

// Bounds-checked little-endian reader (the wire twin of the shared cache's
// file reader). Any overrun poisons it; callers check ok at the end, so a
// truncated body decodes to false rather than garbage.
struct BodyReader {
  const char* p;
  size_t size;
  size_t pos = 0;
  bool ok = true;

  bool Take(void* out, size_t n) {
    if (!ok || size - pos < n) {
      ok = false;
      return false;
    }
    std::memcpy(out, p + pos, n);
    pos += n;
    return true;
  }
  uint8_t U8() {
    uint8_t v = 0;
    Take(&v, 1);
    return v;
  }
  uint32_t U32() {
    unsigned char b[4] = {0, 0, 0, 0};
    Take(b, 4);
    return static_cast<uint32_t>(b[0]) | (static_cast<uint32_t>(b[1]) << 8) |
           (static_cast<uint32_t>(b[2]) << 16) | (static_cast<uint32_t>(b[3]) << 24);
  }
  uint64_t U64() {
    unsigned char b[8] = {0, 0, 0, 0, 0, 0, 0, 0};
    Take(b, 8);
    uint64_t v = 0;
    for (int i = 7; i >= 0; --i) {
      v = (v << 8) | b[i];
    }
    return v;
  }
  std::string Str() {
    uint32_t n = U32();
    if (!ok || size - pos < n) {
      ok = false;
      return std::string();
    }
    std::string s(p + pos, n);
    pos += n;
    return s;
  }
  bool Done() const { return ok && pos == size; }
};

uint32_t ReadU32At(const char* p) {
  const unsigned char* b = reinterpret_cast<const unsigned char*>(p);
  return static_cast<uint32_t>(b[0]) | (static_cast<uint32_t>(b[1]) << 8) |
         (static_cast<uint32_t>(b[2]) << 16) | (static_cast<uint32_t>(b[3]) << 24);
}

bool ValidFrameType(uint8_t t) {
  return t >= static_cast<uint8_t>(FrameType::kHello) &&
         t <= static_cast<uint8_t>(FrameType::kFuzzExec);
}

}  // namespace

std::string EncodeFrame(FrameType type, std::string_view body) {
  std::string payload;
  payload.reserve(1 + body.size());
  payload.push_back(static_cast<char>(type));
  payload.append(body.data(), body.size());
  std::string frame;
  frame.reserve(8 + payload.size());
  AppendU32(&frame, static_cast<uint32_t>(payload.size()));
  AppendU32(&frame, Crc32(payload));
  frame += payload;
  return frame;
}

void FrameDecoder::Feed(const char* data, size_t size) { buf_.append(data, size); }

FrameDecoder::Next FrameDecoder::Pop(Frame* out) {
  if (corrupt_) {
    return Next::kCorrupt;
  }
  if (buf_.size() - pos_ < 8) {
    return Next::kNeedMore;
  }
  uint32_t len = ReadU32At(buf_.data() + pos_);
  uint32_t crc = ReadU32At(buf_.data() + pos_ + 4);
  if (len == 0 || len > kMaxFrameBytes) {
    corrupt_ = true;
    return Next::kCorrupt;
  }
  if (buf_.size() - pos_ - 8 < len) {
    return Next::kNeedMore;
  }
  const char* payload = buf_.data() + pos_ + 8;
  if (Crc32(payload, len) != crc || !ValidFrameType(static_cast<uint8_t>(payload[0]))) {
    corrupt_ = true;
    return Next::kCorrupt;
  }
  out->type = static_cast<FrameType>(payload[0]);
  out->body.assign(payload + 1, len - 1);
  pos_ += 8 + len;
  if (pos_ > (1u << 20) && pos_ * 2 > buf_.size()) {
    buf_.erase(0, pos_);
    pos_ = 0;
  }
  return Next::kFrame;
}

Status WriteFrame(int fd, FrameType type, std::string_view body) {
  std::string frame = EncodeFrame(type, body);
  size_t written = 0;
  while (written < frame.size()) {
    ssize_t n = RetryOnEintr(
        [&] { return ::write(fd, frame.data() + written, frame.size() - written); });
    if (n < 0) {
      return Status::Error(StrFormat("fleet pipe write failed: %s", std::strerror(errno)));
    }
    written += static_cast<size_t>(n);
  }
  return Status::Ok();
}

Result<Frame> ReadFrame(int fd) {
  FrameDecoder decoder;
  Frame frame;
  char chunk[4096];
  for (;;) {
    FrameDecoder::Next next = decoder.Pop(&frame);
    if (next == FrameDecoder::Next::kFrame) {
      return frame;
    }
    if (next == FrameDecoder::Next::kCorrupt) {
      return Status::Error("fleet pipe frame corrupt");
    }
    ssize_t n = RetryOnEintr([&] { return ::read(fd, chunk, sizeof(chunk)); });
    if (n < 0) {
      return Status::Error(StrFormat("fleet pipe read failed: %s", std::strerror(errno)));
    }
    if (n == 0) {
      return Status::Error("fleet pipe closed");
    }
    decoder.Feed(chunk, static_cast<size_t>(n));
  }
}

std::string EncodeHello(const HelloBody& hello) {
  std::string body;
  AppendU64(&body, hello.fingerprint);
  AppendU64(&body, hello.pid);
  return body;
}

bool DecodeHello(std::string_view body, HelloBody* hello) {
  BodyReader r{body.data(), body.size()};
  hello->fingerprint = r.U64();
  hello->pid = r.U64();
  return r.Done();
}

std::string EncodeLease(const LeaseBody& lease) {
  std::string body;
  AppendU64(&body, lease.index);
  AppendStr(&body, lease.plan.label);
  AppendU32(&body, static_cast<uint32_t>(lease.plan.points.size()));
  for (const FaultPoint& point : lease.plan.points) {
    AppendU32(&body, static_cast<uint32_t>(point.cls));
    AppendU32(&body, point.occurrence);
  }
  AppendU32(&body, static_cast<uint32_t>(lease.plan.hw_points.size()));
  for (const HwFaultPoint& point : lease.plan.hw_points) {
    AppendU32(&body, static_cast<uint32_t>(point.kind));
    AppendU32(&body, point.index);
  }
  return body;
}

bool DecodeLease(std::string_view body, LeaseBody* lease) {
  BodyReader r{body.data(), body.size()};
  lease->index = r.U64();
  lease->plan.label = r.Str();
  uint32_t count = r.U32();
  if (!r.ok || count > kMaxFrameBytes / 8) {
    return false;
  }
  lease->plan.points.clear();
  lease->plan.points.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    uint32_t cls = r.U32();
    uint32_t occurrence = r.U32();
    if (!r.ok || cls >= kNumFaultClasses) {
      return false;
    }
    lease->plan.points.push_back(FaultPoint{static_cast<FaultClass>(cls), occurrence});
  }
  uint32_t hw_count = r.U32();
  if (!r.ok || hw_count > kMaxFrameBytes / 8) {
    return false;
  }
  lease->plan.hw_points.clear();
  lease->plan.hw_points.reserve(hw_count);
  for (uint32_t i = 0; i < hw_count; ++i) {
    uint32_t kind = r.U32();
    uint32_t index = r.U32();
    if (!r.ok || kind >= kNumHwFaultKinds) {
      return false;
    }
    lease->plan.hw_points.push_back(HwFaultPoint{static_cast<HwFaultKind>(kind), index});
  }
  return r.Done();
}

std::string EncodeHeartbeat(uint64_t seq) {
  std::string body;
  AppendU64(&body, seq);
  return body;
}

bool DecodeHeartbeat(std::string_view body, uint64_t* seq) {
  BodyReader r{body.data(), body.size()};
  *seq = r.U64();
  return r.Done();
}

std::string EncodeBye(const ByeBody& bye) {
  std::string body;
  body.push_back(static_cast<char>(bye.code));
  AppendStr(&body, bye.detail);
  return body;
}

bool DecodeBye(std::string_view body, ByeBody* bye) {
  BodyReader r{body.data(), body.size()};
  bye->code = r.U8();
  bye->detail = r.Str();
  return r.Done();
}

std::string EncodeFuzzExecLease(const FuzzExecLease& lease) {
  std::string body;
  AppendU64(&body, lease.index);
  AppendStr(&body, lease.input_text);
  return body;
}

bool DecodeFuzzExecLease(std::string_view body, FuzzExecLease* lease) {
  BodyReader r{body.data(), body.size()};
  lease->index = r.U64();
  lease->input_text = r.Str();
  return r.Done();
}

std::string EncodeFuzzExecResult(const FuzzExecResultBody& result) {
  std::string body;
  AppendU64(&body, result.index);
  body.push_back(static_cast<char>(result.ok));
  AppendStr(&body, result.failure);
  AppendStr(&body, result.coverage_hex);
  AppendU64(&body, result.instructions);
  AppendStr(&body, result.bugs_text);
  return body;
}

bool DecodeFuzzExecResult(std::string_view body, FuzzExecResultBody* result) {
  BodyReader r{body.data(), body.size()};
  result->index = r.U64();
  result->ok = r.U8();
  result->failure = r.Str();
  result->coverage_hex = r.Str();
  result->instructions = r.U64();
  result->bugs_text = r.Str();
  return r.Done();
}

}  // namespace fleet
}  // namespace ddt
