// Crash-isolated multi-process campaign fleet (broker/worker sharding).
//
// RunFaultCampaign's thread pool survives a *misbehaving* pass (CHECK traps
// are caught, watchdogs cancel cooperatively) but not a *lethal* one: a guest
// that corrupts the heap, a checker that segfaults, or an operator's kill -9
// takes the whole campaign — and every completed pass — with it. The fleet
// puts each unit of work in a disposable OS process instead:
//
//   coordinator ──pipe──> worker 0   (own engine, own solver, own journal)
//               ──pipe──> worker 1
//               ──pipe──> ...
//
// The coordinator owns the schedule: it leases pass indices to workers over
// the wire protocol (src/fleet/wire.h), tracks liveness via heartbeats and
// waitpid, and merges RESULT records in plan order with the same
// CampaignMerger the in-process scheduler uses. A worker that dies — any
// signal, any exit, any corrupt byte stream — costs exactly its in-flight
// lease: the coordinator salvages completed records from the dead worker's
// shard journal, re-queues the lease (bounded retries, then the pass is
// quarantined with a deterministic failure), and spawns a replacement.
// Because execution is decoupled from merging and records are keyed by pass
// index (idempotent: first record for an index wins), the merged report's
// deterministic section is byte-identical to a single-process run at any
// worker count and any crash/reassignment history.
//
// The shared solver cache crosses the process boundary read-only: every
// worker warm-starts from `shared_cache_path`, accumulates privately, and
// writes its delta to a per-worker file at drain; the coordinator folds the
// deltas together and persists once (under the file lock SaveToFile takes,
// so concurrent independent campaigns elect a single writer).
//
// See DESIGN.md §7e for the full state machine.
#ifndef SRC_FLEET_FLEET_H_
#define SRC_FLEET_FLEET_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "src/core/ddt.h"
#include "src/support/subprocess.h"

namespace ddt {
namespace fleet {

// Everything a worker process needs beyond the campaign config itself. In
// fork mode these are passed in memory; the fault_campaign example's exec
// mode reconstructs them from --fleet-* flags.
struct FleetWorkerOptions {
  int in_fd = kChildInFd;    // coordinator -> worker frames
  int out_fd = kChildOutFd;  // worker -> coordinator frames
  // Directory for this worker's shard journal and cache-delta file. The
  // coordinator owns the directory; slot+generation name the files so a
  // replacement worker never appends to its dead predecessor's journal.
  std::string shard_dir;
  uint32_t slot = 0;
  uint64_t generation = 0;
  uint32_t heartbeat_interval_ms = 200;
  // --- Test/CI fault hooks (off by default) ---
  // After appending the Nth executed pass to the shard journal but *before*
  // sending its RESULT frame, die via SIGKILL. Exercises the salvage path:
  // the record exists only in the shard journal.
  int64_t kill_after_journal_result = -1;  // 1-based count of executed passes
  // After sending the Nth RESULT frame, die via SIGKILL. Exercises
  // reassignment of the *next* lease mid-flight.
  int64_t kill_after_result = -1;  // 1-based
  // Send every RESULT frame twice. Exercises the coordinator's idempotent
  // merge (duplicate records for a pass index are dropped).
  bool duplicate_results = false;
};

// Worker entry point: speaks the wire protocol on in_fd/out_fd until BYE or
// pipe close. Returns the process exit code (0 = drained cleanly). Never
// throws; a CHECK trap inside a pass is handled by the executor (quarantined
// record), a CHECK trap outside one exits nonzero.
int RunFleetWorker(const FaultCampaignConfig& config, const DriverImage& image,
                   const PciDescriptor& descriptor, const FleetWorkerOptions& options);

struct FleetCampaignConfig {
  // Worker process count. The coordinator is elastic downward: it never keeps
  // more live workers than there is remaining work.
  uint32_t workers = 2;
  // Required. Per-worker shard journals and cache deltas live here; the
  // directory must exist and be writable.
  std::string shard_dir;
  uint32_t heartbeat_interval_ms = 200;
  // A worker that has sent no frame (heartbeat or otherwise) for this long is
  // declared lost: SIGKILLed, salvaged, its lease reassigned. Heartbeats come
  // from a dedicated thread, so this bounds worker *liveness*, not pass
  // duration — a pass may legitimately run far longer.
  uint32_t heartbeat_timeout_ms = 10000;
  // Times a pass may be reassigned after worker losses before it is
  // quarantined ("the pass kills whoever runs it").
  uint32_t max_lease_retries = 2;
  // 0 = unlimited. Otherwise a worker is drained and replaced after serving
  // this many leases — process recycling against slow leaks in long
  // campaigns (and a respawn-path workout for tests).
  uint32_t max_leases_per_worker = 0;
  // Spawn mode. Empty: fork mode — workers are forked from the coordinator
  // process and run RunFleetWorker on the in-memory config (do not combine
  // with other live threads in the calling process; see subprocess.h).
  // Non-empty: exec mode — this binary is spawned with worker_args plus the
  // coordinator-appended --fleet-worker identity flags (see the
  // fault_campaign example).
  std::string worker_exec;
  std::vector<std::string> worker_args;
  // Forwarded to fork-mode workers (fault hooks for tests; ignored in exec
  // mode, where the flags travel on the command line).
  FleetWorkerOptions worker_test;
  // --- Test hooks ---
  // Replaces the spawn path entirely (e.g. a hand-rolled child speaking a
  // perturbed protocol). Receives the worker options the coordinator built.
  std::function<Result<ChildProcess>(const FleetWorkerOptions&)> spawn_override;
  // Called after each RESULT is accepted: (slot, worker pid, pass index).
  // Runs on the coordinator thread; may kill(pid, ...) to inject crashes.
  std::function<void(uint32_t, pid_t, uint64_t)> on_result;
  // SIGKILL the assignee of the Nth LEASE (1-based, counting every LEASE
  // frame sent including reassignments) immediately after the lease is
  // written. The worker dies holding the lease, forcing the full loss path:
  // salvage, reassignment, respawn. -1 = off. Used by the CI determinism
  // harness (--fleet-kill-lease) and the crash tests.
  int64_t kill_lease_number = -1;
};

// Runs the campaign across a fleet of worker processes. The result's
// deterministic report (FormatReport with include_volatile=false) is
// byte-identical to RunFaultCampaign's for the same (config, image) at any
// worker count and any worker-crash history; the fleet_* tallies and the
// scheduler line land in the volatile section only.
//
// config.journal_path / config.resume work exactly as in-process: the
// coordinator keeps the main journal, and a killed coordinator resumes from
// it (completed passes are not re-leased).
Result<FaultCampaignResult> RunFleetCampaign(const FaultCampaignConfig& config,
                                             const DriverImage& image,
                                             const PciDescriptor& descriptor,
                                             const FleetCampaignConfig& fleet);

}  // namespace fleet
}  // namespace ddt

#endif  // SRC_FLEET_FLEET_H_
