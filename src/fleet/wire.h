// Fleet wire protocol: length-prefixed, CRC-protected frames over local pipes.
//
// The coordinator and its worker processes speak a deliberately tiny binary
// protocol — five frame types, fixed little-endian integers, length-prefixed
// strings — over the pipe pair each worker was spawned with:
//
//   frame := [u32 len][u32 crc][u8 type][body]      (len = 1 + body size,
//                                                    crc = CRC-32 over type+body)
//
//   worker -> coordinator:  HELLO(fingerprint, pid)  once, first
//                           HEARTBEAT(seq)           periodic liveness
//                           RESULT(record payload)   one per completed lease
//                           BYE(code, detail)        drained; detail names the
//                                                    worker's cache-delta file
//   coordinator -> worker:  LEASE(index, plan)       execute this pass
//                           BYE(code, detail)        drain and exit (code 0) or
//                                                    rejected at HELLO (code 1)
//
// The CRC (src/support/crc32.h — the same function that seals journal lines
// and cache files) is not paranoia about pipe corruption; it is what lets the
// coordinator treat *any* malformed byte stream from a dying or misbehaving
// worker as a worker loss rather than undefined behavior. A frame that fails
// its CRC, exceeds the size cap, or truncates at EOF marks the connection
// corrupt, and the coordinator's only response to a corrupt connection is the
// same as to a dead one: kill, salvage the shard journal, reassign.
//
// RESULT bodies are EncodeCampaignPassRecord payloads verbatim — the exact
// bytes the worker also appended to its shard journal — so a pass result
// received over the pipe, salvaged from a dead worker's journal, or restored
// from the coordinator's main journal is the same record byte-for-byte.
#ifndef SRC_FLEET_WIRE_H_
#define SRC_FLEET_WIRE_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "src/engine/fault_injection.h"
#include "src/support/status.h"

namespace ddt {
namespace fleet {

enum class FrameType : uint8_t {
  kHello = 1,
  kLease = 2,
  kHeartbeat = 3,
  kResult = 4,
  kBye = 5,
  // Fuzz-loop sharding (src/fuzz): the same frame type carries a
  // FuzzExecLease coordinator -> worker and a FuzzExecResultBody back —
  // direction disambiguates, exactly as kBye does.
  kFuzzExec = 6,
};

// Caps a frame at far more than any record needs; a length prefix beyond it
// means the stream is garbage, not that a bigger buffer is needed.
constexpr uint32_t kMaxFrameBytes = 64u << 20;

struct Frame {
  FrameType type = FrameType::kHello;
  std::string body;
};

std::string EncodeFrame(FrameType type, std::string_view body);

// Incremental decoder for the coordinator's poll loop: feed whatever bytes
// read() delivered, pop complete frames. Once a frame fails validation the
// decoder stays corrupt — there is no way to resynchronize a byte stream.
class FrameDecoder {
 public:
  enum class Next {
    kFrame,     // *out filled
    kNeedMore,  // no complete frame buffered yet
    kCorrupt,   // bad length or CRC; connection is unusable
  };

  void Feed(const char* data, size_t size);
  Next Pop(Frame* out);

 private:
  std::string buf_;
  size_t pos_ = 0;  // consumed prefix, compacted lazily
  bool corrupt_ = false;
};

// Blocking single-frame I/O for the worker side (and tests). WriteFrame
// retries short writes and EINTR; callers serialize concurrent writers (the
// worker's heartbeat thread and lease loop share one mutex). ReadFrame
// returns an error on EOF, I/O failure, or a corrupt frame.
Status WriteFrame(int fd, FrameType type, std::string_view body);
Result<Frame> ReadFrame(int fd);

// --- Body codecs -----------------------------------------------------------

struct HelloBody {
  uint64_t fingerprint = 0;  // CampaignFingerprint(config, image)
  uint64_t pid = 0;
};
std::string EncodeHello(const HelloBody& hello);
bool DecodeHello(std::string_view body, HelloBody* hello);

struct LeaseBody {
  uint64_t index = 0;  // pass index; 0 = baseline (plan empty)
  FaultPlan plan;
};
std::string EncodeLease(const LeaseBody& lease);
bool DecodeLease(std::string_view body, LeaseBody* lease);

std::string EncodeHeartbeat(uint64_t seq);
bool DecodeHeartbeat(std::string_view body, uint64_t* seq);

// RESULT: the body is an EncodeCampaignPassRecord payload, no extra framing.

struct ByeBody {
  // coordinator -> worker: 0 = drained (work done), 1 = rejected at HELLO.
  // worker -> coordinator: always 0; detail names the cache-delta file ("" if
  // the shared cache is off).
  uint8_t code = 0;
  std::string detail;
};
constexpr uint8_t kByeDrain = 0;
constexpr uint8_t kByeRejected = 1;
std::string EncodeBye(const ByeBody& bye);
bool DecodeBye(std::string_view body, ByeBody* bye);

// FUZZ_EXEC coordinator -> worker: replay this serialized fuzz input
// (src/fuzz/input.h text form — already process-independent, so the wire
// carries it verbatim like RESULT carries pass records).
struct FuzzExecLease {
  uint64_t index = 0;  // exec index within the batch
  std::string input_text;
};
std::string EncodeFuzzExecLease(const FuzzExecLease& lease);
bool DecodeFuzzExecLease(std::string_view body, FuzzExecLease* lease);

// FUZZ_EXEC worker -> coordinator: one execution's outcome. Coverage crosses
// as the bitmap's hex form and bugs as a bug_io report, so a result merged
// from a worker is byte-identical to one executed in-process.
struct FuzzExecResultBody {
  uint64_t index = 0;
  uint8_t ok = 0;
  std::string failure;
  std::string coverage_hex;
  uint64_t instructions = 0;
  std::string bugs_text;
};
std::string EncodeFuzzExecResult(const FuzzExecResultBody& result);
bool DecodeFuzzExecResult(std::string_view body, FuzzExecResultBody* result);

}  // namespace fleet
}  // namespace ddt

#endif  // SRC_FLEET_WIRE_H_
