#include "src/baselines/driver_verifier.h"

#include <chrono>
#include <memory>
#include <set>

#include "src/annotations/annotation.h"
#include "src/hw/device.h"
#include "src/kernel/kernel_api.h"
#include "src/support/rng.h"

namespace ddt {

namespace {

// Driver Verifier's low-resources simulation: on the return path of an
// allocator, roll the dice and fail the call in place (undoing the kernel
// bookkeeping). Unlike DDT's annotation alternatives this does NOT fork —
// one world, randomly chosen, exactly like the real tool.
class RandomAllocFailure : public ApiAnnotation {
 public:
  RandomAllocFailure(std::string api, bool status_style, int out_arg, uint32_t one_in)
      : api_(std::move(api)), status_style_(status_style), out_arg_(out_arg), one_in_(one_in) {}

  std::string function() const override { return api_; }

  AnnotationOutcome OnReturn(KernelContext& kc) override {
    Value ret = kc.GetReturn();
    if (!ret.IsConcrete()) {
      return AnnotationOutcome{};
    }
    bool succeeded = status_style_ ? ret.concrete() == kStatusSuccess : ret.concrete() != 0;
    if (!succeeded || kc.rng().NextBelow(one_in_) != 0) {
      return AnnotationOutcome{};
    }
    if (status_style_) {
      uint32_t out_ptr = kc.Concretize(kc.Arg(out_arg_), "lowres.out_ptr");
      uint32_t written = kc.ReadGuestU32(out_ptr);
      kc.kernel().pool.erase(written);
      kc.kernel().packet_pools.erase(written);
      if (kc.kernel().packets.count(written) != 0) {
        RemoveGrant(kc.kernel(), written);
        kc.kernel().packets.erase(written);
      }
      kc.WriteGuestU32(out_ptr, 0);
      kc.SetReturn(Value::Concrete(kStatusInsufficientResources));
    } else {
      kc.kernel().pool.erase(ret.concrete());
      kc.SetReturn(Value::Concrete(0));
    }
    return AnnotationOutcome{};
  }

 private:
  std::string api_;
  bool status_style_;
  int out_arg_;
  uint32_t one_in_;
};

AnnotationSet MakeLowResourceAnnotations(uint32_t one_in) {
  AnnotationSet set;
  set.Add(std::make_shared<RandomAllocFailure>("MosAllocatePool", false, 0, one_in));
  set.Add(std::make_shared<RandomAllocFailure>("MosAllocatePoolWithTag", false, 0, one_in));
  set.Add(std::make_shared<RandomAllocFailure>("MosAllocateMemoryWithTag", true, 0, one_in));
  set.Add(std::make_shared<RandomAllocFailure>("MosNewInterruptSync", true, 0, one_in));
  set.Add(std::make_shared<RandomAllocFailure>("MosAllocatePacketPool", true, 0, one_in));
  set.Add(std::make_shared<RandomAllocFailure>("MosAllocatePacket", true, 0, one_in));
  return set;
}

}  // namespace

StressResult RunDriverVerifierStress(const DriverImage& image, const PciDescriptor& descriptor,
                                     const StressConfig& config) {
  auto start = std::chrono::steady_clock::now();
  Rng rng(config.seed);
  StressResult result;
  std::set<std::string> seen;

  for (int i = 0; i < config.iterations; ++i) {
    DdtConfig run_config;
    // Fully concrete: no annotations, no symbolic interrupts, scripted
    // device. The in-guest verifier checks and the VM-level checkers are the
    // same ones DDT uses — the comparison isolates input generation.
    run_config.use_standard_annotations = false;
    run_config.engine.enable_symbolic_interrupts = false;
    run_config.engine.max_instructions = config.max_instructions_per_run;
    run_config.engine.max_states = 4;
    run_config.engine.seed = rng.Next();
    // Driver Verifier semantics: the machine bluescreens on the first bug.
    run_config.engine.stop_after_first_bug = true;
    for (int k = 0; k < config.random_interrupts_per_run; ++k) {
      run_config.engine.forced_interrupt_schedule.push_back(
          static_cast<uint32_t>(rng.NextBelow(config.interrupt_crossing_range)));
    }

    Ddt ddt(run_config);
    // Concrete device: every register read returns a fresh random value.
    ddt.SetDevice(std::make_unique<ScriptedDevice>(std::vector<uint32_t>{}, rng.Next()));
    if (config.simulate_low_resources) {
      ddt.AddAnnotations(MakeLowResourceAnnotations(config.allocation_failure_one_in));
    }
    Result<DdtResult> run = ddt.TestDriver(image, descriptor);
    ++result.iterations;
    if (!run.ok()) {
      continue;
    }
    result.total_instructions += run.value().stats.instructions;
    if (!run.value().bugs.empty()) {
      ++result.crashed_iterations;
      for (const Bug& bug : run.value().bugs) {
        if (seen.insert(bug.title).second) {
          Bug copy = bug;
          copy.trace.clear();  // expression pointers die with this iteration
          copy.inputs.clear();
          result.bugs.push_back(copy);
        }
      }
    }
  }
  result.wall_ms =
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - start).count();
  return result;
}

}  // namespace ddt
