// Driver Verifier stress baseline (§3.4.2, §5.1).
//
// Models how Microsoft certifies drivers: run the driver *concretely* in its
// real environment under the in-guest verifier, with randomized inputs
// (device register values, interrupt timing) across many iterations, and
// stop at the first crash. Detection power is identical to DDT's (same
// kernel checks, same VM-level checkers) — what differs is *reachability*:
// concrete random inputs almost never steer execution down the buggy paths
// that symbolic execution enumerates exhaustively. The paper: "We tried to
// find these bugs with the Microsoft Driver Verifier running the driver
// concretely, and did not find any of them."
#ifndef SRC_BASELINES_DRIVER_VERIFIER_H_
#define SRC_BASELINES_DRIVER_VERIFIER_H_

#include <cstdint>
#include <vector>

#include "src/core/ddt.h"

namespace ddt {

struct StressConfig {
  int iterations = 20;
  uint64_t seed = 0xD21F;
  uint64_t max_instructions_per_run = 200000;
  // Random interrupt deliveries per iteration. Defaults to zero: like DDT,
  // the stress harness runs without the physical device, and with no device
  // no interrupt ever fires — which is precisely why classic stress testing
  // cannot reach interrupt-interleaving bugs (§5.1: "the interrupt might not
  // be triggered by the hardware at exactly the right moment"). Raise it to
  // emulate flaky hardware.
  int random_interrupts_per_run = 0;
  uint32_t interrupt_crossing_range = 100;
  // The real Driver Verifier's "low resources simulation": randomly fail
  // allocation calls during concrete runs. Off by default (the paper's
  // comparison ran plain Driver Verifier); even when on, random fault
  // injection only samples failure points, whereas DDT's annotation
  // alternatives enumerate them.
  bool simulate_low_resources = false;
  uint32_t allocation_failure_one_in = 4;  // P(fail) = 1/N per allocation
};

struct StressResult {
  std::vector<Bug> bugs;  // deduped across iterations
  int iterations = 0;
  int crashed_iterations = 0;
  uint64_t total_instructions = 0;
  double wall_ms = 0;
};

StressResult RunDriverVerifierStress(const DriverImage& image, const PciDescriptor& descriptor,
                                     const StressConfig& config = StressConfig());

}  // namespace ddt

#endif  // SRC_BASELINES_DRIVER_VERIFIER_H_
