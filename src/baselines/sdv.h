// SDV-style static analysis baseline (§3.4.2, §5.1).
//
// A path-enumerating abstract interpreter over the driver binary's CFG,
// checking API-usage rules the way SLAM/SDV checks its lock/IRQL automata:
//   - spinlock discipline: double acquire, release of an unheld lock,
//     acquire/release variant mismatch, lock still held at return,
//   - IRQL rules: pageable APIs (configuration) at raised IRQL, pool
//     allocation above DISPATCH_LEVEL.
//
// Deliberate (and documented) limitations that mirror the real tool's
// behavior in the paper's experiment:
//   - per-function analysis: no cross-function lock-order reasoning, so
//     AB/BA deadlocks across entry points are invisible;
//   - the lock automaton checks balance, not LIFO order, so out-of-order
//     releases pass;
//   - lock pointers that are not static constants (loaded from memory) are
//     ignored — the analyzer cannot prove which lock they denote;
//   - branch conditions are not evaluated: every syntactic path is explored,
//     including infeasible ones — the source of false positives;
//   - paths are enumerated exhaustively (up to a cap), which is exactly why
//     it is slower than DDT's directed dynamic exploration on branchy code.
#ifndef SRC_BASELINES_SDV_H_
#define SRC_BASELINES_SDV_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/vm/image.h"

namespace ddt {

struct SdvFinding {
  std::string rule;     // "release-unacquired", "double-acquire", ...
  uint32_t function = 0;
  uint32_t pc = 0;
  std::string message;
};

struct SdvConfig {
  size_t max_paths_per_function = 1 << 16;
  size_t max_path_steps = 1 << 20;
};

struct SdvResult {
  std::vector<SdvFinding> findings;  // deduped by (rule, pc)
  size_t functions_analyzed = 0;
  uint64_t paths_explored = 0;
  uint64_t abstract_steps = 0;
  uint64_t capped_functions = 0;  // functions whose enumeration hit the cap
  double wall_ms = 0;
};

// Analyzes the image. `roots` lists function start addresses (the paper
// notes SDV "requires special entry point annotations" — this is that list;
// pass AssembledDriver::functions).
SdvResult RunSdvAnalysis(const DriverImage& image, const std::vector<uint32_t>& roots,
                         const SdvConfig& config = SdvConfig());

}  // namespace ddt

#endif  // SRC_BASELINES_SDV_H_
