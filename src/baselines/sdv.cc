#include "src/baselines/sdv.h"

#include <array>
#include <chrono>
#include <map>
#include <optional>
#include <set>

#include "src/kernel/api.h"
#include "src/support/strings.h"
#include "src/vm/disasm.h"
#include "src/vm/layout.h"

namespace ddt {

namespace {

struct AbstractLock {
  bool held = false;
  bool dpr = false;
};

// Abstract machine state along one syntactic path.
struct AbstractState {
  // Registers with statically-known constant values (movi/la/mov only —
  // arithmetic results are top, which is what makes data-dependent guards
  // opaque to the analysis).
  std::array<std::optional<uint32_t>, kNumRegisters> regs;
  std::map<uint32_t, AbstractLock> locks;
  int irql = 0;
  uint32_t block = 0;           // current basic block leader
  std::set<uint32_t> visited;   // blocks visited on this path (acyclic walk)
};

class Analyzer {
 public:
  Analyzer(const DriverImage& image, uint32_t base, const SdvConfig& config)
      : image_(image), base_(base), config_(config) {
    cfg_ = BuildCfg(image.code.data(), image.code.size(), base);
  }

  SdvResult Run(const std::vector<uint32_t>& roots) {
    auto start = std::chrono::steady_clock::now();
    for (uint32_t root : roots) {
      AnalyzeFunction(root);
    }
    result_.functions_analyzed = roots.size();
    result_.wall_ms =
        std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - start)
            .count();
    return result_;
  }

 private:
  void Report(uint32_t function, uint32_t pc, const std::string& rule,
              const std::string& message) {
    if (!reported_.insert(StrFormat("%s@%x", rule.c_str(), pc)).second) {
      return;
    }
    result_.findings.push_back(SdvFinding{rule, function, pc, message});
  }

  std::optional<Instruction> DecodeAt(uint32_t pc) const {
    if (pc < base_ || pc + kInstructionSize > base_ + image_.code.size()) {
      return std::nullopt;
    }
    return DecodeInstruction(image_.code.data() + (pc - base_));
  }

  // Applies a kernel call's rule automaton. pc is the call site.
  void ApplyKCall(uint32_t function, uint32_t pc, uint32_t import_index, AbstractState* state) {
    if (import_index >= image_.imports.size()) {
      return;
    }
    const std::string& name = image_.imports[import_index];
    std::optional<uint32_t> arg0 = state->regs[0];

    auto lock_of = [&]() -> AbstractLock* {
      // Unknown lock pointers are skipped: the analyzer cannot tell which
      // lock they denote without real data flow (documented limitation).
      if (!arg0.has_value()) {
        return nullptr;
      }
      return &state->locks[*arg0];
    };

    if (name == "MosAcquireSpinLock" || name == "MosDprAcquireSpinLock") {
      bool dpr = name[3] == 'D';
      AbstractLock* lock = lock_of();
      if (lock != nullptr) {
        if (lock->held) {
          Report(function, pc, "double-acquire",
                 StrFormat("spinlock 0x%x acquired twice on a path (deadlock)", *arg0));
        }
        lock->held = true;
        lock->dpr = dpr;
      }
      if (!dpr) {
        state->irql = 2;
      } else if (state->irql < 2) {
        Report(function, pc, "dpr-at-passive",
               "MosDprAcquireSpinLock requires IRQL >= DISPATCH");
      }
      return;
    }
    if (name == "MosReleaseSpinLock" || name == "MosDprReleaseSpinLock") {
      bool dpr = name[3] == 'D';
      AbstractLock* lock = lock_of();
      if (lock != nullptr) {
        if (!lock->held) {
          Report(function, pc, "release-unacquired",
                 StrFormat("spinlock 0x%x released while not held", *arg0));
        } else if (lock->dpr != dpr) {
          Report(function, pc, "wrong-release-variant",
                 StrFormat("spinlock 0x%x acquired with the %s variant but released with the "
                           "%s variant",
                           *arg0, lock->dpr ? "Dpr" : "plain", dpr ? "Dpr" : "plain"));
        }
        lock->held = false;
      }
      if (!dpr) {
        state->irql = 0;  // coarse: restores to PASSIVE
      }
      return;
    }
    if (name == "MosRaiseIrql") {
      state->irql = arg0.has_value() ? static_cast<int>(*arg0) : 5;
      return;
    }
    if (name == "MosLowerIrql") {
      state->irql = arg0.has_value() ? static_cast<int>(*arg0) : 0;
      return;
    }
    if (name == "MosOpenConfiguration" || name == "MosReadConfiguration" ||
        name == "MosCloseConfiguration") {
      if (state->irql > 0) {
        Report(function, pc, "pageable-at-raised-irql",
               StrFormat("%s touches pageable data but the IRQL is %d", name.c_str(),
                         state->irql));
      }
      return;
    }
    if (name == "MosAllocatePool" || name == "MosAllocatePoolWithTag" ||
        name == "MosAllocateMemoryWithTag") {
      if (state->irql > 2) {
        Report(function, pc, "alloc-above-dispatch",
               StrFormat("%s requires IRQL <= DISPATCH but the IRQL is %d", name.c_str(),
                         state->irql));
      }
      return;
    }
  }

  // Walks one path from `state` to completion, forking at branches.
  // Iterative worklist to avoid deep recursion.
  void AnalyzeFunction(uint32_t entry) {
    std::vector<AbstractState> worklist;
    AbstractState initial;
    initial.block = entry;
    worklist.push_back(initial);
    uint64_t paths = 0;

    while (!worklist.empty()) {
      if (paths >= config_.max_paths_per_function) {
        ++result_.capped_functions;
        break;
      }
      AbstractState state = std::move(worklist.back());
      worklist.pop_back();

      bool path_ended = false;
      while (!path_ended) {
        if (state.visited.count(state.block) != 0) {
          // Loop edge: stop this path (acyclic enumeration).
          path_ended = true;
          break;
        }
        state.visited.insert(state.block);
        auto block_it = cfg_.blocks.find(state.block);
        if (block_it == cfg_.blocks.end()) {
          path_ended = true;
          break;
        }
        const BasicBlock& block = block_it->second;

        // Interpret the block's instructions abstractly.
        for (uint32_t pc = block.begin; pc < block.end; pc += kInstructionSize) {
          std::optional<Instruction> insn = DecodeAt(pc);
          if (!insn.has_value()) {
            break;
          }
          ++result_.abstract_steps;
          if (result_.abstract_steps >= config_.max_path_steps * 64) {
            return;  // global safety valve
          }
          switch (insn->opcode) {
            case Opcode::kMovI:
              state.regs[insn->rd] = insn->imm;
              break;
            case Opcode::kMov:
              state.regs[insn->rd] = state.regs[insn->ra];
              break;
            case Opcode::kKCall:
              ApplyKCall(entry, pc, insn->imm, &state);
              break;
            case Opcode::kCall:
              // Callees are analyzed separately (no interprocedural lock
              // state). A call clobbers the argument/scratch registers.
              for (int r = 0; r <= 3; ++r) {
                state.regs[static_cast<size_t>(r)] = std::nullopt;
              }
              break;
            case Opcode::kCallR:
              // Unresolvable indirect call: assume no lock effect.
              for (int r = 0; r <= 3; ++r) {
                state.regs[static_cast<size_t>(r)] = std::nullopt;
              }
              break;
            case Opcode::kNop:
            case Opcode::kPush:
            case Opcode::kPop:
            case Opcode::kSt8:
            case Opcode::kSt16:
            case Opcode::kSt32:
              break;
            default:
              // Everything else (ALU, loads) produces an unknown value.
              if (insn->rd < kNumRegisters && insn->opcode != Opcode::kBz &&
                  insn->opcode != Opcode::kBnz && insn->opcode != Opcode::kBr &&
                  insn->opcode != Opcode::kRet && insn->opcode != Opcode::kJr &&
                  insn->opcode != Opcode::kHalt) {
                state.regs[insn->rd] = std::nullopt;
              }
              break;
          }
        }

        if (block.ends_in_return || block.ends_in_halt) {
          // End of path: the lock automaton's accept check.
          for (const auto& [addr, lock] : state.locks) {
            if (lock.held) {
              Report(entry, block.end - kInstructionSize, "lock-held-at-return",
                     StrFormat("spinlock 0x%x still held when the function returns", addr));
            }
          }
          ++paths;
          ++result_.paths_explored;
          path_ended = true;
          break;
        }
        if (block.has_indirect_successor) {
          // jr: unresolvable; end the path.
          ++paths;
          ++result_.paths_explored;
          path_ended = true;
          break;
        }
        if (block.successors.empty()) {
          ++paths;
          ++result_.paths_explored;
          path_ended = true;
          break;
        }
        // Branch conditions are NOT evaluated: explore every successor. The
        // first successor continues in-place; the rest fork.
        // For call blocks the successors are (target, continuation) — only
        // the continuation stays within this function.
        uint32_t last_pc = block.end - kInstructionSize;
        std::optional<Instruction> term = DecodeAt(last_pc);
        if (term.has_value() && term->opcode == Opcode::kCall) {
          state.block = block.successors.back();  // continuation
          continue;
        }
        for (size_t s = 1; s < block.successors.size(); ++s) {
          AbstractState forked = state;
          forked.block = block.successors[s];
          worklist.push_back(std::move(forked));
        }
        state.block = block.successors[0];
      }
    }
  }

  const DriverImage& image_;
  uint32_t base_;
  SdvConfig config_;
  Cfg cfg_;
  SdvResult result_;
  std::set<std::string> reported_;
};

}  // namespace

SdvResult RunSdvAnalysis(const DriverImage& image, const std::vector<uint32_t>& roots,
                         const SdvConfig& config) {
  Analyzer analyzer(image, kDriverImageBase, config);
  return analyzer.Run(roots);
}

}  // namespace ddt
