#include "src/fuzz/mutator.h"

#include <algorithm>

#include "src/kernel/api.h"

namespace ddt {
namespace fuzz {

namespace {

uint64_t WidthMask(uint8_t width) {
  return width >= 64 ? ~0ull : (1ull << width) - 1;
}

// Protocol constants a network driver's control plane actually compares
// against: the NDIS-style OIDs the exerciser queries/sets plus classic
// boundary integers. Mutating an OID selector field onto kOidGenMulticastList
// is what steers a SetInfo exec into the multicast path.
constexpr uint64_t kDictionary[] = {
    0,          1,          2,          4,
    kOidGenMaxFrameSize,    kOidGenLinkSpeed,      kOidGenCurrentAddress,
    kOidGenMulticastList,   kOid802_3PermanentAddress,
    0x7F,       0x80,       0xFF,       0x100,
    0x7FFF,     0x8000,     0xFFFF,
    0x7FFFFFFF, 0x80000000, 0xFFFFFFFF,
};

constexpr uint64_t kRegistryValues[] = {0, 1, 2, 4, 8, 16, 64, 256, 0xFFFFFFFF};
constexpr uint64_t kLengthValues[] = {0, 1, 3, 4, 8, 63, 64, 128, 1514, 4096};
constexpr uint64_t kHardwareValues[] = {0, 1, 0x80, 0x8000, 0x80000000, 0xFFFFFFFF};

bool LooksLikeLength(const std::string& label) {
  return label.find("len") != std::string::npos || label.find("size") != std::string::npos ||
         label.find("count") != std::string::npos;
}

// One stacked mutation. Returns the kind actually applied (field mutators
// retarget to the interrupt plane when the input has no fields).
MutatorKind ApplyOne(FuzzInput& input, SplitMix64& rng) {
  MutatorKind kind = static_cast<MutatorKind>(rng.NextBelow(kNumMutatorKinds));
  bool field_kind = kind == MutatorKind::kHavoc || kind == MutatorKind::kArith ||
                    kind == MutatorKind::kDictionary || kind == MutatorKind::kStructured;
  if (field_kind && input.fields.empty()) {
    kind = MutatorKind::kInterrupt;
  }

  switch (kind) {
    case MutatorKind::kHavoc: {
      FuzzField& field = input.fields[rng.NextBelow(input.fields.size())];
      switch (rng.NextBelow(3)) {
        case 0:  // flip one bit
          field.value ^= 1ull << rng.NextBelow(std::max<uint64_t>(field.width, 1));
          break;
        case 1: {  // overwrite one byte
          uint64_t byte = rng.NextBelow(std::max<uint64_t>(field.width / 8, 1));
          field.value = (field.value & ~(0xFFull << (byte * 8))) |
                        ((rng.Next() & 0xFF) << (byte * 8));
          break;
        }
        default:  // fresh random value
          field.value = rng.Next();
          break;
      }
      field.value &= WidthMask(field.width);
      break;
    }
    case MutatorKind::kArith: {
      FuzzField& field = input.fields[rng.NextBelow(input.fields.size())];
      uint64_t delta = 1 + rng.NextBelow(16);
      field.value = (rng.NextBelow(2) == 0 ? field.value + delta : field.value - delta) &
                    WidthMask(field.width);
      break;
    }
    case MutatorKind::kDictionary: {
      FuzzField& field = input.fields[rng.NextBelow(input.fields.size())];
      field.value = kDictionary[rng.NextBelow(std::size(kDictionary))] & WidthMask(field.width);
      break;
    }
    case MutatorKind::kStructured: {
      FuzzField& field = input.fields[rng.NextBelow(input.fields.size())];
      switch (field.origin.source) {
        case VarOrigin::Source::kRegistry:
          field.value = kRegistryValues[rng.NextBelow(std::size(kRegistryValues))];
          break;
        case VarOrigin::Source::kPacketData:
          field.value = (field.value ^ (rng.Next() & 0xFF));
          break;
        case VarOrigin::Source::kEntryArg:
          field.value = LooksLikeLength(field.origin.label) || LooksLikeLength(field.var_name)
                            ? kLengthValues[rng.NextBelow(std::size(kLengthValues))]
                            : kDictionary[rng.NextBelow(std::size(kDictionary))];
          break;
        case VarOrigin::Source::kHardwareRead:
          field.value = kHardwareValues[rng.NextBelow(std::size(kHardwareValues))];
          break;
        default:
          field.value = kDictionary[rng.NextBelow(std::size(kDictionary))];
          break;
      }
      field.value &= WidthMask(field.width);
      break;
    }
    case MutatorKind::kInterrupt: {
      auto& schedule = input.interrupt_schedule;
      uint64_t op = rng.NextBelow(3);
      if (op == 0 || schedule.empty()) {  // insert a delivery
        schedule.push_back(static_cast<uint32_t>(rng.NextBelow(32)));
        std::sort(schedule.begin(), schedule.end());
      } else if (op == 1) {  // remove one
        schedule.erase(schedule.begin() +
                       static_cast<ptrdiff_t>(rng.NextBelow(schedule.size())));
      } else {  // shift one
        uint32_t& crossing = schedule[rng.NextBelow(schedule.size())];
        crossing = static_cast<uint32_t>((crossing + 1 + rng.NextBelow(8)) % 32);
        std::sort(schedule.begin(), schedule.end());
      }
      break;
    }
    case MutatorKind::kFaultPoint: {
      FaultPlan& plan = input.fault_plan;
      uint64_t op = rng.NextBelow(3);
      if (op == 0) {  // add a kernel-API point
        FaultPoint point{static_cast<FaultClass>(rng.NextBelow(kNumFaultClasses)),
                         static_cast<uint32_t>(rng.NextBelow(4))};
        if (std::find(plan.points.begin(), plan.points.end(), point) == plan.points.end()) {
          plan.points.push_back(point);
        }
      } else if (op == 1) {  // add a hardware-plane point
        HwFaultPoint point{static_cast<HwFaultKind>(rng.NextBelow(kNumHwFaultKinds)),
                           static_cast<uint32_t>(rng.NextBelow(4))};
        plan.hw_points.push_back(point);
      } else {  // drop one point
        if (!plan.points.empty()) {
          plan.points.erase(plan.points.begin() +
                            static_cast<ptrdiff_t>(rng.NextBelow(plan.points.size())));
        } else if (!plan.hw_points.empty()) {
          plan.hw_points.erase(plan.hw_points.begin() +
                               static_cast<ptrdiff_t>(rng.NextBelow(plan.hw_points.size())));
        }
      }
      if (!plan.empty() && plan.label.empty()) {
        plan.label = "fuzz";
      }
      if (plan.empty()) {
        plan.label.clear();
      }
      break;
    }
  }
  return kind;
}

}  // namespace

const char* MutatorKindName(MutatorKind kind) {
  switch (kind) {
    case MutatorKind::kHavoc: return "havoc";
    case MutatorKind::kArith: return "arith";
    case MutatorKind::kDictionary: return "dictionary";
    case MutatorKind::kStructured: return "structured";
    case MutatorKind::kInterrupt: return "interrupt";
    case MutatorKind::kFaultPoint: return "fault-point";
  }
  return "?";
}

FuzzInput MutateInput(const FuzzInput& base, SplitMix64& rng,
                      std::array<uint64_t, kNumMutatorKinds>* counts) {
  FuzzInput mutant = base;
  uint64_t stack = 1 + rng.NextBelow(4);
  for (uint64_t i = 0; i < stack; ++i) {
    MutatorKind applied = ApplyOne(mutant, rng);
    if (counts != nullptr) {
      ++(*counts)[static_cast<size_t>(applied)];
    }
  }
  return mutant;
}

}  // namespace fuzz
}  // namespace ddt
