// Fuzz inputs: the concrete, replayable unit the concolic fuzz loop mutates.
//
// A FuzzInput is a serialized concrete model of one driver execution — the
// solved symbolic variables keyed by origin (registry values, OID query/set
// payloads, packet contents, entry arguments, hardware reads), the interrupt
// timing schedule, the annotation-alternative schedule, and a complete
// kernel+hardware fault schedule. It is exactly the information guided replay
// (§3.5) consumes, packaged as a standalone text blob so a corpus on disk is
// process- and machine-independent, like a bug report.
//
// Seeds come from the symbolic engine (EngineConfig::max_path_seeds derives a
// PathSeed per explored path, solver-backed); mutants come from
// src/fuzz/mutator.h; both replay through src/fuzz/executor.h down the pure
// concrete fast path.
#ifndef SRC_FUZZ_INPUT_H_
#define SRC_FUZZ_INPUT_H_

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "src/engine/engine.h"
#include "src/support/status.h"

namespace ddt {
namespace fuzz {

// One concrete variable assignment, keyed by the stable symbolic origin
// (OriginKeyString). Mirrors SolvedInput minus the proximate-cause analysis
// bit, which is meaningless for a mutated value.
struct FuzzField {
  VarOrigin origin;
  uint8_t width = 32;
  uint64_t value = 0;
  std::string var_name;
};

struct FuzzInput {
  // Provenance: "seed#3" for solver-derived seeds, "fuzz b2#17" for mutants.
  std::string label;
  std::vector<FuzzField> fields;
  std::vector<uint32_t> interrupt_schedule;  // boundary-crossing indices
  std::vector<std::pair<uint32_t, std::string>> alternatives;  // (kcall seq, label)
  FaultPlan fault_plan;  // kernel-API and hardware-plane injection points
};

// Converts a solver-derived path model into a replayable fuzz input.
FuzzInput FromPathSeed(const PathSeed& seed, const FaultPlan& plan, const std::string& label);

// The guided-replay input map (OriginKeyString -> value) this input induces.
std::map<std::string, uint64_t> GuidedInputs(const FuzzInput& input);

// The same assignments as SolvedInputs — what gets patched into a bug found
// by a concrete fuzz execution so the saved evidence file replays (guided
// runs push no constraints, so the engine's own SolveInputs returns nothing).
std::vector<SolvedInput> ToSolvedInputs(const FuzzInput& input);

// Line-oriented text round-trip in the bug_io style. Serialize always ends
// with "end\n"; Parse rejects truncated or malformed blobs.
std::string SerializeFuzzInput(const FuzzInput& input);
Result<FuzzInput> ParseFuzzInput(const std::string& text);

}  // namespace fuzz
}  // namespace ddt

#endif  // SRC_FUZZ_INPUT_H_
