// Hybrid concolic fuzzing loop (the src/fuzz subsystem's front door).
//
// DDT's symbolic campaign is exhaustive but solver-bound; its guided replay
// is solver-free but only retraces recorded paths. This loop welds the two
// into a concolic cycle:
//
//   1. Seed derivation — a symbolic pass with EngineConfig::max_path_seeds
//      asks the solver for a concrete model of each explored path and
//      packages it as a replayable FuzzInput (registry values, OID payloads,
//      packet bytes, entry arguments, interrupt timing, fault schedules).
//   2. Concrete execution — mutants replay down the pure fast path (guided
//      mode, block cache, tier-2 superblocks; the solver is never invoked),
//      with every checker live, so a crashing mutant yields a full evidence
//      file that replays like any campaign bug.
//   3. Coverage-novelty corpus — an executed input is kept iff it covers a
//      basic block the corpus has not (CoverageBitmap novelty against the
//      block-leader map), persisted CRC-sealed in the journal style.
//   4. Promotion — the most novel corpus entries return to the symbolic
//      engine as concretization hints (EngineConfig::concretization_hints),
//      steering a follow-up symbolic pass toward territory the exhaustive
//      campaign dropped at its fork caps.
//
// Determinism contract: for a fixed --fuzz-seed the mutation streams are
// SplitMix64 functions of (seed, batch, exec); execution results merge in
// exec-index order; so the corpus, its fingerprint, the fuzz bug set, and the
// deterministic report are byte-identical at any thread count and any worker
// count — the same contract the campaign supervisor gives, extended to the
// fuzz plane. A resumed run continues the persisted corpus from its batch
// cursor (completed batches never re-execute; their counters and bug rows
// belong to the run that did the work). With fuzzing off the campaign report
// is untouched, byte for byte.
#ifndef SRC_FUZZ_FUZZ_H_
#define SRC_FUZZ_FUZZ_H_

#include <array>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "src/core/ddt.h"
#include "src/fuzz/corpus.h"
#include "src/fuzz/input.h"
#include "src/fuzz/mutator.h"
#include "src/vm/coverage_map.h"

namespace ddt {
namespace fuzz {

struct FuzzConfig {
  // Root of every mutation stream; the corpus file is bound to it.
  uint64_t seed = 0xF0221;
  // Batch 0 replays the solver-derived seeds; later batches mutate corpus
  // entries. The corpus is checkpointed after every batch.
  uint32_t batches = 4;
  uint32_t execs_per_batch = 32;
  // Cap on solver models derived by the seed pass (EngineConfig::max_path_seeds).
  uint32_t max_seeds = 16;
  // Corpus admission stops at this many entries.
  size_t max_corpus = 256;
  // On-disk corpus (empty = in-memory only). With resume, completed batches
  // load from it and only missing batches execute.
  std::string corpus_path;
  bool resume = false;
  // Promotion channel: feed the most coverage-novel corpus entries back to
  // symbolic exploration as concretization hints.
  bool promote = true;
  uint32_t max_promotions = 2;
  // Fork-isolated shard workers for the concrete executions (fleet-style
  // kFuzzExec frames; a dead worker's execs are salvaged inline). 0 = run
  // in-process on campaign.threads.
  uint32_t workers = 0;
};

struct FuzzCampaignConfig {
  FaultCampaignConfig campaign;
  FuzzConfig fuzz;
  // Optional phase-1 override (the CLI uses it to run the campaign through
  // the process fleet). Null = RunFaultCampaign in-process.
  std::function<Result<FaultCampaignResult>()> run_campaign;
};

struct FuzzCampaignResult {
  FaultCampaignResult campaign;
  // The fuzz knobs this result was produced with (the report header prints
  // the seed/batch shape; worker and thread counts deliberately excluded).
  FuzzConfig fuzz_config;
  // Bugs only the fuzz plane found (deduplicated against the campaign's and
  // each other by the campaign's identity key). Round-tripped through bug_io,
  // so they are process-independent — no keepalive needed.
  std::vector<Bug> fuzz_bugs;
  // Which fuzz input exposed each bug, parallel to fuzz_bugs ("seed#3",
  // "fuzz b2#17", "promotion#0").
  std::vector<std::string> fuzz_bug_origins;

  uint64_t seeds_derived = 0;
  uint64_t execs = 0;
  uint64_t quarantined_execs = 0;
  uint64_t corpus_entries = 0;
  uint64_t corpus_blocks = 0;       // cumulative corpus coverage popcount
  uint64_t corpus_fingerprint = 0;  // cumulative bitmap FNV fingerprint
  // Blocks the corpus covers that the seed pass's symbolic exploration did
  // not reach — what mutation alone bought.
  uint64_t novel_blocks = 0;
  std::array<uint64_t, kNumMutatorKinds> mutations{};

  uint64_t promotions = 0;
  // Blocks the promoted symbolic passes covered beyond seed-pass coverage
  // plus the whole corpus (worker/thread independent by construction).
  uint64_t promotion_novel_blocks = 0;
  // Union of the promoted passes' coverage (for tests comparing against an
  // exhaustive campaign's own coverage).
  CoverageBitmap promotion_coverage;

  // Volatile (never in the deterministic report).
  double fuzz_wall_ms = 0;
  double execs_per_sec = 0;
  uint64_t fuzz_workers_spawned = 0;
  uint64_t fuzz_workers_lost = 0;
  uint64_t fuzz_execs_salvaged = 0;
  uint64_t corpus_load_errors = 0;

  // Campaign report plus a "--- fuzz ---" section; same volatility split as
  // FaultCampaignResult::FormatReport.
  std::string FormatReport(const std::string& driver_name, bool include_volatile = true) const;
};

// The corpus-file binding: campaign fingerprint (config + driver image) mixed
// with the fuzz seed.
uint64_t FuzzFingerprint(const FuzzCampaignConfig& config, const DriverImage& image);

// Runs campaign + fuzz loop + promotion. Deterministic in (config, driver).
Result<FuzzCampaignResult> RunFuzzCampaign(const FuzzCampaignConfig& config,
                                           const DriverImage& image,
                                           const PciDescriptor& descriptor);

}  // namespace fuzz
}  // namespace ddt

#endif  // SRC_FUZZ_FUZZ_H_
