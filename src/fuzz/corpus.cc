#include "src/fuzz/corpus.h"

#include <cstdio>
#include <cstdlib>

#include "src/support/crc32.h"
#include "src/support/strings.h"

namespace ddt {
namespace fuzz {

namespace {

constexpr char kHeaderTag[] = "ddt-fuzz-corpus v1";

// Entry body: one meta line, then the serialized input (which ends in
// "end\n" and therefore delimits itself).
std::string EncodeEntryBody(const CorpusEntry& entry) {
  std::string body = StrFormat("meta %zu %u %s\n", entry.novel_blocks, entry.batch,
                               entry.coverage.ToHex().c_str());
  body += SerializeFuzzInput(entry.input);
  return body;
}

bool DecodeEntryBody(const std::string& body, CorpusEntry* entry) {
  size_t eol = body.find('\n');
  if (eol == std::string::npos) {
    return false;
  }
  std::string meta = body.substr(0, eol);
  if (meta.rfind("meta ", 0) != 0) {
    return false;
  }
  unsigned long long novel;
  unsigned batch;
  char cov_hex[16 * 1024];
  if (std::sscanf(meta.c_str(), "meta %llu %u %16383s", &novel, &batch, cov_hex) != 3) {
    // A no-coverage entry serializes an empty hex string; retry without it.
    if (std::sscanf(meta.c_str(), "meta %llu %u", &novel, &batch) != 2) {
      return false;
    }
    cov_hex[0] = '\0';
  }
  CoverageBitmap coverage;
  if (!CoverageBitmap::FromHex(cov_hex, &coverage)) {
    return false;
  }
  Result<FuzzInput> input = ParseFuzzInput(body.substr(eol + 1));
  if (!input.ok()) {
    return false;
  }
  entry->input = std::move(input.value());
  entry->coverage = std::move(coverage);
  entry->coverage_fingerprint = entry->coverage.Fingerprint();
  entry->novel_blocks = static_cast<size_t>(novel);
  entry->batch = batch;
  return true;
}

}  // namespace

int FuzzCorpus::Offer(const FuzzInput& input, const CoverageBitmap& coverage, uint32_t batch,
                      size_t max_entries) {
  if (entries_.size() >= max_entries) {
    return -1;
  }
  size_t novel = cumulative_.NewlyCovered(coverage);
  if (novel == 0) {
    return -1;
  }
  cumulative_.OrWith(coverage);
  CorpusEntry entry;
  entry.input = input;
  entry.coverage = coverage;
  entry.coverage_fingerprint = coverage.Fingerprint();
  entry.novel_blocks = novel;
  entry.batch = batch;
  entries_.push_back(std::move(entry));
  return static_cast<int>(entries_.size() - 1);
}

Status FuzzCorpus::SaveToFile(const std::string& path, uint64_t fingerprint) const {
  std::string out = StrFormat("%s %016llx %u\n", kHeaderTag,
                              static_cast<unsigned long long>(fingerprint), batches_done_);
  for (const CorpusEntry& entry : entries_) {
    std::string body = EncodeEntryBody(entry);
    out += StrFormat("entry %08x %zu\n", Crc32(body), body.size());
    out += body;
  }
  std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    return Status::Error("fuzz corpus: cannot open for writing: " + tmp);
  }
  size_t written = std::fwrite(out.data(), 1, out.size(), f);
  bool flushed = std::fflush(f) == 0;
  std::fclose(f);
  if (written != out.size() || !flushed) {
    std::remove(tmp.c_str());
    return Status::Error("fuzz corpus: short write: " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::Error("fuzz corpus: rename failed: " + path);
  }
  return Status::Ok();
}

Status FuzzCorpus::LoadFromFile(const std::string& path, uint64_t fingerprint,
                                size_t* load_errors) {
  if (load_errors != nullptr) {
    *load_errors = 0;
  }
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::Error("fuzz corpus: cannot open: " + path);
  }
  std::fseek(f, 0, SEEK_END);
  long size = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  std::string text(static_cast<size_t>(size > 0 ? size : 0), '\0');
  size_t read = std::fread(text.data(), 1, text.size(), f);
  std::fclose(f);
  if (read != text.size()) {
    return Status::Error("fuzz corpus: short read: " + path);
  }

  size_t pos = text.find('\n');
  if (pos == std::string::npos) {
    return Status::Error("fuzz corpus: missing header: " + path);
  }
  std::string header = text.substr(0, pos);
  ++pos;
  unsigned long long file_fp;
  unsigned batches;
  char tag[64];
  char version[64];
  if (std::sscanf(header.c_str(), "%63s %63s %llx %u", tag, version, &file_fp, &batches) != 4 ||
      StrFormat("%s %s", tag, version) != kHeaderTag) {
    return Status::Error("fuzz corpus: bad header: " + path);
  }
  if (file_fp != fingerprint) {
    return Status::Error("fuzz corpus: fingerprint mismatch (different driver or fuzz seed): " +
                         path);
  }

  entries_.clear();
  cumulative_ = CoverageBitmap();
  batches_done_ = batches;

  // Entries up to the first damaged record; the tail after that is dropped.
  while (pos < text.size()) {
    size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) {
      if (load_errors != nullptr) {
        ++*load_errors;
      }
      break;
    }
    std::string line = text.substr(pos, eol - pos);
    unsigned crc;
    unsigned long long body_size;
    if (std::sscanf(line.c_str(), "entry %x %llu", &crc, &body_size) != 2 ||
        eol + 1 + body_size > text.size()) {
      if (load_errors != nullptr) {
        ++*load_errors;
      }
      break;
    }
    std::string body = text.substr(eol + 1, static_cast<size_t>(body_size));
    pos = eol + 1 + static_cast<size_t>(body_size);
    CorpusEntry entry;
    if (Crc32(body) != crc || !DecodeEntryBody(body, &entry)) {
      if (load_errors != nullptr) {
        ++*load_errors;
      }
      break;
    }
    cumulative_.OrWith(entry.coverage);
    entries_.push_back(std::move(entry));
  }
  return Status::Ok();
}

}  // namespace fuzz
}  // namespace ddt
