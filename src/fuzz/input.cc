#include "src/fuzz/input.h"

#include <cstdio>
#include <cstdlib>

#include "src/support/strings.h"

namespace ddt {
namespace fuzz {

namespace {

// Same minimal escaping as bug_io: the only characters that would break the
// line-oriented format.
std::string Escape(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '\n') {
      out += "\\n";
    } else if (c == '\\') {
      out += "\\\\";
    } else {
      out.push_back(c);
    }
  }
  return out;
}

std::string Unescape(const std::string& s) {
  std::string out;
  for (size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '\\' && i + 1 < s.size()) {
      ++i;
      out.push_back(s[i] == 'n' ? '\n' : s[i]);
    } else {
      out.push_back(s[i]);
    }
  }
  return out;
}

}  // namespace

FuzzInput FromPathSeed(const PathSeed& seed, const FaultPlan& plan, const std::string& label) {
  FuzzInput input;
  input.label = label;
  input.fields.reserve(seed.inputs.size());
  for (const SolvedInput& solved : seed.inputs) {
    FuzzField field;
    field.origin = solved.origin;
    field.width = solved.width;
    field.value = solved.value;
    field.var_name = solved.var_name;
    input.fields.push_back(std::move(field));
  }
  input.interrupt_schedule = seed.interrupt_schedule;
  input.alternatives = seed.alternatives;
  input.fault_plan = plan;
  return input;
}

std::map<std::string, uint64_t> GuidedInputs(const FuzzInput& input) {
  std::map<std::string, uint64_t> guided;
  for (const FuzzField& field : input.fields) {
    guided[OriginKeyString(field.origin)] = field.value;
  }
  return guided;
}

std::vector<SolvedInput> ToSolvedInputs(const FuzzInput& input) {
  std::vector<SolvedInput> solved;
  solved.reserve(input.fields.size());
  for (const FuzzField& field : input.fields) {
    SolvedInput s;
    s.var_name = field.var_name;
    s.origin = field.origin;
    s.width = field.width;
    s.value = field.value;
    s.proximate = false;
    solved.push_back(std::move(s));
  }
  return solved;
}

std::string SerializeFuzzInput(const FuzzInput& input) {
  std::string out = "ddt-fuzz-input v1\n";
  out += "label " + Escape(input.label) + "\n";
  for (const FuzzField& field : input.fields) {
    out += StrFormat("field %d %llu %llu %u %llu %s %s\n",
                     static_cast<int>(field.origin.source),
                     static_cast<unsigned long long>(field.origin.aux),
                     static_cast<unsigned long long>(field.origin.seq), field.width,
                     static_cast<unsigned long long>(field.value), Escape(field.var_name).c_str(),
                     Escape(field.origin.label).c_str());
  }
  for (uint32_t crossing : input.interrupt_schedule) {
    out += StrFormat("interrupt %u\n", crossing);
  }
  for (const auto& [seq, label] : input.alternatives) {
    out += StrFormat("alternative %u %s\n", seq, Escape(label).c_str());
  }
  if (!input.fault_plan.label.empty()) {
    out += "fault-label " + Escape(input.fault_plan.label) + "\n";
  }
  for (const FaultPoint& point : input.fault_plan.points) {
    out += StrFormat("fault-point %d %u\n", static_cast<int>(point.cls), point.occurrence);
  }
  for (const HwFaultPoint& point : input.fault_plan.hw_points) {
    out += StrFormat("hw-fault-point %d %u\n", static_cast<int>(point.kind), point.index);
  }
  out += "end\n";
  return out;
}

Result<FuzzInput> ParseFuzzInput(const std::string& text) {
  FuzzInput input;
  bool saw_header = false;
  bool saw_end = false;
  size_t pos = 0;

  while (pos <= text.size()) {
    size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) {
      eol = text.size();
    }
    std::string line = text.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.empty() && pos > text.size()) {
      break;
    }
    if (!saw_header) {
      if (line != "ddt-fuzz-input v1") {
        return Status::Error("fuzz input: bad header");
      }
      saw_header = true;
      continue;
    }
    if (saw_end || line.empty()) {
      continue;
    }
    if (line == "end") {
      saw_end = true;
      continue;
    }
    size_t space = line.find(' ');
    std::string key = line.substr(0, space);
    std::string value = space == std::string::npos ? "" : line.substr(space + 1);
    if (key == "label") {
      input.label = Unescape(value);
    } else if (key == "field") {
      int source;
      unsigned long long aux;
      unsigned long long seq;
      unsigned width;
      unsigned long long val;
      int consumed = 0;
      if (std::sscanf(value.c_str(), "%d %llu %llu %u %llu %n", &source, &aux, &seq, &width, &val,
                      &consumed) != 5) {
        return Status::Error("fuzz input: bad field line: " + line);
      }
      FuzzField field;
      field.origin.source = static_cast<VarOrigin::Source>(source);
      field.origin.aux = aux;
      field.origin.seq = seq;
      field.width = static_cast<uint8_t>(width);
      field.value = val;
      std::string rest = value.substr(static_cast<size_t>(consumed));
      size_t sep = rest.find(' ');
      field.var_name = Unescape(rest.substr(0, sep));
      field.origin.label = sep == std::string::npos ? "" : Unescape(rest.substr(sep + 1));
      input.fields.push_back(std::move(field));
    } else if (key == "interrupt") {
      input.interrupt_schedule.push_back(
          static_cast<uint32_t>(std::strtoul(value.c_str(), nullptr, 10)));
    } else if (key == "alternative") {
      size_t sep = value.find(' ');
      if (sep == std::string::npos) {
        return Status::Error("fuzz input: bad alternative line");
      }
      input.alternatives.emplace_back(
          static_cast<uint32_t>(std::strtoul(value.substr(0, sep).c_str(), nullptr, 10)),
          Unescape(value.substr(sep + 1)));
    } else if (key == "fault-label") {
      input.fault_plan.label = Unescape(value);
    } else if (key == "fault-point") {
      int cls;
      unsigned occurrence;
      if (std::sscanf(value.c_str(), "%d %u", &cls, &occurrence) != 2 || cls < 0 ||
          cls >= static_cast<int>(kNumFaultClasses)) {
        return Status::Error("fuzz input: bad fault-point line");
      }
      input.fault_plan.points.push_back(FaultPoint{static_cast<FaultClass>(cls), occurrence});
    } else if (key == "hw-fault-point") {
      int kind;
      unsigned index;
      if (std::sscanf(value.c_str(), "%d %u", &kind, &index) != 2 || kind < 0 ||
          kind >= static_cast<int>(kNumHwFaultKinds)) {
        return Status::Error("fuzz input: bad hw-fault-point line");
      }
      input.fault_plan.hw_points.push_back(HwFaultPoint{static_cast<HwFaultKind>(kind), index});
    } else {
      return Status::Error("fuzz input: unknown key: " + key);
    }
  }
  if (!saw_header || !saw_end) {
    return Status::Error("fuzz input: truncated");
  }
  return input;
}

}  // namespace fuzz
}  // namespace ddt
