// Concrete fuzz executor: replays one FuzzInput down the pure fast path.
//
// Each execution is a fresh Ddt instance in guided mode — every symbolic
// value resolves immediately from the input's field map, no forking, no
// solver — with the block cache and (when the campaign enables them) tier-2
// superblocks carrying the concrete path, so throughput is execs/sec, not
// paths/hour. All dynamic checkers stay live, including the Checkbochs-style
// DMA checker (always on here: a fuzz run exists to find real bugs, and its
// reports cannot perturb a baseline the way they would in a campaign pass),
// so a crashing mutant produces a full evidence file that replays.
//
// Executions are crash-isolated the way campaign passes are: a CHECK failure
// or thrown exception quarantines the one exec, never the loop.
#ifndef SRC_FUZZ_EXECUTOR_H_
#define SRC_FUZZ_EXECUTOR_H_

#include <cstdint>
#include <string>

#include "src/core/ddt.h"
#include "src/fuzz/input.h"
#include "src/vm/coverage_map.h"

namespace ddt {
namespace fuzz {

struct FuzzExecResult {
  bool ok = false;
  std::string failure;      // quarantine reason when !ok
  CoverageBitmap coverage;  // blocks this execution covered
  // Bugs found on this execution, serialized (bug_io) so the result crosses
  // process boundaries in fleet mode; inputs patched from the fuzz fields so
  // the evidence replays. Empty = clean run.
  std::string bugs_text;
  uint64_t instructions = 0;
};

class FuzzExecutor {
 public:
  FuzzExecutor(const FaultCampaignConfig& campaign, const DriverImage& image,
               const PciDescriptor& descriptor)
      : campaign_(campaign), image_(image), descriptor_(descriptor) {}

  // Thread-safe: each call builds an independent Ddt instance.
  FuzzExecResult Execute(const FuzzInput& input) const;

 private:
  const FaultCampaignConfig& campaign_;
  const DriverImage& image_;
  const PciDescriptor& descriptor_;
};

}  // namespace fuzz
}  // namespace ddt

#endif  // SRC_FUZZ_EXECUTOR_H_
