// Deterministic mutation engine for the concolic fuzz loop.
//
// Every mutant is a pure function of (base input, SplitMix64 stream): the
// orchestrator derives one stream per (batch, exec) from the campaign fuzz
// seed, so the corpus, the bug set, and the report are byte-identical for the
// same --fuzz-seed at any thread or worker count. Mutators are AFL-style
// havoc/arith plus a dictionary of protocol constants (NDIS-style OIDs,
// boundary sizes) and structure-aware per-origin rules: registry parameters
// get small interesting values, packet bytes get byte havoc, entry-argument
// lengths get boundary lengths, OID selectors get dictionary OIDs. Interrupt
// timing and kernel/hardware fault schedules mutate too — the fuzz plane
// covers every input dimension the symbolic engine explores.
#ifndef SRC_FUZZ_MUTATOR_H_
#define SRC_FUZZ_MUTATOR_H_

#include <array>
#include <cstdint>

#include "src/fuzz/input.h"
#include "src/support/rng.h"

namespace ddt {
namespace fuzz {

enum class MutatorKind : uint8_t {
  kHavoc = 0,       // random bit/byte/word damage to a field value
  kArith = 1,       // +/- small delta
  kDictionary = 2,  // protocol constants and boundary values
  kStructured = 3,  // origin-aware interesting values
  kInterrupt = 4,   // insert/remove/shift an interrupt delivery
  kFaultPoint = 5,  // add/remove a kernel or hardware fault point
};
constexpr size_t kNumMutatorKinds = 6;

const char* MutatorKindName(MutatorKind kind);

// Produces a mutant of `base` by applying 1..4 stacked mutations drawn from
// `rng`. `counts` (when non-null) tallies applied mutations per kind — the
// fuzz.mutations.* metric family. The mutant's label is left equal to the
// base's; the orchestrator relabels with batch/exec provenance.
FuzzInput MutateInput(const FuzzInput& base, SplitMix64& rng,
                      std::array<uint64_t, kNumMutatorKinds>* counts);

}  // namespace fuzz
}  // namespace ddt

#endif  // SRC_FUZZ_MUTATOR_H_
