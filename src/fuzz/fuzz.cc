#include "src/fuzz/fuzz.h"

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <exception>
#include <numeric>
#include <set>

#include "src/core/bug_io.h"
#include "src/core/campaign_exec.h"
#include "src/fleet/wire.h"
#include "src/fuzz/executor.h"
#include "src/support/check.h"
#include "src/support/eintr.h"
#include "src/support/strings.h"
#include "src/support/subprocess.h"
#include "src/support/thread_pool.h"

namespace ddt {
namespace fuzz {

namespace {

// Same identity key the campaign merger deduplicates with
// (src/core/campaign_exec.cc) — a fuzz bug is "new" iff no campaign pass and
// no earlier fuzz exec already reported it.
std::string BugKey(const Bug& bug) {
  return StrFormat("%d|%s", static_cast<int>(bug.type), bug.title.c_str());
}

// In-process execution: campaign.threads semantics (0 = one per hardware
// thread, 1 = inline). Results land in exec-index slots, so the merge order
// downstream is independent of completion order.
std::vector<FuzzExecResult> ExecuteBatchThreads(const FuzzExecutor& executor,
                                                const std::vector<FuzzInput>& inputs,
                                                uint32_t threads) {
  std::vector<FuzzExecResult> results(inputs.size());
  size_t n = threads == 0 ? ThreadPool::HardwareThreads() : threads;
  n = std::min(n, inputs.size());
  if (n <= 1) {
    for (size_t i = 0; i < inputs.size(); ++i) {
      results[i] = executor.Execute(inputs[i]);
    }
    return results;
  }
  ThreadPool pool(n);
  for (size_t i = 0; i < inputs.size(); ++i) {
    pool.Submit([&executor, &inputs, &results, i] { results[i] = executor.Execute(inputs[i]); });
  }
  pool.Wait();
  // Execute() catches everything itself; the pool's capture is the backstop.
  // A slot a crashed task never filled stays !ok and quarantines below.
  pool.TakeExceptions();
  return results;
}

// Frames on a fuzz shard pipe are *streamed* — the coordinator pushes a whole
// shard's leases (plus the BYE) in one write, and the worker streams results
// back — so each side must keep one decoder alive across frames. A per-call
// fleet::ReadFrame would silently drop every frame after the first in each
// read() chunk.
class FrameStream {
 public:
  explicit FrameStream(int fd) : fd_(fd) {}

  Result<fleet::Frame> Next() {
    fleet::Frame frame;
    char chunk[4096];
    for (;;) {
      fleet::FrameDecoder::Next next = decoder_.Pop(&frame);
      if (next == fleet::FrameDecoder::Next::kFrame) {
        return frame;
      }
      if (next == fleet::FrameDecoder::Next::kCorrupt) {
        return Status::Error("fuzz pipe frame corrupt");
      }
      ssize_t n = RetryOnEintr([&] { return ::read(fd_, chunk, sizeof(chunk)); });
      if (n < 0) {
        return Status::Error("fuzz pipe read failed");
      }
      if (n == 0) {
        return Status::Error("fuzz pipe closed");
      }
      decoder_.Feed(chunk, static_cast<size_t>(n));
    }
  }

 private:
  int fd_;
  fleet::FrameDecoder decoder_;
};

// Child side of a fuzz shard: lease in, result out, BYE ends the loop. Any
// protocol error exits nonzero; the coordinator salvages the shard inline.
int FuzzWorkerMain(const FuzzExecutor& executor, int in_fd, int out_fd) {
  FrameStream frames(in_fd);
  for (;;) {
    Result<fleet::Frame> frame = frames.Next();
    if (!frame.ok()) {
      return 2;
    }
    if (frame.value().type == fleet::FrameType::kBye) {
      return 0;
    }
    if (frame.value().type != fleet::FrameType::kFuzzExec) {
      return 2;
    }
    fleet::FuzzExecLease lease;
    if (!fleet::DecodeFuzzExecLease(frame.value().body, &lease)) {
      return 2;
    }
    fleet::FuzzExecResultBody body;
    body.index = lease.index;
    Result<FuzzInput> input = ParseFuzzInput(lease.input_text);
    if (!input.ok()) {
      body.ok = 0;
      body.failure = input.error();
    } else {
      FuzzExecResult res = executor.Execute(input.value());
      body.ok = res.ok ? 1 : 0;
      body.failure = res.failure;
      body.coverage_hex = res.coverage.ToHex();
      body.instructions = res.instructions;
      body.bugs_text = res.bugs_text;
    }
    if (!fleet::WriteFrame(out_fd, fleet::FrameType::kFuzzExec, fleet::EncodeFuzzExecResult(body))
             .ok()) {
      return 2;
    }
  }
}

void WriteAllBestEffort(int fd, const std::string& bytes) {
  size_t written = 0;
  while (written < bytes.size()) {
    ssize_t n = RetryOnEintr(
        [&] { return ::write(fd, bytes.data() + written, bytes.size() - written); });
    if (n <= 0) {
      return;  // dead worker; the read side detects and salvages
    }
    written += static_cast<size_t>(n);
  }
}

// Fork-isolated execution: worker w owns exec indices i % W == w. Each
// shard's leases (plus the closing BYE) are one pre-encoded byte string
// pushed by a writer thread while the main thread drains results, so a full
// pipe on either side can never deadlock the batch. Lost workers (crash,
// corrupt frame) cost nothing but wall time: their missing execs re-run
// inline, and determinism is unaffected because results merge by index.
std::vector<FuzzExecResult> ExecuteBatchWorkers(const FuzzExecutor& executor,
                                                const std::vector<FuzzInput>& inputs,
                                                uint32_t workers, FuzzCampaignResult* tallies) {
  std::vector<FuzzExecResult> results(inputs.size());
  std::vector<bool> have(inputs.size(), false);
  size_t num_shards = std::min<size_t>(workers, inputs.size());

  struct Shard {
    ChildProcess child;
    std::string lease_bytes;
    std::vector<size_t> indices;
    bool alive = false;
  };
  std::vector<Shard> shards(num_shards);
  for (size_t i = 0; i < inputs.size(); ++i) {
    shards[i % num_shards].indices.push_back(i);
  }
  // Fork before any threads exist (see src/support/subprocess.h).
  for (Shard& shard : shards) {
    for (size_t idx : shard.indices) {
      fleet::FuzzExecLease lease;
      lease.index = idx;
      lease.input_text = SerializeFuzzInput(inputs[idx]);
      shard.lease_bytes +=
          fleet::EncodeFrame(fleet::FrameType::kFuzzExec, fleet::EncodeFuzzExecLease(lease));
    }
    shard.lease_bytes += fleet::EncodeFrame(fleet::FrameType::kBye,
                                            fleet::EncodeBye(fleet::ByeBody{fleet::kByeDrain, ""}));
    Result<ChildProcess> spawned =
        SpawnChild([&executor](int in_fd, int out_fd) { return FuzzWorkerMain(executor, in_fd, out_fd); });
    if (spawned.ok()) {
      shard.child = spawned.value();
      shard.alive = true;
      ++tallies->fuzz_workers_spawned;
    }
  }

  {
    ThreadPool writers(std::max<size_t>(num_shards, 1));
    for (Shard& shard : shards) {
      if (shard.alive) {
        writers.Submit([&shard] { WriteAllBestEffort(shard.child.to_child_fd, shard.lease_bytes); });
      }
    }
    for (Shard& shard : shards) {
      if (!shard.alive) {
        continue;
      }
      bool lost = false;
      FrameStream frames(shard.child.from_child_fd);
      for (size_t got = 0; got < shard.indices.size(); ++got) {
        Result<fleet::Frame> frame = frames.Next();
        fleet::FuzzExecResultBody body;
        if (!frame.ok() || frame.value().type != fleet::FrameType::kFuzzExec ||
            !fleet::DecodeFuzzExecResult(frame.value().body, &body) ||
            body.index >= results.size()) {
          lost = true;
          break;
        }
        FuzzExecResult r;
        r.ok = body.ok != 0;
        r.failure = body.failure;
        r.instructions = body.instructions;
        r.bugs_text = body.bugs_text;
        if (!CoverageBitmap::FromHex(body.coverage_hex, &r.coverage)) {
          lost = true;
          break;
        }
        results[body.index] = std::move(r);
        have[body.index] = true;
      }
      if (lost) {
        ++tallies->fuzz_workers_lost;
        KillAndReap(shard.child.pid);
        shard.child.CloseFds();
        shard.alive = false;
      }
    }
    writers.Wait();
  }

  // Healthy workers exit on their BYE; give them a moment, then insist.
  for (Shard& shard : shards) {
    if (!shard.alive) {
      continue;
    }
    bool reaped = false;
    for (int spin = 0; spin < 1000 && !reaped; ++spin) {
      int status = 0;
      reaped = TryReap(shard.child.pid, &status);
      if (!reaped) {
        ::usleep(10 * 1000);
      }
    }
    if (!reaped) {
      KillAndReap(shard.child.pid);
    }
    shard.child.CloseFds();
  }

  for (size_t i = 0; i < inputs.size(); ++i) {
    if (!have[i] && results[i].failure.empty() && !results[i].ok) {
      results[i] = executor.Execute(inputs[i]);
      ++tallies->fuzz_execs_salvaged;
    }
  }
  return results;
}

}  // namespace

uint64_t FuzzFingerprint(const FuzzCampaignConfig& config, const DriverImage& image) {
  uint64_t h = CampaignFingerprint(config.campaign, image);
  // Mix in the fuzz seed so a corpus never silently continues under a
  // different mutation universe.
  h ^= config.fuzz.seed + 0x9E3779B97F4A7C15ull + (h << 6) + (h >> 2);
  return h;
}

std::string FuzzCampaignResult::FormatReport(const std::string& driver_name,
                                             bool include_volatile) const {
  std::string out = campaign.FormatReport(driver_name, include_volatile);
  out += "\n--- fuzz ---\n";
  out += StrFormat("fuzz seed: 0x%llx  batches: %u  execs/batch: %u\n",
                   static_cast<unsigned long long>(fuzz_config.seed), fuzz_config.batches,
                   fuzz_config.execs_per_batch);
  out += StrFormat("seeds derived: %llu\n", static_cast<unsigned long long>(seeds_derived));
  out += StrFormat("execs: %llu (quarantined: %llu)\n", static_cast<unsigned long long>(execs),
                   static_cast<unsigned long long>(quarantined_execs));
  out += StrFormat("corpus: %llu entries, %llu blocks, fingerprint %016llx\n",
                   static_cast<unsigned long long>(corpus_entries),
                   static_cast<unsigned long long>(corpus_blocks),
                   static_cast<unsigned long long>(corpus_fingerprint));
  out += StrFormat("novel blocks vs seed pass: %llu\n",
                   static_cast<unsigned long long>(novel_blocks));
  out += "mutations:";
  for (size_t k = 0; k < kNumMutatorKinds; ++k) {
    out += StrFormat(" %s=%llu", MutatorKindName(static_cast<MutatorKind>(k)),
                     static_cast<unsigned long long>(mutations[k]));
  }
  out += "\n";
  out += StrFormat("promotions: %llu (novel blocks: %llu)\n",
                   static_cast<unsigned long long>(promotions),
                   static_cast<unsigned long long>(promotion_novel_blocks));
  out += StrFormat("fuzz-only bugs: %zu\n", fuzz_bugs.size());
  for (size_t i = 0; i < fuzz_bugs.size(); ++i) {
    out += "  " + fuzz_bugs[i].Row() +
           (i < fuzz_bug_origins.size() ? " [via " + fuzz_bug_origins[i] + "]" : "") + "\n";
  }
  if (include_volatile) {
    out += StrFormat("fuzz wall ms: %.1f (%.0f execs/sec)\n", fuzz_wall_ms, execs_per_sec);
    out += StrFormat("fuzz workers: spawned %llu, lost %llu, salvaged %llu execs\n",
                     static_cast<unsigned long long>(fuzz_workers_spawned),
                     static_cast<unsigned long long>(fuzz_workers_lost),
                     static_cast<unsigned long long>(fuzz_execs_salvaged));
    if (corpus_load_errors != 0) {
      out += StrFormat("corpus load errors: %llu (torn tail dropped)\n",
                       static_cast<unsigned long long>(corpus_load_errors));
    }
  }
  return out;
}

Result<FuzzCampaignResult> RunFuzzCampaign(const FuzzCampaignConfig& config,
                                           const DriverImage& image,
                                           const PciDescriptor& descriptor) {
  auto fuzz_start = std::chrono::steady_clock::now();
  FuzzCampaignResult result;
  result.fuzz_config = config.fuzz;

  // Phase 1: the exhaustive symbolic campaign, untouched (the CLI routes it
  // through the process fleet via run_campaign).
  Result<FaultCampaignResult> campaign =
      config.run_campaign ? config.run_campaign()
                          : RunFaultCampaign(config.campaign, image, descriptor);
  if (!campaign.ok()) {
    return campaign.status();
  }
  result.campaign = std::move(campaign.value());

  std::set<std::string> bug_keys;
  for (const Bug& bug : result.campaign.bugs) {
    bug_keys.insert(BugKey(bug));
  }

  // Phase 2: seed derivation — one symbolic pass with solver models on.
  std::vector<FuzzInput> seeds;
  CoverageBitmap seed_coverage;
  {
    DdtConfig seed_config = config.campaign.base;
    seed_config.engine.max_path_seeds = config.fuzz.max_seeds;
    seed_config.engine.metrics = nullptr;
    seed_config.engine.profile = nullptr;
    try {
      ScopedCheckTrap trap;
      Ddt ddt(seed_config);
      Result<DdtResult> run = ddt.TestDriver(image, descriptor);
      if (!run.ok()) {
        return Status::Error("fuzz seed pass: " + run.error());
      }
      const std::vector<PathSeed>& path_seeds = run.value().path_seeds;
      for (size_t i = 0; i < path_seeds.size(); ++i) {
        seeds.push_back(FromPathSeed(path_seeds[i], seed_config.engine.fault_plan,
                                     StrFormat("seed#%zu", i)));
      }
      seed_coverage = ddt.engine().CoverageSnapshot();
    } catch (const std::exception& e) {
      return Status::Error(std::string("fuzz seed pass: ") + e.what());
    }
  }
  result.seeds_derived = seeds.size();

  // Phase 3: the coverage-guided mutation loop.
  uint64_t fingerprint = FuzzFingerprint(config, image);
  FuzzCorpus corpus;
  if (config.fuzz.resume && !config.fuzz.corpus_path.empty()) {
    std::FILE* probe = std::fopen(config.fuzz.corpus_path.c_str(), "rb");
    if (probe != nullptr) {
      std::fclose(probe);
      size_t load_errors = 0;
      Status loaded = corpus.LoadFromFile(config.fuzz.corpus_path, fingerprint, &load_errors);
      if (!loaded.ok()) {
        return loaded;  // fingerprint mismatch or unreadable — never silently fresh
      }
      result.corpus_load_errors = load_errors;
    }
  }

  FuzzExecutor executor(config.campaign, image, descriptor);
  SplitMix64 root(config.fuzz.seed);

  for (uint32_t b = corpus.batches_done(); b < config.fuzz.batches; ++b) {
    std::vector<FuzzInput> inputs;
    if (b == 0) {
      inputs = seeds;  // replayed unmutated; admission seeds the corpus
    } else {
      // Bases frozen at batch start: every current entry was admitted in an
      // earlier batch (merge runs in batch order). An empty corpus falls back
      // to mutating the raw seeds.
      std::vector<const FuzzInput*> bases;
      for (const CorpusEntry& entry : corpus.entries()) {
        bases.push_back(&entry.input);
      }
      if (bases.empty()) {
        for (const FuzzInput& seed : seeds) {
          bases.push_back(&seed);
        }
      }
      if (bases.empty()) {
        corpus.set_batches_done(b + 1);
        continue;
      }
      for (uint32_t e = 0; e < config.fuzz.execs_per_batch; ++e) {
        SplitMix64 stream = root.Fork(b).Fork(e);
        const FuzzInput& base = *bases[stream.NextBelow(bases.size())];
        FuzzInput mutant = MutateInput(base, stream, &result.mutations);
        mutant.label = StrFormat("fuzz b%u#%u", b, e);
        inputs.push_back(std::move(mutant));
      }
    }
    if (inputs.empty()) {
      corpus.set_batches_done(b + 1);
      continue;
    }

    std::vector<FuzzExecResult> exec_results =
        config.fuzz.workers > 0
            ? ExecuteBatchWorkers(executor, inputs, config.fuzz.workers, &result)
            : ExecuteBatchThreads(executor, inputs, config.campaign.threads);

    // Merge strictly in exec-index order — the determinism hinge.
    for (size_t i = 0; i < inputs.size(); ++i) {
      ++result.execs;
      FuzzExecResult& r = exec_results[i];
      if (!r.ok) {
        ++result.quarantined_execs;
        continue;
      }
      corpus.Offer(inputs[i], r.coverage, b, config.fuzz.max_corpus);
      if (!r.bugs_text.empty()) {
        Result<std::vector<Bug>> bugs = DeserializeBugs(r.bugs_text);
        if (bugs.ok()) {
          for (Bug& bug : bugs.value()) {
            if (bug_keys.insert(BugKey(bug)).second) {
              result.fuzz_bugs.push_back(std::move(bug));
              result.fuzz_bug_origins.push_back(inputs[i].label);
            }
          }
        }
      }
    }
    corpus.set_batches_done(b + 1);
    if (!config.fuzz.corpus_path.empty()) {
      Status saved = corpus.SaveToFile(config.fuzz.corpus_path, fingerprint);
      if (!saved.ok()) {
        return saved;
      }
    }
  }

  result.corpus_entries = corpus.size();
  result.corpus_blocks = corpus.cumulative().Popcount();
  result.corpus_fingerprint = corpus.cumulative().Fingerprint();
  result.novel_blocks = seed_coverage.NewlyCovered(corpus.cumulative());

  // Phase 4: promotion — the most novel mutant-discovered entries return to
  // symbolic exploration as concretization hints.
  if (config.fuzz.promote && config.fuzz.max_promotions > 0 && corpus.size() > 0) {
    CoverageBitmap promotion_baseline = seed_coverage;
    promotion_baseline.OrWith(corpus.cumulative());

    std::vector<size_t> order(corpus.size());
    std::iota(order.begin(), order.end(), size_t{0});
    const std::vector<CorpusEntry>& entries = corpus.entries();
    std::stable_sort(order.begin(), order.end(), [&entries](size_t a, size_t b) {
      bool mutant_a = entries[a].batch > 0;
      bool mutant_b = entries[b].batch > 0;
      if (mutant_a != mutant_b) {
        return mutant_a;  // mutant-discovered coverage first
      }
      if (entries[a].novel_blocks != entries[b].novel_blocks) {
        return entries[a].novel_blocks > entries[b].novel_blocks;
      }
      return a < b;
    });

    for (size_t k = 0; k < order.size() && result.promotions < config.fuzz.max_promotions; ++k) {
      const CorpusEntry& entry = entries[order[k]];
      DdtConfig promo = config.campaign.base;
      promo.engine.concretization_hints = GuidedInputs(entry.input);
      promo.engine.fault_plan = entry.input.fault_plan;
      promo.engine.max_path_seeds = 0;
      promo.engine.metrics = nullptr;
      promo.engine.profile = nullptr;
      try {
        ScopedCheckTrap trap;
        Ddt ddt(promo);
        Result<DdtResult> run = ddt.TestDriver(image, descriptor);
        if (!run.ok()) {
          continue;
        }
        uint64_t promotion_index = result.promotions;
        ++result.promotions;
        result.promotion_coverage.OrWith(ddt.engine().CoverageSnapshot());
        if (!run.value().bugs.empty()) {
          // Round-trip through bug_io so the bugs outlive this pass's Ddt.
          Result<std::vector<Bug>> bugs = DeserializeBugs(SerializeBugs(run.value().bugs));
          if (bugs.ok()) {
            for (Bug& bug : bugs.value()) {
              if (bug_keys.insert(BugKey(bug)).second) {
                result.fuzz_bugs.push_back(std::move(bug));
                result.fuzz_bug_origins.push_back(
                    StrFormat("promotion#%llu via %s",
                              static_cast<unsigned long long>(promotion_index),
                              entry.input.label.c_str()));
              }
            }
          }
        }
      } catch (const std::exception&) {
        continue;  // a crashing promotion pass quarantines itself
      }
    }
    result.promotion_novel_blocks = promotion_baseline.NewlyCovered(result.promotion_coverage);
  }

  result.fuzz_wall_ms =
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - fuzz_start)
          .count();
  result.execs_per_sec =
      result.fuzz_wall_ms > 0 ? result.execs / (result.fuzz_wall_ms / 1000.0) : 0;

  if (config.campaign.collect_metrics) {
    auto& counters = result.campaign.metrics.counters;
    counters["fuzz.execs"] += result.execs;
    counters["fuzz.execs_quarantined"] += result.quarantined_execs;
    counters["fuzz.seeds_derived"] += result.seeds_derived;
    counters["fuzz.corpus_size"] += result.corpus_entries;
    counters["fuzz.corpus_blocks"] += result.corpus_blocks;
    counters["fuzz.novel_blocks"] += result.novel_blocks;
    counters["fuzz.promotions"] += result.promotions;
    counters["fuzz.promotion_novel_blocks"] += result.promotion_novel_blocks;
    counters["fuzz.bugs"] += result.fuzz_bugs.size();
    for (size_t k = 0; k < kNumMutatorKinds; ++k) {
      counters[StrFormat("fuzz.mutations.%s", MutatorKindName(static_cast<MutatorKind>(k)))] +=
          result.mutations[k];
    }
    auto& gauge = result.campaign.metrics.gauges["fuzz.execs_per_sec"];
    gauge.value = static_cast<int64_t>(result.execs_per_sec);
    gauge.max = std::max(gauge.max, gauge.value);
  }

  return result;
}

}  // namespace fuzz
}  // namespace ddt
