#include "src/fuzz/executor.h"

#include <exception>

#include "src/core/bug_io.h"
#include "src/support/check.h"

namespace ddt {
namespace fuzz {

FuzzExecResult FuzzExecutor::Execute(const FuzzInput& input) const {
  FuzzExecResult result;

  DdtConfig config = campaign_.base;
  config.engine.guided = true;
  config.engine.guided_inputs = GuidedInputs(input);
  config.engine.forced_interrupt_schedule = input.interrupt_schedule;
  config.engine.forced_alternatives = input.alternatives;
  config.engine.enable_symbolic_interrupts = false;
  config.engine.fault_plan = input.fault_plan;
  config.engine.max_states = 4;
  config.engine.stop_after_first_bug = false;
  config.engine.max_path_seeds = 0;
  config.engine.concretization_hints.clear();
  config.engine.metrics = nullptr;
  config.engine.profile = nullptr;
  config.dma_checker = true;

  try {
    ScopedCheckTrap trap;
    Ddt ddt(config);
    Result<DdtResult> run = ddt.TestDriver(image_, descriptor_);
    if (!run.ok()) {
      result.failure = run.status().message();
      return result;
    }
    // Guided runs push no path constraints, so SolveInputs gave these bugs no
    // inputs; patch in the fuzz fields so a saved evidence file replays.
    std::vector<Bug> bugs = run.value().bugs;
    for (Bug& bug : bugs) {
      if (bug.inputs.empty()) {
        bug.inputs = ToSolvedInputs(input);
      }
    }
    if (!bugs.empty()) {
      result.bugs_text = SerializeBugs(bugs);
    }
    result.coverage = ddt.engine().CoverageSnapshot();
    result.instructions = run.value().stats.instructions;
    result.ok = true;
  } catch (const CheckFailureError& e) {
    result.failure = std::string("check failure: ") + e.what();
  } catch (const std::exception& e) {
    result.failure = std::string("exception: ") + e.what();
  }
  return result;
}

}  // namespace fuzz
}  // namespace ddt
