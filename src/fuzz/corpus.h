// Fuzz corpus: coverage-novelty admission plus journal-style persistence.
//
// Admission is AFL-style: an executed input enters the corpus iff its block
// coverage sets at least one bit the cumulative corpus bitmap does not have
// yet, starting from an empty bitmap so the solver-derived seeds themselves
// are admitted first by the same rule. Admission order is the orchestrator's
// merge order (batch, then exec index), which makes the corpus — and its
// fingerprint — deterministic for a fixed fuzz seed at any thread or worker
// count.
//
// On disk the corpus uses the campaign journal's defensive format: a header
// that binds the file to (driver, fuzz seed), then CRC-sealed length-prefixed
// entries. A torn or corrupt tail (the process died mid-save) drops only the
// damaged suffix; everything before it loads, and the next save rewrites the
// file whole. Each entry carries its coverage bitmap so the cumulative map —
// and therefore future admission decisions — rebuilds exactly on resume.
#ifndef SRC_FUZZ_CORPUS_H_
#define SRC_FUZZ_CORPUS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/fuzz/input.h"
#include "src/support/status.h"
#include "src/vm/coverage_map.h"

namespace ddt {
namespace fuzz {

struct CorpusEntry {
  FuzzInput input;
  CoverageBitmap coverage;          // this input's own execution coverage
  uint64_t coverage_fingerprint = 0;
  size_t novel_blocks = 0;          // blocks new vs the cumulative map at admission
  uint32_t batch = 0;               // batch the entry was admitted in
};

class FuzzCorpus {
 public:
  // Admits `input` iff `coverage` has >= 1 block the cumulative map lacks
  // (and the corpus is below max_entries). Returns the admitted entry index,
  // or -1 when rejected. ORs admitted coverage into the cumulative map.
  int Offer(const FuzzInput& input, const CoverageBitmap& coverage, uint32_t batch,
            size_t max_entries);

  const std::vector<CorpusEntry>& entries() const { return entries_; }
  const CoverageBitmap& cumulative() const { return cumulative_; }
  size_t size() const { return entries_.size(); }

  // Batches fully merged so far — the fuzz loop's resume cursor, persisted in
  // the file header.
  uint32_t batches_done() const { return batches_done_; }
  void set_batches_done(uint32_t n) { batches_done_ = n; }

  // Whole-file rewrite (save is the fuzz checkpoint, once per batch).
  // `fingerprint` binds the file to the driver + fuzz seed.
  Status SaveToFile(const std::string& path, uint64_t fingerprint) const;
  // Loads entries up to the first damaged record (torn tails are not fatal;
  // load_errors reports how many trailing records were dropped). Fails only
  // on a missing/unreadable file or a fingerprint mismatch.
  Status LoadFromFile(const std::string& path, uint64_t fingerprint, size_t* load_errors);

 private:
  std::vector<CorpusEntry> entries_;
  CoverageBitmap cumulative_;
  uint32_t batches_done_ = 0;
};

}  // namespace fuzz
}  // namespace ddt

#endif  // SRC_FUZZ_CORPUS_H_
