#include "src/obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace ddt::obs {
namespace {

// Minimal JSON string escaping (metric names are ASCII identifiers, but a
// hostile name must not corrupt the document).
void AppendEscaped(std::string* out, const std::string& text) {
  out->push_back('"');
  for (char c : text) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04X", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void AppendDouble(std::string* out, double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  *out += buf;
}

}  // namespace

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  std::sort(bounds_.begin(), bounds_.end());
  bounds_.erase(std::unique(bounds_.begin(), bounds_.end()), bounds_.end());
  buckets_.resize(bounds_.size() + 1);  // final bucket = +inf
}

void Histogram::Observe(double value) {
  size_t i = static_cast<size_t>(
      std::upper_bound(bounds_.begin(), bounds_.end(), value) - bounds_.begin());
  buckets_[i].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_milli_.fetch_add(static_cast<int64_t>(std::llround(value * 1000.0)),
                       std::memory_order_relaxed);
}

std::vector<double> Histogram::LatencyBucketsMs() {
  return {0.01, 0.05, 0.1, 0.5, 1, 5, 10, 50, 100, 500, 1000, 5000, 10000};
}

Counter* MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it != counters_.end()) {
    return it->second;
  }
  counter_storage_.emplace_back();
  Counter* c = &counter_storage_.back();
  counters_.emplace(name, c);
  return c;
}

Gauge* MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it != gauges_.end()) {
    return it->second;
  }
  gauge_storage_.emplace_back();
  Gauge* g = &gauge_storage_.back();
  gauges_.emplace(name, g);
  return g;
}

Histogram* MetricsRegistry::histogram(const std::string& name, std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it != histograms_.end()) {
    return it->second;
  }
  histogram_storage_.emplace_back(std::move(bounds));
  Histogram* h = &histogram_storage_.back();
  histograms_.emplace(name, h);
  return h;
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snap;
  for (const auto& [name, c] : counters_) {
    snap.counters[name] = c->value();
  }
  for (const auto& [name, g] : gauges_) {
    snap.gauges[name] = MetricsSnapshot::GaugeValue{g->value(), g->max()};
  }
  for (const auto& [name, h] : histograms_) {
    MetricsSnapshot::HistogramValue v;
    v.bounds = h->bounds();
    v.buckets.resize(h->num_buckets());
    for (size_t i = 0; i < h->num_buckets(); ++i) {
      v.buckets[i] = h->bucket_count(i);
    }
    v.count = h->count();
    v.sum = h->sum();
    snap.histograms[name] = std::move(v);
  }
  return snap;
}

void MetricsSnapshot::Merge(const MetricsSnapshot& other) {
  for (const auto& [name, value] : other.counters) {
    counters[name] += value;
  }
  for (const auto& [name, value] : other.gauges) {
    GaugeValue& mine = gauges[name];
    mine.value = std::max(mine.value, value.value);
    mine.max = std::max(mine.max, value.max);
  }
  for (const auto& [name, value] : other.histograms) {
    auto it = histograms.find(name);
    if (it == histograms.end()) {
      histograms[name] = value;
      continue;
    }
    HistogramValue& mine = it->second;
    mine.count += value.count;
    mine.sum += value.sum;
    if (mine.bounds == value.bounds) {
      for (size_t i = 0; i < mine.buckets.size() && i < value.buckets.size(); ++i) {
        mine.buckets[i] += value.buckets[i];
      }
    }
  }
}

std::string MetricsSnapshot::ToJson() const {
  std::string out = "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : counters) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    AppendEscaped(&out, name);
    out += ": ";
    out += std::to_string(value);
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"gauges\": {";
  first = true;
  for (const auto& [name, value] : gauges) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    AppendEscaped(&out, name);
    out += ": {\"value\": " + std::to_string(value.value) +
           ", \"max\": " + std::to_string(value.max) + "}";
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"histograms\": {";
  first = true;
  for (const auto& [name, value] : histograms) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    AppendEscaped(&out, name);
    out += ": {\"count\": " + std::to_string(value.count) + ", \"sum\": ";
    AppendDouble(&out, value.sum);
    out += ", \"bounds\": [";
    for (size_t i = 0; i < value.bounds.size(); ++i) {
      if (i != 0) {
        out += ", ";
      }
      AppendDouble(&out, value.bounds[i]);
    }
    out += "], \"buckets\": [";
    for (size_t i = 0; i < value.buckets.size(); ++i) {
      if (i != 0) {
        out += ", ";
      }
      out += std::to_string(value.buckets[i]);
    }
    out += "]}";
  }
  out += first ? "}\n" : "\n  }\n";
  out += "}\n";
  return out;
}

}  // namespace ddt::obs
