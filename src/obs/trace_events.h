// Structured trace events: scoped spans and instant events with thread ids
// and nesting, buffered in per-thread ring buffers, exportable as Chrome
// trace-event JSON (chrome://tracing / Perfetto "Open trace file") and as
// plain JSONL.
//
// This is the *observability* trace — where a campaign spends its wall time
// (solver queries, passes, journal flushes) — not to be confused with the
// per-state execution trace in src/trace/ that records what a guest driver
// did (and becomes bug evidence).
//
// Design for bounded overhead:
//   - one process-global Tracer, disabled by default; every record path
//     starts with a single relaxed atomic load (the runtime kill switch);
//   - compiling with -DDDT_OBS_DISABLED hard-wires that check to false, so
//     the optimizer deletes every probe (the compile-time kill switch);
//   - events land in a fixed-capacity per-thread ring buffer (no allocation
//     on the hot path for static-tagged events; oldest events are overwritten
//     when a thread outruns its ring, and the drop is counted);
//   - event names and tags are `const char*` by contract: pass string
//     literals (or strings that outlive the Tracer), never temporaries.
//
// The tracer records; it never feeds back. Turning tracing on or off cannot
// change engine exploration, bug sets, or the deterministic campaign report.
#ifndef SRC_OBS_TRACE_EVENTS_H_
#define SRC_OBS_TRACE_EVENTS_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace ddt::obs {

// One recorded event, detached from the ring (Collect output).
struct TraceEventRecord {
  const char* name = "";
  char phase = 'X';    // 'X' = complete span, 'i' = instant
  uint32_t tid = 0;    // tracer-assigned small id, stable per thread
  uint16_t depth = 0;  // span nesting depth on that thread (0 = outermost)
  double ts_us = 0;    // microseconds since tracing was enabled
  double dur_us = 0;   // span duration ('X' only)
  const char* tag_key = nullptr;  // optional static tag, e.g. "result"
  const char* tag_val = nullptr;  //   ... "sat"
  std::string arg;                // optional dynamic annotation (label text)
};

class Tracer {
 public:
  static constexpr size_t kDefaultEventsPerThread = 1 << 15;

  // The process-global tracer every probe records into.
  static Tracer& Get();

  // Runtime kill switch. Enable clears previously collected events and
  // (re)sets the per-thread ring capacity; Disable stops recording but keeps
  // the buffers so a final export still sees everything.
  void Enable(size_t events_per_thread = kDefaultEventsPerThread);
  void Disable();

  static bool Enabled() {
#ifdef DDT_OBS_DISABLED
    return false;
#else
    return enabled_.load(std::memory_order_relaxed);
#endif
  }

  // Records an instant event on the calling thread.
  void Instant(const char* name, const char* tag_key = nullptr, const char* tag_val = nullptr,
               std::string arg = std::string());

  // All recorded events, sorted by (tid, ts). Safe to call while other
  // threads are still recording (each ring is briefly locked), though a
  // quiescent tracer gives the cleanest picture.
  std::vector<TraceEventRecord> Collect() const;

  // Events overwritten because some thread outran its ring.
  uint64_t DroppedEvents() const;

  // Chrome trace-event JSON: {"traceEvents":[...]} — loadable directly in
  // chrome://tracing or https://ui.perfetto.dev. On failure returns false and
  // sets *error.
  bool ExportChromeJson(const std::string& path, std::string* error) const;
  // One event object per line (grep/jq-friendly).
  bool ExportJsonl(const std::string& path, std::string* error) const;

  // Microseconds since Enable (0 when never enabled). Monotonic.
  double NowUs() const;

 private:
  friend class ScopedSpan;
  struct ThreadBuffer;

  Tracer() = default;

  // The calling thread's ring, created and registered on first use.
  ThreadBuffer* Buffer();
  void Record(const char* name, char phase, uint16_t depth, double ts_us, double dur_us,
              const char* tag_key, const char* tag_val, std::string arg);
  // Span nesting bookkeeping (per calling thread).
  uint16_t EnterSpan();
  void LeaveSpan();

  static std::atomic<bool> enabled_;

  mutable std::mutex mu_;
  std::vector<std::shared_ptr<ThreadBuffer>> buffers_;  // survives thread exit
  std::atomic<size_t> events_per_thread_{kDefaultEventsPerThread};
  uint32_t next_tid_ = 0;
  std::atomic<int64_t> origin_ns_{0};  // steady_clock ns at Enable
};

// RAII span: records one complete ('X') event covering its own lifetime on
// the calling thread. Near-free when tracing is disabled (one relaxed load).
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name) : name_(name), active_(Tracer::Enabled()) {
    if (active_) {
      Begin();
    }
  }
  ~ScopedSpan() {
    if (active_) {
      End();
    }
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  // Static tag (string literals): no allocation.
  void Tag(const char* key, const char* val) {
    tag_key_ = key;
    tag_val_ = val;
  }
  // Dynamic annotation; allocates, so use at pass/export granularity.
  void Arg(std::string text) { arg_ = std::move(text); }

 private:
  void Begin();
  void End();

  const char* name_;
  bool active_;
  uint16_t depth_ = 0;
  double start_us_ = 0;
  const char* tag_key_ = nullptr;
  const char* tag_val_ = nullptr;
  std::string arg_;
};

// Instant-event shorthand that keeps call sites one line.
inline void TraceInstant(const char* name, const char* tag_key = nullptr,
                         const char* tag_val = nullptr) {
  if (Tracer::Enabled()) {
    Tracer::Get().Instant(name, tag_key, tag_val);
  }
}

}  // namespace ddt::obs

#endif  // SRC_OBS_TRACE_EVENTS_H_
