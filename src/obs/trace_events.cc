#include "src/obs/trace_events.h"

#include <algorithm>
#include <chrono>
#include <cstdio>

namespace ddt::obs {

std::atomic<bool> Tracer::enabled_{false};

namespace {

int64_t SteadyNowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void AppendEscaped(std::string* out, const char* text) {
  out->push_back('"');
  for (const char* p = text; *p != '\0'; ++p) {
    char c = *p;
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04X", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

// One Chrome trace-event object. `ts`/`dur` are microseconds per the format.
std::string EventJson(const TraceEventRecord& ev) {
  char num[64];
  std::string out = "{\"name\":";
  AppendEscaped(&out, ev.name);
  out += ",\"cat\":\"ddt\",\"ph\":\"";
  out.push_back(ev.phase);
  out += "\",\"pid\":1,\"tid\":";
  out += std::to_string(ev.tid);
  std::snprintf(num, sizeof(num), ",\"ts\":%.3f", ev.ts_us);
  out += num;
  if (ev.phase == 'X') {
    std::snprintf(num, sizeof(num), ",\"dur\":%.3f", ev.dur_us);
    out += num;
  }
  if (ev.phase == 'i') {
    out += ",\"s\":\"t\"";  // thread-scoped instant
  }
  out += ",\"args\":{\"depth\":" + std::to_string(ev.depth);
  if (ev.tag_key != nullptr && ev.tag_val != nullptr) {
    out += ",";
    AppendEscaped(&out, ev.tag_key);
    out += ":";
    AppendEscaped(&out, ev.tag_val);
  }
  if (!ev.arg.empty()) {
    out += ",\"label\":";
    AppendEscaped(&out, ev.arg.c_str());
  }
  out += "}}";
  return out;
}

}  // namespace

// Fixed-capacity ring. The owning thread writes without contention in the
// common case; Collect (possibly on another thread) takes the same per-ring
// mutex, so every access is data-race-free under TSan. The mutex is private
// to one thread's ring — recording threads never contend with each other.
struct Tracer::ThreadBuffer {
  mutable std::mutex mu;
  uint32_t tid = 0;
  uint16_t depth = 0;        // current span nesting on the owning thread
  uint64_t total = 0;        // events ever recorded (>= ring.size() => drops)
  std::vector<TraceEventRecord> ring;

  void Push(TraceEventRecord ev, size_t capacity) {
    std::lock_guard<std::mutex> lock(mu);
    if (ring.size() < capacity) {
      ring.push_back(std::move(ev));
    } else if (capacity > 0) {
      ring[total % capacity] = std::move(ev);
    }
    ++total;
  }
};

Tracer& Tracer::Get() {
  static Tracer* tracer = new Tracer();  // leaked: probes may fire at exit
  return *tracer;
}

void Tracer::Enable(size_t events_per_thread) {
#ifdef DDT_OBS_DISABLED
  (void)events_per_thread;
#else
  std::lock_guard<std::mutex> lock(mu_);
  events_per_thread_.store(std::max<size_t>(1, events_per_thread), std::memory_order_relaxed);
  for (auto& buffer : buffers_) {
    std::lock_guard<std::mutex> buffer_lock(buffer->mu);
    buffer->ring.clear();
    buffer->total = 0;
    buffer->depth = 0;
  }
  origin_ns_.store(SteadyNowNs(), std::memory_order_relaxed);
  enabled_.store(true, std::memory_order_relaxed);
#endif
}

void Tracer::Disable() { enabled_.store(false, std::memory_order_relaxed); }

double Tracer::NowUs() const {
  int64_t origin = origin_ns_.load(std::memory_order_relaxed);
  if (origin == 0) {
    return 0;
  }
  return static_cast<double>(SteadyNowNs() - origin) / 1000.0;
}

Tracer::ThreadBuffer* Tracer::Buffer() {
  // Fast path: after first use the calling thread never touches the global
  // lock again — Enable() resets rings in place, so the pointer stays valid.
  thread_local ThreadBuffer* tls_buffer = nullptr;
  if (tls_buffer != nullptr) {
    return tls_buffer;
  }
  std::lock_guard<std::mutex> lock(mu_);
  auto buffer = std::make_shared<ThreadBuffer>();
  buffer->tid = next_tid_++;
  tls_buffer = buffer.get();
  buffers_.push_back(std::move(buffer));
  return tls_buffer;
}

void Tracer::Record(const char* name, char phase, uint16_t depth, double ts_us, double dur_us,
                    const char* tag_key, const char* tag_val, std::string arg) {
  ThreadBuffer* buffer = Buffer();
  TraceEventRecord ev;
  ev.name = name;
  ev.phase = phase;
  ev.tid = buffer->tid;
  ev.depth = depth;
  ev.ts_us = ts_us;
  ev.dur_us = dur_us;
  ev.tag_key = tag_key;
  ev.tag_val = tag_val;
  ev.arg = std::move(arg);
  buffer->Push(std::move(ev), events_per_thread_.load(std::memory_order_relaxed));
}

uint16_t Tracer::EnterSpan() {
  ThreadBuffer* buffer = Buffer();
  std::lock_guard<std::mutex> lock(buffer->mu);
  return buffer->depth++;
}

void Tracer::LeaveSpan() {
  ThreadBuffer* buffer = Buffer();
  std::lock_guard<std::mutex> lock(buffer->mu);
  if (buffer->depth > 0) {
    --buffer->depth;
  }
}

void Tracer::Instant(const char* name, const char* tag_key, const char* tag_val,
                     std::string arg) {
  if (!Enabled()) {
    return;
  }
  ThreadBuffer* buffer = Buffer();
  uint16_t depth;
  {
    std::lock_guard<std::mutex> lock(buffer->mu);
    depth = buffer->depth;
  }
  Record(name, 'i', depth, NowUs(), 0, tag_key, tag_val, std::move(arg));
}

std::vector<TraceEventRecord> Tracer::Collect() const {
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  {
    std::lock_guard<std::mutex> lock(mu_);
    buffers = buffers_;
  }
  std::vector<TraceEventRecord> out;
  for (const auto& buffer : buffers) {
    std::lock_guard<std::mutex> lock(buffer->mu);
    out.insert(out.end(), buffer->ring.begin(), buffer->ring.end());
  }
  std::stable_sort(out.begin(), out.end(), [](const TraceEventRecord& a,
                                              const TraceEventRecord& b) {
    if (a.tid != b.tid) {
      return a.tid < b.tid;
    }
    return a.ts_us < b.ts_us;
  });
  return out;
}

uint64_t Tracer::DroppedEvents() const {
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  {
    std::lock_guard<std::mutex> lock(mu_);
    buffers = buffers_;
  }
  size_t capacity = events_per_thread_.load(std::memory_order_relaxed);
  uint64_t dropped = 0;
  for (const auto& buffer : buffers) {
    std::lock_guard<std::mutex> lock(buffer->mu);
    if (buffer->total > capacity) {
      dropped += buffer->total - capacity;
    }
  }
  return dropped;
}

bool Tracer::ExportChromeJson(const std::string& path, std::string* error) const {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    if (error != nullptr) {
      *error = "cannot open " + path + " for writing";
    }
    return false;
  }
  std::vector<TraceEventRecord> events = Collect();
  std::fputs("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[", f);
  for (size_t i = 0; i < events.size(); ++i) {
    std::string json = EventJson(events[i]);
    std::fprintf(f, "%s%s", i == 0 ? "\n" : ",\n", json.c_str());
  }
  std::fputs(events.empty() ? "]}\n" : "\n]}\n", f);
  bool ok = std::fclose(f) == 0;
  if (!ok && error != nullptr) {
    *error = "write to " + path + " failed";
  }
  return ok;
}

bool Tracer::ExportJsonl(const std::string& path, std::string* error) const {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    if (error != nullptr) {
      *error = "cannot open " + path + " for writing";
    }
    return false;
  }
  for (const TraceEventRecord& ev : Collect()) {
    std::string json = EventJson(ev);
    std::fprintf(f, "%s\n", json.c_str());
  }
  bool ok = std::fclose(f) == 0;
  if (!ok && error != nullptr) {
    *error = "write to " + path + " failed";
  }
  return ok;
}

void ScopedSpan::Begin() {
  Tracer& tracer = Tracer::Get();
  depth_ = tracer.EnterSpan();
  start_us_ = tracer.NowUs();
}

void ScopedSpan::End() {
  Tracer& tracer = Tracer::Get();
  tracer.LeaveSpan();
  // A span that straddles Disable() is still recorded: its start was observed
  // under tracing, and losing the outermost enclosing spans would make every
  // export end with broken nesting.
  double end_us = tracer.NowUs();
  tracer.Record(name_, 'X', depth_, start_us_, end_us - start_us_, tag_key_, tag_val_,
                std::move(arg_));
}

}  // namespace ddt::obs
