#include "src/obs/profiler.h"

#include <algorithm>
#include <cstdio>

namespace ddt::obs {

const char* PhaseName(Phase phase) {
  switch (phase) {
    case Phase::kDecode:
      return "decode";
    case Phase::kInterpret:
      return "interpret";
    case Phase::kSolver:
      return "solver";
    case Phase::kChecker:
      return "checker";
    case Phase::kJournal:
      return "journal";
    case Phase::kMerge:
      return "merge";
    case Phase::kSuperblock:
      return "superblock";
    case Phase::kNumPhases:
      break;
  }
  return "?";
}

std::string PhaseBreakdown::Summary() const {
  if (total_ns == 0) {
    return "no timing";
  }
  std::vector<std::pair<uint64_t, size_t>> ranked;
  for (size_t i = 0; i < kNumPhases; ++i) {
    if (ns[i] > 0) {
      ranked.emplace_back(ns[i], i);
    }
  }
  std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
    if (a.first != b.first) {
      return a.first > b.first;
    }
    return a.second < b.second;  // stable tie-break by phase order
  });
  std::string out;
  for (const auto& [phase_ns, i] : ranked) {
    double pct = 100.0 * static_cast<double>(phase_ns) / static_cast<double>(total_ns);
    if (pct < 0.5) {
      continue;
    }
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%s%s %.0f%%", out.empty() ? "" : ", ",
                  PhaseName(static_cast<Phase>(i)), pct);
    out += buf;
  }
  return out.empty() ? "all <0.5%" : out;
}

void PassProfile::SetTotalAndDeriveInterpret(uint64_t total_ns) {
  total_ns_.store(total_ns, std::memory_order_relaxed);
  uint64_t claimed = 0;
  for (size_t i = 0; i < kNumPhases; ++i) {
    if (static_cast<Phase>(i) == Phase::kInterpret ||
        static_cast<Phase>(i) == Phase::kJournal || static_cast<Phase>(i) == Phase::kMerge) {
      continue;  // journal/merge happen outside the engine run
    }
    claimed += ns_[i].load(std::memory_order_relaxed);
  }
  uint64_t interpret = total_ns > claimed ? total_ns - claimed : 0;
  ns_[static_cast<size_t>(Phase::kInterpret)].store(interpret, std::memory_order_relaxed);
}

PhaseBreakdown PassProfile::Snapshot() const {
  PhaseBreakdown out;
  for (size_t i = 0; i < kNumPhases; ++i) {
    out.ns[i] = ns_[i].load(std::memory_order_relaxed);
  }
  out.total_ns = total_ns_.load(std::memory_order_relaxed);
  return out;
}

std::string CampaignProfile::FormatTopPasses(size_t n) const {
  std::vector<const PassEntry*> ranked;
  ranked.reserve(passes.size());
  for (const PassEntry& pass : passes) {
    if (!pass.quarantined) {
      ranked.push_back(&pass);
    }
  }
  std::sort(ranked.begin(), ranked.end(), [](const PassEntry* a, const PassEntry* b) {
    if (a->wall_ms != b->wall_ms) {
      return a->wall_ms > b->wall_ms;
    }
    return a->index < b->index;
  });
  std::string out;
  char buf[128];
  std::snprintf(buf, sizeof(buf), "profiler: top %zu slowest pass%s\n",
                std::min(n, ranked.size()), std::min(n, ranked.size()) == 1 ? "" : "es");
  out += buf;
  for (size_t i = 0; i < ranked.size() && i < n; ++i) {
    const PassEntry& pass = *ranked[i];
    std::snprintf(buf, sizeof(buf), "  pass %zu: %s -> %.1f ms (", pass.index,
                  pass.label.c_str(), pass.wall_ms);
    out += buf;
    out += pass.phases.Summary();
    out += ")\n";
  }
  return out;
}

std::string CampaignProfile::FormatHotFaultSites(size_t n) const {
  std::vector<std::pair<uint64_t, std::string>> ranked;
  for (const auto& [name, occurrences] : fault_site_occurrences) {
    if (occurrences > 0) {
      ranked.emplace_back(occurrences, name);
    }
  }
  std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
    if (a.first != b.first) {
      return a.first > b.first;
    }
    return a.second < b.second;
  });
  std::string out = "hot fault sites (occurrences across passes):\n";
  if (ranked.empty()) {
    return out + "  none observed\n";
  }
  for (size_t i = 0; i < ranked.size() && i < n; ++i) {
    char buf[128];
    std::snprintf(buf, sizeof(buf), "  %s: %llu\n", ranked[i].second.c_str(),
                  static_cast<unsigned long long>(ranked[i].first));
    out += buf;
  }
  return out;
}

std::string CampaignProfile::FormatHotForkSites(size_t n) const {
  std::vector<std::pair<uint64_t, std::string>> ranked;
  for (const auto& [site, created] : fork_site_states) {
    if (created > 0) {
      ranked.emplace_back(created, site);
    }
  }
  std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
    if (a.first != b.first) {
      return a.first > b.first;
    }
    return a.second < b.second;
  });
  std::string out = "hot fork sites (states spawned across passes):\n";
  if (ranked.empty()) {
    return out + "  none observed\n";
  }
  for (size_t i = 0; i < ranked.size() && i < n; ++i) {
    char buf[128];
    std::snprintf(buf, sizeof(buf), "  %s: %llu\n", ranked[i].second.c_str(),
                  static_cast<unsigned long long>(ranked[i].first));
    out += buf;
  }
  return out;
}

}  // namespace ddt::obs
