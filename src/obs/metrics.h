// Metrics registry: lock-cheap counters, gauges, and fixed-bucket histograms,
// registered by name.
//
// The observability counterpart of EngineStats: where EngineStats is a closed
// struct the engine owns, the registry is open — any layer (solver, thread
// pool, journal, supervisor) registers instruments by name at first use and
// updates them with a single relaxed atomic op. A registry is snapshot-able
// at any time, and snapshots merge across campaign passes the same way
// EngineStats::Accumulate folds per-pass stats (counters sum, gauges keep the
// high-water mark, histogram buckets add), so a 30-pass campaign produces one
// mergeable metrics view no matter how many worker threads ran the passes.
//
// Cost model:
//   - registration (name lookup) takes a mutex — do it once, keep the handle;
//   - updates through a handle are one relaxed atomic RMW, safe from any
//     thread, never blocking;
//   - a null registry pointer is the runtime kill switch: every instrumented
//     call site holds a possibly-null handle and skips in one branch.
//
// The subsystem deliberately depends on nothing above the C++ standard
// library, so even src/support can link against it.
#ifndef SRC_OBS_METRICS_H_
#define SRC_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace ddt::obs {

// Monotonic event count. Updates are relaxed atomic adds.
class Counter {
 public:
  void Add(uint64_t delta = 1) { value_.fetch_add(delta, std::memory_order_relaxed); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

// Instantaneous level (queue depth, live states). Tracks the high-water mark
// alongside the current value so a snapshot taken after the fact still shows
// how deep the queue ever got.
class Gauge {
 public:
  void Set(int64_t value) {
    value_.store(value, std::memory_order_relaxed);
    int64_t seen = max_.load(std::memory_order_relaxed);
    while (value > seen && !max_.compare_exchange_weak(seen, value, std::memory_order_relaxed)) {
    }
  }
  void Add(int64_t delta) { Set(value_.fetch_add(delta, std::memory_order_relaxed) + delta); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  int64_t max() const { return max_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
  std::atomic<int64_t> max_{0};
};

// Fixed-bucket histogram. Bucket upper bounds are set at registration and
// immutable afterwards; Observe is a binary search plus one relaxed add, so
// concurrent observers never contend on a lock. The implicit final bucket is
// +inf (observations above the last bound).
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void Observe(double value);

  const std::vector<double>& bounds() const { return bounds_; }
  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  // Sum is stored in fixed point (value * 1000 rounded) so it can be a plain
  // atomic integer; three decimal places is plenty for millisecond metrics.
  double sum() const { return static_cast<double>(sum_milli_.load(std::memory_order_relaxed)) / 1000.0; }
  uint64_t bucket_count(size_t i) const { return buckets_[i].load(std::memory_order_relaxed); }
  size_t num_buckets() const { return buckets_.size(); }

  // A sensible default for operation latencies in milliseconds: 0.01 ms up
  // to 10 s in roughly-logarithmic steps.
  static std::vector<double> LatencyBucketsMs();

 private:
  std::vector<double> bounds_;                 // ascending upper bounds
  std::deque<std::atomic<uint64_t>> buckets_;  // bounds_.size() + 1 (last = +inf)
  std::atomic<uint64_t> count_{0};
  std::atomic<int64_t> sum_milli_{0};
};

// Point-in-time copy of every instrument in a registry, detached from the
// atomics. Snapshots are plain data: they merge, serialize, and compare.
struct MetricsSnapshot {
  struct GaugeValue {
    int64_t value = 0;
    int64_t max = 0;
  };
  struct HistogramValue {
    std::vector<double> bounds;
    std::vector<uint64_t> buckets;  // bounds.size() + 1
    uint64_t count = 0;
    double sum = 0;
  };

  // std::map keeps name order deterministic in ToJson regardless of
  // registration order.
  std::map<std::string, uint64_t> counters;
  std::map<std::string, GaugeValue> gauges;
  std::map<std::string, HistogramValue> histograms;

  bool empty() const { return counters.empty() && gauges.empty() && histograms.empty(); }

  // Folds `other` in: counters and histogram buckets sum, gauges keep the
  // max (a campaign-level gauge is a high-water mark across passes).
  // Histograms with mismatched bounds keep this snapshot's buckets and only
  // fold count/sum — mismatch means two code versions disagree, and losing
  // bucket resolution beats crashing a report path.
  void Merge(const MetricsSnapshot& other);

  // Stable, human-diffable JSON (sorted keys, no timestamps).
  std::string ToJson() const;
};

// Named instrument registry. Thread-safe; instruments live as long as the
// registry (handles are stable pointers into deques).
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter* counter(const std::string& name);
  Gauge* gauge(const std::string& name);
  // Registers with the given bounds on first use; later calls for the same
  // name return the existing histogram (bounds are fixed at registration).
  Histogram* histogram(const std::string& name, std::vector<double> bounds);

  MetricsSnapshot Snapshot() const;

 private:
  mutable std::mutex mu_;
  std::deque<Counter> counter_storage_;
  std::deque<Gauge> gauge_storage_;
  std::deque<Histogram> histogram_storage_;
  std::map<std::string, Counter*> counters_;
  std::map<std::string, Gauge*> gauges_;
  std::map<std::string, Histogram*> histograms_;
};

}  // namespace ddt::obs

#endif  // SRC_OBS_METRICS_H_
