// Per-pass profiler: attributes wall time to coarse phases so a campaign
// report can say *where* a slow pass spent its time.
//
// Phases are deliberately coarse — the probes sit at natural boundaries that
// are already expensive (a SAT query, a block decode, a journal flush), never
// inside the per-instruction interpreter loop. Time not claimed by any timed
// phase is attributed to kInterpret by subtraction at the end of an engine
// run, which keeps the hottest path probe-free: the documented accuracy
// trade-off is that per-instruction checker hooks count as interpret time.
//
// A PassProfile's phase accumulators are atomics, so the engine, solver, and
// journal can add from whatever thread runs the pass; a null PassProfile
// pointer disables every probe in one branch (the same kill-switch convention
// as the metrics registry), and -DDDT_OBS_DISABLED removes the clock reads at
// compile time.
#ifndef SRC_OBS_PROFILER_H_
#define SRC_OBS_PROFILER_H_

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace ddt::obs {

enum class Phase : size_t {
  kDecode = 0,    // translation-cache block decode
  kInterpret,     // instruction execution + everything not claimed below
  kSolver,        // SAT queries (bit-blast + search + model extraction)
  kChecker,       // checker dispatch at kernel events and state end
  kJournal,       // campaign-journal serialize + append + flush
  kMerge,         // campaign result merging
  kSuperblock,    // tier-2 superblock compilation (hot-region lowering)
  kNumPhases,
};

inline constexpr size_t kNumPhases = static_cast<size_t>(Phase::kNumPhases);

const char* PhaseName(Phase phase);

// Plain-data copy of a profile (merge/format without touching atomics).
struct PhaseBreakdown {
  std::array<uint64_t, kNumPhases> ns = {};
  uint64_t total_ns = 0;  // full pass wall time

  uint64_t phase_ns(Phase phase) const { return ns[static_cast<size_t>(phase)]; }
  // "solver 62%, interpret 31%, decode 4%" — phases above 0.5%, descending.
  std::string Summary() const;
};

class PassProfile {
 public:
  PassProfile() {
    for (auto& slot : ns_) {
      slot.store(0, std::memory_order_relaxed);
    }
  }
  PassProfile(const PassProfile&) = delete;
  PassProfile& operator=(const PassProfile&) = delete;

  void Add(Phase phase, uint64_t ns) {
    ns_[static_cast<size_t>(phase)].fetch_add(ns, std::memory_order_relaxed);
  }

  // Called once at the end of an engine run: records the pass's total wall
  // time and attributes the remainder (total minus every timed phase other
  // than kInterpret) to kInterpret.
  void SetTotalAndDeriveInterpret(uint64_t total_ns);

  PhaseBreakdown Snapshot() const;

 private:
  std::array<std::atomic<uint64_t>, kNumPhases> ns_;
  std::atomic<uint64_t> total_ns_{0};
};

// RAII phase timer; null-safe and compiled out under DDT_OBS_DISABLED.
class ScopedPhase {
 public:
  ScopedPhase(PassProfile* profile, Phase phase) : profile_(profile), phase_(phase) {
#ifndef DDT_OBS_DISABLED
    if (profile_ != nullptr) {
      start_ = std::chrono::steady_clock::now();
    }
#endif
  }
  ~ScopedPhase() {
#ifndef DDT_OBS_DISABLED
    if (profile_ != nullptr) {
      profile_->Add(phase_, static_cast<uint64_t>(
                                std::chrono::duration_cast<std::chrono::nanoseconds>(
                                    std::chrono::steady_clock::now() - start_)
                                    .count()));
    }
#endif
  }
  ScopedPhase(const ScopedPhase&) = delete;
  ScopedPhase& operator=(const ScopedPhase&) = delete;

 private:
  PassProfile* profile_;
  Phase phase_;
#ifndef DDT_OBS_DISABLED
  std::chrono::steady_clock::time_point start_;
#endif
};

// Campaign-level profile: one breakdown per pass plus cross-pass hot-site
// tallies. Formatting lives here so the campaign report and the examples
// print identical sections. Everything in this struct is wall-time derived
// and belongs in the *volatile* part of a report only.
struct CampaignProfile {
  struct PassEntry {
    size_t index = 0;
    std::string label;  // "baseline" or the plan label
    double wall_ms = 0;
    bool quarantined = false;
    PhaseBreakdown phases;
  };

  std::vector<PassEntry> passes;
  // Fault-site hotness: class name -> total occurrences observed across all
  // passes (how often that kernel-API boundary was crossed eligibly — the
  // SysFuSS-style "which boundary crossings are hot" view).
  std::map<std::string, uint64_t> fault_site_occurrences;
  // Fork-site hotness: pre-formatted "pc=XXXXXXXX fault=LABEL" key -> states
  // spawned from that site across all passes. Keys are formatted by the
  // campaign merger (this layer must not depend on engine types).
  std::map<std::string, uint64_t> fork_site_states;

  bool empty() const { return passes.empty(); }

  // Top-N slowest passes with their phase breakdowns, one line each.
  std::string FormatTopPasses(size_t n) const;
  // Fault sites ranked by observed occurrences.
  std::string FormatHotFaultSites(size_t n) const;
  // Fork sites ranked by states spawned.
  std::string FormatHotForkSites(size_t n) const;
};

}  // namespace ddt::obs

#endif  // SRC_OBS_PROFILER_H_
