// Intel 82801AA AC'97 analogue, seeded with the single Table-2 defect:
//   - race condition: during playback, the interrupt handler can cause a
//     BSOD. The Write entry point raises the `playing` flag *before*
//     publishing the buffer pointer; an interrupt landing in that window
//     makes the ISR dereference a null buffer pointer in interrupt context.
#include "src/drivers/asm_lib.h"
#include "src/drivers/corpus.h"

namespace ddt {

std::string Ac97Source() {
  std::string source = R"(
  .driver "ac97"
  .entry driver_entry
  .import MosStallExecution
  .code

  .func driver_entry
    la r0, entry_table
    kcall MosRegisterDriver
    ret

  ; --------------------------------------------------------------- Initialize
  .func ep_init
    push {r4, r5, lr}
    subi sp, sp, 8
    la r5, adapter
    mov r0, sp
    kcall MosOpenConfiguration
    ld32 r4, [sp+0]
    mov r0, r4
    la r1, name_volume
    addi r2, sp, 0
    kcall MosReadConfiguration
    bnz r0, ac_no_volume
    ld32 r1, [sp+4]
    andi r1, r1, 0x7F                ; volume properly clamped
    st32 [r5+12], r1
  ac_no_volume:
    mov r0, r4
    kcall MosCloseConfiguration
    ; DMA buffer
    movi r0, 2048
    movi r1, 0x41433937              ; 'AC97'
    kcall MosAllocatePoolWithTag
    bz r0, ac_init_failed
    st32 [r5+0], r0                  ; adapter.dma_buffer (kept private)
    movi r0, 0
    kcall MosMapIoSpace
    st32 [r5+4], r0
    la r0, isr
    la r1, adapter
    kcall MosRegisterInterrupt
    addi sp, sp, 8
    movi r0, 0
    pop {r4, r5, lr}
    ret
  ac_init_failed:
    addi sp, sp, 8
    movi r0, 0xC000009A
    pop {r4, r5, lr}
    ret

  ; ---------------------------------------------------------------------- Halt
  .func ep_halt
    push {r4, lr}
    la r4, adapter
    kcall MosDeregisterInterrupt
    ld32 r0, [r4+0]
    kcall MosFreePool
    movi r0, 0
    pop {r4, lr}
    ret

  ; ------------------------------------------------------------------ Write
  .func ep_write                   ; (buf, len) -> status  (playback)
    push {r4, r5, lr}
    mov r4, r0
    mov r5, r1
    la r2, adapter
    ; BUG: playback is marked live before the buffer pointer is published
    movi r1, 1
    st32 [r2+8], r1                  ; playing = 1
    ; program the codec sample rate -- the interrupt window
    ld32 r1, [r2+4]
    st32 [r1+4], r5
    movi r0, 10
    kcall MosStallExecution
    ; ...only now is the buffer pointer published
    la r2, adapter
    ld32 r1, [r2+0]
    st32 [r2+16], r1                 ; cur_buffer = dma_buffer
    ; copy a sample and start the DMA engine
    ld32 r3, [r4+0]
    st32 [r1+0], r3
    ld32 r1, [r2+4]
    movi r3, 1
    st32 [r1+8], r3
    movi r0, 0
    pop {r4, r5, lr}
    ret

  ; ------------------------------------------------------------------- Stop
  .func ep_stop                    ; () -> status  (correct ordering)
    push lr
    la r2, adapter
    st32 [r2+8], zr                  ; playing = 0 first...
    st32 [r2+16], zr                 ; ...then retire the buffer pointer
    movi r0, 0
    pop lr
    ret

  ; -------------------------------------------------------------------- ISR
  .func isr                        ; (ctx)
    push {r4, lr}
    mov r4, r0
    ld32 r1, [r4+4]
    ld32 r2, [r1+0]                  ; codec status
    andi r3, r2, 1
    bz r3, acisr_done
    ld32 r3, [r4+8]                  ; playing?
    bz r3, acisr_done
    ; refill path: read the current sample and feed the codec FIFO
    ld32 r2, [r4+16]                 ; cur_buffer -- NULL in the race window
    ld32 r3, [r2+0]                  ; BSOD here when the race hits
    ld32 r1, [r4+4]
    st32 [r1+12], r3
    ld32 r3, [r4+20]
    addi r3, r3, 1
    st32 [r4+20], r3                 ; ISR-private refill count
  acisr_done:
    pop {r4, lr}
    ret

  ; ------------------------------------------------------------------- Diag
  .func ep_diag
    push lr
    call ac_diag_dispatch
    pop lr
    ret
)";
  source += GenerateDiagDispatch("ac_diag", 80);
  source += GenerateFillerFunctions("ac_diag", 80, 0xAC97, 4, 6);
  source += R"(
  .data
  adapter:               ; +0 dma_buffer, +4 mmio, +8 playing, +12 volume,
    .space 32            ; +16 cur_buffer, +20 isr refills
  name_volume:
    .asciiz "Volume"
    .align 4
)";
  source += EntryTable("ep_init", "ep_halt", "", "", "", "ep_write", "ep_stop", "ep_diag");
  return source;
}

}  // namespace ddt
