// Shared assembly-generation helpers for the driver corpus.
//
// The corpus drivers are written in DVM32 assembly; the parts that are pure
// bulk — diagnostic helper functions reachable from the Diag entry point —
// are generated here. They serve three purposes:
//   - they scale each driver's code size and function count so that the
//     corpus preserves Table 1's relative ordering,
//   - the Diag dispatch tree branches on a symbolic request code, so the
//     engine discovers the helpers gradually (the stepped coverage growth of
//     Figures 2 and 3),
//   - the helpers are branchy diamonds over concrete values: dynamic
//     execution walks one side, while the SDV-style static path enumeration
//     must walk all of them (the honest cost asymmetry behind the §5.1
//     SDV-vs-DDT timing comparison).
#ifndef SRC_DRIVERS_ASM_LIB_H_
#define SRC_DRIVERS_ASM_LIB_H_

#include <cstdint>
#include <string>

namespace ddt {

// Generates `count` pure-register helper functions named <prefix>0 ...
// <prefix>N-1, each declared with .func (they count as driver functions).
// Helpers take a seed in r0, compute through a few branch diamonds, and
// return a value in r0. They never touch memory.
// min/max_diamonds control per-function length: many short functions raise
// the function count, few long ones raise the code size (Table 1 has both
// orderings and they disagree between drivers).
std::string GenerateFillerFunctions(const std::string& prefix, int count, uint64_t seed,
                                    int min_diamonds = 1, int max_diamonds = 3,
                                    int first_index = 0);

// Generates the body of a Diag entry point: a binary dispatch tree over the
// (symbolic) request code in r0 that calls the matching helper function and
// returns its result. The tree label prefix must be unique per driver.
std::string GenerateDiagDispatch(const std::string& prefix, int count);

// The standard 8-slot entry table; pass empty strings for absent entries.
std::string EntryTable(const std::string& init, const std::string& halt,
                       const std::string& query, const std::string& set,
                       const std::string& send, const std::string& write,
                       const std::string& stop, const std::string& diag);

}  // namespace ddt

#endif  // SRC_DRIVERS_ASM_LIB_H_
