// Ensoniq AudioPCI analogue, seeded with the four Table-2 defects:
//   1. segfault — the driver *checks* the MosAllocatePoolWithTag result, but
//      the error-handling path still stores a status code through the null
//      pointer ("checks whether the allocation failed, but later uses the
//      returned null pointer on an error handling path"),
//   2. segfault — the MosNewInterruptSync status is never checked; on
//      failure the driver dereferences the (null) sync object,
//   3. race — the initialization routine keeps programming shared DMA state
//      after the ISR is live, with no lock (race in the init routine),
//   4. race — playback (Write) and the ISR both advance the ring position
//      word with no common lock (races with interrupts while playing audio).
#include "src/drivers/asm_lib.h"
#include "src/drivers/corpus.h"

namespace ddt {

std::string AudiopciSource() {
  std::string source = R"(
  .driver "audiopci"
  .entry driver_entry
  .import MosZeroMemory
  .import MosStallExecution
  .import MosMoveMemory
  .import MosGetCurrentIrql
  .import MosRaiseIrql
  .import MosLowerIrql
  .import MosLog
  .import MosReadPciConfig
  .import MosCancelTimer
  .import MosInitializeTimer
  .code

  .func driver_entry
    la r0, entry_table
    kcall MosRegisterDriver
    ret

  ; --------------------------------------------------------------- Initialize
  .func ep_init
    push {r4, r5, r6, lr}
    subi sp, sp, 8
    la r5, adapter
    ; sound buffer
    movi r0, 1024
    movi r1, 0x534E4442              ; 'SNDB'
    kcall MosAllocatePoolWithTag
    mov r4, r0
    bnz r4, au_buf_ok
    ; BUG 1: error handling path writes a status code into the buffer header
    movi r1, 0xC000009A
    st32 [r4+8], r1                  ; r4 == 0 -> write into the null page
    addi sp, sp, 8
    movi r0, 0xC000009A
    pop {r4, r5, r6, lr}
    ret
  au_buf_ok:
    st32 [r5+0], r4                  ; adapter.buffer
    ; interrupt synchronization object
    mov r0, sp
    kcall MosNewInterruptSync
    ; BUG 2: status ignored; on failure sp[0] holds NULL
    ld32 r6, [sp+0]
    ld32 r1, [r6+0]                  ; dereference the sync object header
    st32 [r5+4], r6                  ; adapter.sync
    ; map codec registers
    movi r0, 0
    kcall MosMapIoSpace
    st32 [r5+8], r0
    ; interrupt goes live here...
    la r0, isr
    la r1, adapter
    kcall MosRegisterInterrupt
    ; ...and the codec needs time to power up
    movi r0, 100
    kcall MosStallExecution
    ; BUG 3: ...but init keeps programming the shared DMA state, no lock
    movi r1, 1
    st32 [r5+16], r1                 ; dma_state = PRIMED (also written by ISR)
    ld32 r1, [r5+8]
    movi r2, 0x10
    st32 [r1+4], r2                  ; start codec
    addi sp, sp, 8
    movi r0, 0
    pop {r4, r5, r6, lr}
    ret

  ; ---------------------------------------------------------------------- Halt
  .func ep_halt
    push {r4, lr}
    la r4, adapter
    kcall MosDeregisterInterrupt
    ld32 r0, [r4+0]
    kcall MosFreePool
    movi r0, 0
    pop {r4, lr}
    ret

  ; ------------------------------------------------------------------ Write
  .func ep_write                   ; (buf, len) -> status  (playback)
    push {r4, r5, lr}
    mov r4, r0
    mov r5, r1
    ; copy one sample word into the sound buffer (bounds fine)
    la r2, adapter
    ld32 r3, [r2+0]
    ld32 r1, [r4+0]
    st32 [r3+0], r1
    ; BUG 4: advance the ring position with no lock (the ISR advances it too)
    ld32 r1, [r2+20]
    addi r1, r1, 4
    andi r1, r1, 0x3FF
    st32 [r2+20], r1                 ; ring_pos
    ; kick the DMA engine
    ld32 r3, [r2+8]
    st32 [r3+8], r5
    movi r0, 0
    pop {r4, r5, lr}
    ret

  ; ------------------------------------------------------------------- Stop
  .func ep_stop                    ; () -> status  (correct code)
    push lr
    la r0, lock
    kcall MosAcquireSpinLock
    la r2, adapter
    st32 [r2+24], zr                 ; playing = 0 (locked)
    la r0, lock
    kcall MosReleaseSpinLock
    movi r0, 0
    pop lr
    ret

  ; -------------------------------------------------------------------- ISR
  .func isr                        ; (ctx)
    push {r4, lr}
    mov r4, r0
    ld32 r1, [r4+8]
    ld32 r2, [r1+0]                  ; codec interrupt status
    andi r3, r2, 1
    bz r3, aisr_done
    ; BUG 3 partner: acknowledge by rewriting the shared DMA state, no lock
    movi r3, 2
    st32 [r4+16], r3                 ; dma_state = RUNNING
    ; BUG 4 partner: advance the ring position, no lock
    ld32 r3, [r4+20]
    addi r3, r3, 4
    andi r3, r3, 0x3FF
    st32 [r4+20], r3
  aisr_done:
    pop {r4, lr}
    ret

  ; ------------------------------------------------------------------- Diag
  .func ep_diag
    push lr
    call au_diag_dispatch
    pop lr
    ret
)";
  source += GenerateDiagDispatch("au_diag", 150);
  source += GenerateFillerFunctions("au_diag", 150, 0xAD10, 1, 1);
  source += R"(
  .data
  adapter:               ; +0 buffer, +4 sync, +8 mmio, +16 dma_state,
    .space 32            ; +20 ring_pos, +24 playing
  lock:
    .space 4
)";
  source += EntryTable("ep_init", "ep_halt", "", "", "", "ep_write", "ep_stop", "ep_diag");
  return source;
}

}  // namespace ddt
