#include "src/drivers/corpus.h"

#include "src/support/check.h"

namespace ddt {

namespace {

PciDescriptor MakePci(uint16_t vendor, uint16_t device, uint8_t revision, uint8_t irq,
                      std::initializer_list<uint32_t> bar_sizes, const std::string& pretty) {
  PciDescriptor pci;
  pci.vendor_id = vendor;
  pci.device_id = device;
  pci.revision = revision;
  pci.irq_line = irq;
  for (uint32_t size : bar_sizes) {
    pci.bars.push_back(PciBar{size});
  }
  pci.pretty_name = pretty;
  return pci;
}

CorpusDriver BuildDriver(const std::string& name, const std::string& pretty,
                         DriverClass driver_class, const std::string& source,
                         const PciDescriptor& pci, std::vector<ExpectedBug> expected) {
  Result<AssembledDriver> assembled = Assemble(source);
  DDT_CHECK_MSG(assembled.ok(), assembled.error().c_str());
  CorpusDriver driver;
  driver.name = name;
  driver.pretty_name = pretty;
  driver.driver_class = driver_class;
  driver.assembled = assembled.take();
  driver.image = driver.assembled.image;
  driver.pci = pci;
  driver.expected = std::move(expected);
  return driver;
}

std::vector<CorpusDriver> BuildCorpus() {
  std::vector<CorpusDriver> corpus;

  corpus.push_back(BuildDriver(
      "pro1000", "Intel Pro/1000", DriverClass::kNetwork, Pro1000Source(),
      MakePci(0x8086, 0x100E, 2, 11, {0x1000, 0x100}, "Intel Pro/1000"),
      {
          ExpectedBug{BugType::kMemoryLeak, "memory leak on failed initialization",
                      "Memory leak on failed initialization", /*needs_annotations=*/true,
                      /*needs_interrupts=*/false},
      }));

  corpus.push_back(BuildDriver(
      "pro100", "Intel Pro/100 (DDK)", DriverClass::kNetwork, Pro100Source(),
      MakePci(0x8086, 0x1229, 8, 11, {0x1000}, "Intel Pro/100"),
      {
          ExpectedBug{BugType::kKernelCrash, "KeReleaseSpinLock",
                      "KeReleaseSpinLock called from DPC routine", /*needs_annotations=*/false,
                      /*needs_interrupts=*/true},
      }));

  corpus.push_back(BuildDriver(
      "ac97", "Intel 82801AA AC97", DriverClass::kAudio, Ac97Source(),
      MakePci(0x8086, 0x2415, 1, 10, {0x400}, "Intel 82801AA AC97"),
      {
          ExpectedBug{BugType::kRaceCondition, "null pointer",
                      "During playback, the interrupt handler can cause a BSOD",
                      /*needs_annotations=*/false, /*needs_interrupts=*/true},
      }));

  corpus.push_back(BuildDriver(
      "audiopci", "Ensoniq AudioPCI", DriverClass::kAudio, AudiopciSource(),
      MakePci(0x1274, 0x5000, 1, 10, {0x400}, "Ensoniq AudioPCI"),
      {
          ExpectedBug{BugType::kSegfault, "write of 4 bytes",
                      "Driver crashes when ExAllocatePoolWithTag returns NULL",
                      /*needs_annotations=*/true, /*needs_interrupts=*/false},
          ExpectedBug{BugType::kSegfault, "read of 4 bytes",
                      "Driver crashes when PcNewInterruptSync fails",
                      /*needs_annotations=*/true, /*needs_interrupts=*/false},
          ExpectedBug{BugType::kRaceCondition, "0x", "Race condition in the initialization "
                      "routine", /*needs_annotations=*/false, /*needs_interrupts=*/true},
          ExpectedBug{BugType::kRaceCondition, "0x", "Various race conditions with interrupts "
                      "while playing audio", /*needs_annotations=*/false,
                      /*needs_interrupts=*/true},
      }));

  corpus.push_back(BuildDriver(
      "pcnet", "AMD PCNet", DriverClass::kNetwork, PcnetSource(),
      MakePci(0x1022, 0x2000, 3, 9, {0x200}, "AMD PCNet"),
      {
          ExpectedBug{BugType::kResourceLeak, "MosAllocateMemoryWithTag",
                      "Driver does not free memory allocated with NdisAllocateMemoryWithTag",
                      /*needs_annotations=*/true, /*needs_interrupts=*/false},
          ExpectedBug{BugType::kResourceLeak, "packets",
                      "Driver does not free packets and buffers on failed initialization",
                      /*needs_annotations=*/true, /*needs_interrupts=*/false},
      }));

  corpus.push_back(BuildDriver(
      "rtl8029", "RTL8029", DriverClass::kNetwork, Rtl8029Source(),
      MakePci(0x10EC, 0x8029, 0, 9, {0x100}, "RTL8029"),
      {
          ExpectedBug{BugType::kResourceLeak, "MosCloseConfiguration",
                      "Driver does not always call NdisCloseConfiguration when initialization "
                      "fails", /*needs_annotations=*/true, /*needs_interrupts=*/false},
          ExpectedBug{BugType::kMemoryCorruption, "symbolic address",
                      "Driver does not check the range for MaximumMulticastList registry "
                      "parameter", /*needs_annotations=*/true, /*needs_interrupts=*/false},
          ExpectedBug{BugType::kRaceCondition, "timer",
                      "Interrupt arriving before timer initialization leads to BSOD",
                      /*needs_annotations=*/false, /*needs_interrupts=*/true},
          ExpectedBug{BugType::kSegfault, "symbolic address",
                      "Crash when getting an unexpected OID in QueryInformation",
                      /*needs_annotations=*/true, /*needs_interrupts=*/false},
          ExpectedBug{BugType::kSegfault, "null pointer",
                      "Crash when getting an unexpected OID in SetInformation",
                      /*needs_annotations=*/true, /*needs_interrupts=*/false},
      }));

  return corpus;
}

}  // namespace

const std::vector<CorpusDriver>& Corpus() {
  static const std::vector<CorpusDriver>* corpus = new std::vector<CorpusDriver>(BuildCorpus());
  return *corpus;
}

const CorpusDriver& CorpusDriverByName(const std::string& name) {
  for (const CorpusDriver& driver : Corpus()) {
    if (driver.name == name) {
      return driver;
    }
  }
  DDT_UNREACHABLE("unknown corpus driver");
}

}  // namespace ddt
