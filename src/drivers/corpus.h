// The evaluation driver corpus: six synthetic closed-source binary drivers
// modeled on the six Windows drivers of Table 1, each seeded with the same
// kinds (and counts) of defects the paper reports in Table 2, plus the SDV
// sample driver used in the §5.1 tool comparison.
//
// Each driver is written in DVM32 assembly and assembled to an opaque DDF
// image at first use; DDT only ever sees the binary. ExpectedBug records the
// ground truth the benchmarks assert against (what kind of bug, a keyword
// its title must contain, and which DDT features are needed to find it —
// the annotations ablation keys off that).
#ifndef SRC_DRIVERS_CORPUS_H_
#define SRC_DRIVERS_CORPUS_H_

#include <string>
#include <vector>

#include "src/engine/bug_report.h"
#include "src/hw/pci.h"
#include "src/kernel/exerciser.h"
#include "src/vm/assembler.h"
#include "src/vm/image.h"

namespace ddt {

struct ExpectedBug {
  BugType type;
  // Substring the bug title must contain (identifies the specific defect).
  std::string keyword;
  // Paper's one-line description (Table 2 "Description" column).
  std::string description;
  // Finding it requires annotations (alloc-failure / registry / entry-arg).
  bool needs_annotations = false;
  // Finding it requires symbolic interrupts.
  bool needs_interrupts = false;
};

struct CorpusDriver {
  std::string name;          // corpus id ("rtl8029")
  std::string pretty_name;   // Table 1 name ("RTL8029")
  DriverClass driver_class;
  DriverImage image;
  AssembledDriver assembled;  // symbols etc. (benchmarks introspect sizes)
  PciDescriptor pci;
  std::vector<ExpectedBug> expected;
};

// The six Table 1/2 drivers, assembled and ready. Built once, cached.
const std::vector<CorpusDriver>& Corpus();

// Lookup by corpus id; aborts on unknown name.
const CorpusDriver& CorpusDriverByName(const std::string& name);

// Assembly sources (one function per driver; exposed for tests and the
// source-availability column of Table 1 — pro100 mirrors the DDK driver
// whose source the paper had).
std::string Rtl8029Source();
std::string PcnetSource();
std::string Pro1000Source();
std::string Pro100Source();
std::string AudiopciSource();
std::string Ac97Source();

// SDV comparison driver (§5.1): the base sample with 8 seeded sample bugs,
// and the variant with 5 additional synthetic bugs (deadlock, out-of-order
// release, extra release, forgotten release, wrong-IRQL call) plus the
// correlated-branch pattern that draws a false positive from the static
// analyzer.
std::string SdvSampleSource(bool with_synthetic_bugs);
DriverImage SdvSampleImage(bool with_synthetic_bugs);
PciDescriptor SdvSamplePci();
std::vector<ExpectedBug> SdvSampleExpected(bool with_synthetic_bugs);

}  // namespace ddt

#endif  // SRC_DRIVERS_CORPUS_H_
