// The SDV comparison driver (§5.1).
//
// Base variant ("sample driver shipped with SDV"): eight seeded rule
// violations, each in its own diagnostic handler — all eight are within the
// static analyzer's rule automata AND dynamically reachable, so both tools
// find them; the interesting comparison is time.
//
// Synthetic variant adds the paper's five injected bugs plus the pattern
// that draws the static analyzer into its one false positive:
//   sdv8/sdv9   deadlock      — AB/BA lock-order inversion across two
//                               handlers (per-function analysis can't see it)
//   sdv10       out-of-order  — non-LIFO release (the lock automaton only
//                               checks balance)
//   sdv11       extra release — the lock pointer is loaded from memory, so
//                               the analyzer cannot tell which lock it is
//   sdv12       forgotten     — lock held at return (both tools find it)
//   sdv13       wrong IRQL    — allocation at DEVICE level (both find it)
//   sdv14       FP pattern    — a release guarded by an arithmetic-derived
//                               flag: infeasible path for execution, real
//                               path for the condition-blind analyzer
#include "src/drivers/asm_lib.h"
#include "src/drivers/corpus.h"
#include "src/support/check.h"

namespace ddt {

std::string SdvSampleSource(bool with_synthetic_bugs) {
  std::string source = R"(
  .driver "sdv_sample"
  .entry driver_entry
  .code

  .func driver_entry
    la r0, entry_table
    kcall MosRegisterDriver
    ret

  .func ep_init
    push {r4, lr}
    la r4, adapter
    ; publish the lock pointer used by the indirect-release bug
    la r1, lockE
    st32 [r4+0], r1
    movi r0, 0
    pop {r4, lr}
    ret

  .func ep_halt
    movi r0, 0
    ret

  ; ---- the 8 sample bugs -------------------------------------------------
  .func sdv0                     ; release of a lock that was never acquired
    push lr
    la r0, lockA
    kcall MosReleaseSpinLock
    movi r0, 0
    pop lr
    ret

  .func sdv1                     ; double acquisition (self-deadlock)
    push lr
    la r0, lockA
    kcall MosAcquireSpinLock
    la r0, lockA
    kcall MosAcquireSpinLock
    la r0, lockA
    kcall MosReleaseSpinLock
    movi r0, 0
    pop lr
    ret

  .func sdv2                     ; plain acquire, Dpr release
    push lr
    la r0, lockA
    kcall MosAcquireSpinLock
    la r0, lockA
    kcall MosDprReleaseSpinLock
    movi r0, 0
    pop lr
    ret

  .func sdv3                     ; forgotten release
    push lr
    la r0, lockB
    kcall MosAcquireSpinLock
    movi r0, 0
    pop lr
    ret

  .func sdv4                     ; pageable API while holding a spinlock
    push lr
    subi sp, sp, 8
    la r0, lockA
    kcall MosAcquireSpinLock
    mov r0, sp
    kcall MosOpenConfiguration
    la r0, lockA
    kcall MosReleaseSpinLock
    addi sp, sp, 8
    movi r0, 0
    pop lr
    ret

  .func sdv5                     ; forgotten release (different lock)
    push lr
    la r0, lockC
    kcall MosAcquireSpinLock
    movi r0, 0
    pop lr
    ret

  .func sdv6                     ; Dpr acquire (at DISPATCH), plain release
    push lr
    movi r0, 2
    kcall MosRaiseIrql
    la r0, lockD
    kcall MosDprAcquireSpinLock
    la r0, lockD
    kcall MosReleaseSpinLock
    movi r0, 0
    kcall MosLowerIrql
    movi r0, 0
    pop lr
    ret

  .func sdv7                     ; pool allocation above DISPATCH
    push lr
    movi r0, 5
    kcall MosRaiseIrql
    movi r0, 64
    kcall MosAllocatePool
    movi r0, 0
    kcall MosLowerIrql
    movi r0, 0
    pop lr
    ret
)";

  if (with_synthetic_bugs) {
    source += R"(
  ; ---- the 5 injected synthetic bugs + the FP pattern ---------------------
  .func sdv8                     ; deadlock, part 1: A then B
    push lr
    la r0, lockA
    kcall MosAcquireSpinLock
    la r0, lockB
    kcall MosAcquireSpinLock
    la r0, lockB
    kcall MosReleaseSpinLock
    la r0, lockA
    kcall MosReleaseSpinLock
    movi r0, 0
    pop lr
    ret

  .func sdv9                     ; deadlock, part 2: B then A
    push lr
    la r0, lockB
    kcall MosAcquireSpinLock
    la r0, lockA
    kcall MosAcquireSpinLock
    la r0, lockA
    kcall MosReleaseSpinLock
    la r0, lockB
    kcall MosReleaseSpinLock
    movi r0, 0
    pop lr
    ret

  .func sdv10                    ; out-of-order (non-LIFO) release
    push lr
    la r0, lockA
    kcall MosAcquireSpinLock
    la r0, lockB
    kcall MosAcquireSpinLock
    la r0, lockA
    kcall MosReleaseSpinLock
    la r0, lockB
    kcall MosReleaseSpinLock
    movi r0, 0
    pop lr
    ret

  .func sdv11                    ; extra release through a memory-held pointer
    push lr
    la r1, adapter
    ld32 r0, [r1+0]              ; lockE, but the analyzer can't know that
    kcall MosReleaseSpinLock
    movi r0, 0
    pop lr
    ret

  .func sdv12                    ; forgotten release (injected)
    push lr
    la r0, lockF
    kcall MosAcquireSpinLock
    movi r0, 0
    pop lr
    ret

  .func sdv13                    ; kernel call at wrong IRQ level (injected)
    push lr
    movi r0, 5
    kcall MosRaiseIrql
    movi r0, 128
    kcall MosAllocatePoolWithTag
    movi r0, 0
    kcall MosLowerIrql
    movi r0, 0
    pop lr
    ret

  .func sdv14                    ; false-positive bait: guarded acquire
    push lr
    movi r3, 5
    muli r3, r3, 3
    seqi r3, r3, 15              ; always 1, but opaque to the analyzer
    bz r3, sdv14_skip            ; never taken at run time
    la r0, lockA
    kcall MosAcquireSpinLock
  sdv14_skip:
    la r0, lockA
    kcall MosReleaseSpinLock     ; infeasible "release unacquired" for SDV
    movi r0, 0
    pop lr
    ret

  .func sdv15
    movi r0, 0
    ret
)";
  } else {
    source += R"(
  ; ---- benign handlers in the base variant --------------------------------
  .func sdv8
    movi r0, 0
    ret
  .func sdv9
    movi r0, 0
    ret
  .func sdv10
    movi r0, 0
    ret
  .func sdv11
    movi r0, 0
    ret
  .func sdv12
    movi r0, 0
    ret
  .func sdv13
    movi r0, 0
    ret
  .func sdv14
    movi r0, 0
    ret
  .func sdv15
    movi r0, 0
    ret
)";
  }

  source += R"(
  .func ep_diag
    push lr
    call sdv_dispatch
    pop lr
    ret
)";
  source += GenerateDiagDispatch("sdv", 96);
  source += GenerateFillerFunctions("sdv", 80, 0x5D5, 15, 19, /*first_index=*/16);
  source += R"(
  .data
  adapter:
    .space 16
  lockA:
    .space 4
  lockB:
    .space 4
  lockC:
    .space 4
  lockD:
    .space 4
  lockE:
    .space 4
  lockF:
    .space 4
)";
  source += EntryTable("ep_init", "ep_halt", "", "", "", "", "", "ep_diag");
  return source;
}

DriverImage SdvSampleImage(bool with_synthetic_bugs) {
  Result<AssembledDriver> assembled = Assemble(SdvSampleSource(with_synthetic_bugs));
  DDT_CHECK_MSG(assembled.ok(), assembled.error().c_str());
  return assembled.value().image;
}

PciDescriptor SdvSamplePci() {
  PciDescriptor pci;
  pci.vendor_id = 0x5D5;
  pci.device_id = 0x0001;
  pci.revision = 1;
  pci.irq_line = 5;
  pci.bars.push_back(PciBar{0x100});
  pci.pretty_name = "SDV sample device";
  return pci;
}

std::vector<ExpectedBug> SdvSampleExpected(bool with_synthetic_bugs) {
  std::vector<ExpectedBug> expected = {
      // The 8 sample bugs (dynamic signatures).
      {BugType::kKernelCrash, "not held", "release of unacquired spinlock (sample)", true, false},
      {BugType::kDeadlock, "recursive", "double acquisition (sample)", true, false},
      {BugType::kKernelCrash, "wrong variant", "plain acquire / Dpr release (sample)", true,
       false},
      {BugType::kApiMisuse, "still held", "forgotten release lockB (sample)", true, false},
      {BugType::kKernelCrash, "MosOpenConfiguration", "pageable API under spinlock (sample)",
       true, false},
      {BugType::kApiMisuse, "still held", "forgotten release lockC (sample)", true, false},
      {BugType::kKernelCrash, "KeReleaseSpinLock", "Dpr acquire / plain release (sample)", true,
       false},
      {BugType::kKernelCrash, "MosAllocatePool called", "allocation above DISPATCH (sample)",
       true, false},
  };
  if (with_synthetic_bugs) {
    expected.push_back({BugType::kDeadlock, "lock-order inversion",
                        "AB/BA deadlock (synthetic)", true, false});
    expected.push_back({BugType::kApiMisuse, "out-of-order",
                        "out-of-order release (synthetic)", true, false});
    expected.push_back({BugType::kKernelCrash, "not held",
                        "extra release of non-acquired spinlock (synthetic)", true, false});
    expected.push_back({BugType::kApiMisuse, "still held",
                        "forgotten release lockF (synthetic)", true, false});
    expected.push_back({BugType::kKernelCrash, "MosAllocatePoolWithTag called",
                        "kernel call at wrong IRQ level (synthetic)", true, false});
  }
  return expected;
}

}  // namespace ddt
