#include "src/drivers/asm_lib.h"

#include <vector>

#include "src/support/rng.h"
#include "src/support/strings.h"

namespace ddt {

std::string GenerateFillerFunctions(const std::string& prefix, int count, uint64_t seed,
                                    int min_diamonds, int max_diamonds, int first_index) {
  Rng rng(seed);
  std::string out;
  for (int i = first_index; i < first_index + count; ++i) {
    out += StrFormat("  .func %s%d\n", prefix.c_str(), i);
    // Branch diamonds over values derived from the (concrete at run time)
    // seed argument. Registers r1..r3 are scratch (caller-clobbered).
    int diamonds = min_diamonds +
                   static_cast<int>(rng.NextBelow(
                       static_cast<uint64_t>(max_diamonds - min_diamonds + 1)));
    out += StrFormat("    addi r1, r0, %u\n", static_cast<uint32_t>(rng.NextBelow(255)) + 1);
    for (int d = 0; d < diamonds; ++d) {
      uint32_t mask = static_cast<uint32_t>(rng.NextBelow(15)) + 1;
      out += StrFormat("    andi r2, r1, %u\n", mask);
      out += StrFormat("    bz r2, %s%d_d%d_else\n", prefix.c_str(), i, d);
      switch (rng.NextBelow(4)) {
        case 0:
          out += StrFormat("    muli r1, r1, %u\n", static_cast<uint32_t>(rng.NextBelow(7)) + 3);
          break;
        case 1:
          out += StrFormat("    xori r1, r1, 0x%x\n", rng.Next32() & 0xFFFF);
          break;
        case 2:
          out += "    shli r1, r1, 1\n";
          break;
        default:
          out += StrFormat("    addi r1, r1, %u\n", static_cast<uint32_t>(rng.NextBelow(97)));
          break;
      }
      out += StrFormat("    br %s%d_d%d_join\n", prefix.c_str(), i, d);
      out += StrFormat("  %s%d_d%d_else:\n", prefix.c_str(), i, d);
      switch (rng.NextBelow(3)) {
        case 0:
          out += "    lshri r1, r1, 1\n";
          break;
        case 1:
          out += StrFormat("    ori r1, r1, 0x%x\n", rng.Next32() & 0xFF);
          break;
        default:
          out += StrFormat("    subi r1, r1, %u\n", static_cast<uint32_t>(rng.NextBelow(13)));
          break;
      }
      out += StrFormat("  %s%d_d%d_join:\n", prefix.c_str(), i, d);
    }
    out += "    mov r0, r1\n";
    out += "    ret\n";
  }
  return out;
}

std::string GenerateDiagDispatch(const std::string& prefix, int count) {
  // Recursive binary tree over r0 in [0, count); out-of-range codes return a
  // not-supported status. r4 holds the code across the call (callee-saved by
  // convention; helpers only use r0..r3).
  std::string out;
  out += StrFormat("  .func %s_dispatch\n", prefix.c_str());
  out += "    push {r4, lr}\n";
  out += "    mov r4, r0\n";
  out += StrFormat("    sltui r1, r4, %d\n", count);
  out += StrFormat("    bnz r1, %s_tree_0_%d\n", prefix.c_str(), count);
  out += "    pop {r4, lr}\n";
  out += "    movi r0, 0xC0000010\n";  // STATUS_INVALID_DEVICE_REQUEST
  out += "    ret\n";

  // Emit tree nodes: node covering [lo, hi).
  struct Range {
    int lo;
    int hi;
  };
  std::vector<Range> work{{0, count}};
  while (!work.empty()) {
    Range r = work.back();
    work.pop_back();
    out += StrFormat("  %s_tree_%d_%d:\n", prefix.c_str(), r.lo, r.hi);
    if (r.hi - r.lo == 1) {
      out += StrFormat("    mov r0, r4\n");
      out += StrFormat("    call %s%d\n", prefix.c_str(), r.lo);
      out += "    pop {r4, lr}\n";
      out += "    ret\n";
      continue;
    }
    int mid = (r.lo + r.hi) / 2;
    out += StrFormat("    sltui r1, r4, %d\n", mid);
    out += StrFormat("    bnz r1, %s_tree_%d_%d\n", prefix.c_str(), r.lo, mid);
    out += StrFormat("    br %s_tree_%d_%d\n", prefix.c_str(), mid, r.hi);
    work.push_back({r.lo, mid});
    work.push_back({mid, r.hi});
  }
  return out;
}

std::string EntryTable(const std::string& init, const std::string& halt,
                       const std::string& query, const std::string& set,
                       const std::string& send, const std::string& write,
                       const std::string& stop, const std::string& diag) {
  auto slot = [](const std::string& label) {
    return label.empty() ? std::string("    .word 0\n") : StrFormat("    .word %s\n", label.c_str());
  };
  std::string out = "  entry_table:\n";
  out += slot(init);
  out += slot(halt);
  out += slot(query);
  out += slot(set);
  out += slot(send);
  out += slot(write);
  out += slot(stop);
  out += slot(diag);
  return out;
}

}  // namespace ddt
