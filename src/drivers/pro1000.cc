// Intel Pro/1000 analogue: the largest corpus driver (Table 1's 168 KB /
// 525 functions), seeded with one Table-2 defect:
//   - memory leak on failed initialization: when the transmit descriptor
//     ring allocation fails, the already-allocated receive ring is never
//     freed.
// The driver is otherwise well-behaved and deliberately broad: many
// registry parameters, a large OID surface, and a big diagnostic helper
// farm reachable from the Diag entry point.
#include "src/drivers/asm_lib.h"
#include "src/drivers/corpus.h"

namespace ddt {

std::string Pro1000Source() {
  std::string source = R"(
  .driver "pro1000"
  .entry driver_entry
  .import MosZeroMemory
  .import MosMoveMemory
  .import MosGetCurrentIrql
  .import MosRaiseIrql
  .import MosLowerIrql
  .import MosLog
  .import MosReadPciConfig
  .import MosCancelTimer
  .import MosIndicateReceive
  .code

  .func driver_entry
    la r0, entry_table
    kcall MosRegisterDriver
    ret

  ; ---------------------------------------------------------------- helpers
  .func read_registry_param        ; (handle, name, default) -> value
    push {r4, lr}
    subi sp, sp, 8
    mov r4, r2                     ; default
    addi r2, sp, 0
    kcall MosReadConfiguration
    bnz r0, rr_default
    ld32 r0, [sp+4]
    addi sp, sp, 8
    pop {r4, lr}
    ret
  rr_default:
    mov r0, r4
    addi sp, sp, 8
    pop {r4, lr}
    ret

  ; --------------------------------------------------------------- Initialize
  .func ep_init
    push {r4, r5, r6, lr}
    subi sp, sp, 8
    la r5, adapter
    ; configuration: three parameters, handle closed on every path
    mov r0, sp
    kcall MosOpenConfiguration
    ld32 r4, [sp+0]
    ld32 r0, [sp+0]
    la r1, name_txbufs
    movi r2, 16
    call read_registry_param
    andi r0, r0, 0x1F              ; properly clamped before use
    st32 [r5+0], r0
    mov r0, r4
    la r1, name_rxbufs
    movi r2, 16
    call read_registry_param
    andi r0, r0, 0x1F
    st32 [r5+4], r0
    mov r0, r4
    la r1, name_speed
    movi r2, 1000
    call read_registry_param
    st32 [r5+8], r0
    mov r0, r4
    kcall MosCloseConfiguration
    ; receive descriptor ring
    movi r0, 1024
    kcall MosAllocatePool
    bz r0, init_fail_plain
    st32 [r5+12], r0               ; adapter.rx_ring
    ; transmit descriptor ring
    movi r0, 1024
    kcall MosAllocatePool
    bz r0, init_fail_tx            ; BUG: this path leaks the receive ring
    st32 [r5+16], r0               ; adapter.tx_ring
    ; map BAR0 and BAR1
    movi r0, 0
    kcall MosMapIoSpace
    st32 [r5+20], r0
    movi r0, 1
    kcall MosMapIoSpace
    st32 [r5+24], r0
    ; read the hardware revision (annotations make this symbolic)
    movi r0, 8
    addi r1, sp, 4
    movi r2, 1
    kcall MosReadPciConfig
    ld8u r1, [sp+4]
    st32 [r5+28], r1
    ; old silicon needs a workaround path
    sltui r2, r1, 3
    bz r2, init_new_silicon
    ld32 r2, [r5+20]
    movi r3, 1
    st32 [r2+64], r3               ; enable legacy workaround
    br init_hw_done
  init_new_silicon:
    ld32 r2, [r5+20]
    movi r3, 2
    st32 [r2+64], r3
  init_hw_done:
    ; hook interrupt; arm the link-check timer (correct order)
    la r0, timer_block
    la r1, link_timer
    la r2, adapter
    kcall MosInitializeTimer
    la r0, isr
    la r1, adapter
    kcall MosRegisterInterrupt
    la r0, timer_block
    movi r1, 200
    kcall MosSetTimer
    ; clear both rings
    ld32 r0, [r5+12]
    movi r1, 1024
    kcall MosZeroMemory
    ld32 r0, [r5+16]
    movi r1, 1024
    kcall MosZeroMemory
    addi sp, sp, 8
    movi r0, 0
    pop {r4, r5, r6, lr}
    ret
  init_fail_tx:
    ; BUG: returns without freeing adapter.rx_ring
    addi sp, sp, 8
    movi r0, 0xC000009A
    pop {r4, r5, r6, lr}
    ret
  init_fail_plain:
    addi sp, sp, 8
    movi r0, 0xC000009A
    pop {r4, r5, r6, lr}
    ret

  ; ---------------------------------------------------------------------- Halt
  .func ep_halt
    push {r4, lr}
    la r4, adapter
    la r0, timer_block
    kcall MosCancelTimer
    kcall MosDeregisterInterrupt
    ld32 r0, [r4+16]
    kcall MosFreePool
    ld32 r0, [r4+12]
    kcall MosFreePool
    movi r0, 0
    pop {r4, lr}
    ret

  ; ----------------------------------------------------------- QueryInformation
  .func ep_query_info              ; (oid, buf, len) -> status  (correct code)
    push lr
    seqi r3, r0, 0x00010106
    bnz r3, gq_frame
    seqi r3, r0, 0x00010107
    bnz r3, gq_speed
    seqi r3, r0, 0x00010102
    bnz r3, gq_addr
    seqi r3, r0, 0x00010103
    bnz r3, gq_mcast
    seqi r3, r0, 0x01010101
    bnz r3, gq_perm
    movi r0, 0xC0000010
    pop lr
    ret
  gq_frame:
    movi r2, 9014                  ; jumbo frames
    st32 [r1+0], r2
    movi r0, 0
    pop lr
    ret
  gq_speed:
    la r2, adapter
    ld32 r2, [r2+8]
    st32 [r1+0], r2
    movi r0, 0
    pop lr
    ret
  gq_addr:
    movi r2, 0x11223344
    st32 [r1+0], r2
    movi r0, 0
    pop lr
    ret
  gq_mcast:
    la r2, adapter
    ld32 r2, [r2+0]
    st32 [r1+0], r2
    movi r0, 0
    pop lr
    ret
  gq_perm:
    movi r2, 0x8086DEAD
    st32 [r1+0], r2
    movi r0, 0
    pop lr
    ret

  ; ------------------------------------------------------------- SetInformation
  .func ep_set_info                ; (oid, buf, len) -> status  (correct code)
    push lr
    seqi r3, r0, 0x00010103
    bz r3, gs_reject
    sltui r3, r2, 4
    bnz r3, gs_reject
    ld32 r3, [r1+0]
    la r2, adapter
    st32 [r2+32], r3
    movi r0, 0
    pop lr
    ret
  gs_reject:
    movi r0, 0xC0000010
    pop lr
    ret

  ; ------------------------------------------------------------------- Send
  .func ep_send                    ; (packet, length) -> status
    push {r4, r5, r6, lr}
    mov r4, r0
    mov r6, r1
    ld32 r5, [r4+0]
    ; copy the head of the payload into the tx ring slot 0 (correct bounds)
    la r0, lock
    kcall MosAcquireSpinLock
    la r2, adapter
    ld32 r0, [r2+16]               ; tx ring
    mov r1, r5
    movi r2, 16
    kcall MosMoveMemory
    la r2, adapter
    ld32 r1, [r2+36]
    addi r1, r1, 1
    st32 [r2+36], r1               ; tx count (locked)
    la r0, lock
    kcall MosReleaseSpinLock
    ; kick the DMA engine
    la r2, adapter
    ld32 r2, [r2+20]
    st32 [r2+0x10], r6
    movi r0, 0
    pop {r4, r5, r6, lr}
    ret

  ; -------------------------------------------------------------------- ISR
  .func isr                        ; (ctx)
    push {r4, lr}
    mov r4, r0
    ld32 r1, [r4+20]
    ld32 r2, [r1+0xC0]             ; interrupt cause register
    bz r2, gisr_done
    ld32 r3, [r4+40]               ; ISR-private cause accumulator
    or r3, r3, r2
    st32 [r4+40], r3
    la r0, pro1000_dpc
    la r1, adapter
    kcall MosQueueDpc
  gisr_done:
    pop {r4, lr}
    ret

  ; -------------------------------------------------------------------- DPC
  .func pro1000_dpc                ; (ctx)  -- correct Dpr pairing
    push {r4, lr}
    mov r4, r0
    la r0, lock
    kcall MosDprAcquireSpinLock
    ld32 r1, [r4+36]
    addi r1, r1, 1
    st32 [r4+36], r1
    la r0, lock
    kcall MosDprReleaseSpinLock
    pop {r4, lr}
    ret

  ; ------------------------------------------------------------------ timer
  .func link_timer                 ; (ctx)
    push {r4, lr}
    mov r4, r0
    ld32 r1, [r4+20]
    ld32 r2, [r1+8]                ; link status register
    andi r2, r2, 1
    la r0, lock
    kcall MosDprAcquireSpinLock
    st32 [r4+44], r2               ; link state (locked)
    la r0, lock
    kcall MosDprReleaseSpinLock
    pop {r4, lr}
    ret

  ; ------------------------------------------------------------------- Diag
  .func ep_diag
    push lr
    call e1k_diag_dispatch
    pop lr
    ret
)";
  source += GenerateDiagDispatch("e1k_diag", 320);
  source += GenerateFillerFunctions("e1k_diag", 320, 0xE1000, 3, 5);
  source += R"(
  .data
  adapter:               ; +0 txbufs, +4 rxbufs, +8 speed, +12 rx_ring,
    .space 64            ; +16 tx_ring, +20 bar0, +24 bar1, +28 rev,
                         ; +32 filter, +36 txcnt, +40 isr causes, +44 link
  lock:
    .space 4
  timer_block:
    .space 16
  name_txbufs:
    .asciiz "TransmitBuffers"
    .align 4
  name_rxbufs:
    .asciiz "ReceiveBuffers"
    .align 4
  name_speed:
    .asciiz "LinkSpeed"
    .align 4
)";
  source += EntryTable("ep_init", "ep_halt", "ep_query_info", "ep_set_info", "ep_send", "", "",
                       "ep_diag");
  return source;
}

}  // namespace ddt
