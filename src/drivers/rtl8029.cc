// RTL8029 analogue: the smallest corpus driver, seeded with the five Table-2
// defects the paper found in the real RTL8029 NDIS driver:
//   1. resource leak   — failed initialization skips MosCloseConfiguration
//   2. memory corruption — MaximumMulticastList registry value used as an
//                          unchecked index into a fixed 16-entry table
//   3. race condition  — an interrupt arriving after the ISR is registered
//                        but before the watchdog timer is initialized makes
//                        the ISR pass an uninitialized timer to the kernel
//                        (BSOD)
//   4. segfault        — QueryInformation indexes its handler table with the
//                        OID's low byte, unchecked
//   5. segfault        — SetInformation dereferences the (null) pointer at
//                        the head of the request buffer for unexpected OIDs
//
// Plus one *latent* defect only fault-injection campaigns reach (not part of
// the Table-2 set, invisible to plain runs): the MosMapIoSpace failure path
// also skips MosCloseConfiguration, and MosMapIoSpace never fails unless a
// FaultPlan makes it (§3.4).
//
// And two latent DMA-plane defects (Checkbochs-style, visible only with the
// DMA checker and/or the hardware fault plane):
//   7. SetInformation points the NIC's multicast DMA register straight at
//      the caller's request buffer -- pageable memory as a DMA target
//   8. Halt clears the receive-DMA base register and then frees rx_buffer;
//      correct in a friendly world, but if the device is surprise-removed
//      (or the clearing doorbell write is dropped) the NIC still owns the
//      buffer when MosFreePool runs
//
// Device MMIO register map (BAR0-relative): +0 interrupt status (read),
// +12 receive-DMA base (write), +16 tx FIFO (write), +20 multicast DMA
// pointer (write).
#include "src/drivers/asm_lib.h"
#include "src/drivers/corpus.h"

namespace ddt {

std::string Rtl8029Source() {
  std::string source = R"(
  .driver "rtl8029"
  .entry driver_entry
  .code

  .func driver_entry
    la r0, entry_table
    kcall MosRegisterDriver
    ret

  ; --------------------------------------------------------------- Initialize
  .func ep_init
    push {r4, r5, r6, lr}
    subi sp, sp, 16            ; [sp+0]=config handle out, [sp+4..11]=param blk
    mov r0, sp
    kcall MosOpenConfiguration
    ld32 r4, [sp+0]
    la r5, adapter
    st32 [r5+0], r4            ; adapter.config = handle
    ; read MaximumMulticastList; keep the kernel default on failure
    mov r0, r4
    la r1, name_mcast
    addi r2, sp, 4
    kcall MosReadConfiguration
    bnz r0, init_no_param
    ld32 r6, [sp+8]
    st32 [r5+8], r6            ; adapter.mcast_count = value (NOT validated)
  init_no_param:
    movi r0, 0
    kcall MosMapIoSpace
    bz r0, init_map_failed     ; dead in plain runs: BAR0 always maps
    st32 [r5+4], r0            ; adapter.mmio = BAR0
    ; receive buffer
    movi r0, 256
    movi r1, 0x52583239
    kcall MosAllocatePoolWithTag
    bz r0, init_alloc_failed
    st32 [r5+12], r0           ; adapter.rx_buffer
    ; program the receive-DMA base register: the NIC owns rx_buffer from here
    ld32 r1, [r5+4]
    st32 [r1+12], r0
    ; hook the interrupt
    la r0, isr
    la r1, adapter
    kcall MosRegisterInterrupt
    bnz r0, init_isr_failed
    ; let the NIC settle -- the interrupt is live, the watchdog is NOT yet
    ; initialized: this is the race window
    movi r0, 20
    kcall MosStallExecution
    la r0, timer_block
    la r1, watchdog
    la r2, adapter
    kcall MosInitializeTimer
    la r0, timer_block
    movi r1, 100
    kcall MosSetTimer
    ld32 r0, [r5+0]
    kcall MosCloseConfiguration
    addi sp, sp, 16
    movi r0, 0
    pop {r4, r5, r6, lr}
    ret
  init_alloc_failed:
    ; BUG 1: bail out without MosCloseConfiguration
    addi sp, sp, 16
    movi r0, 0xC000009A
    pop {r4, r5, r6, lr}
    ret
  init_map_failed:
    ; BUG 6 (latent): also skips MosCloseConfiguration, but this path is
    ; unreachable without injecting a MosMapIoSpace failure (§3.4 campaign)
    addi sp, sp, 16
    movi r0, 0xC000009A
    pop {r4, r5, r6, lr}
    ret
  init_isr_failed:
    ld32 r0, [r5+12]
    kcall MosFreePool
    ld32 r0, [r5+0]
    kcall MosCloseConfiguration
    addi sp, sp, 16
    movi r0, 0xC0000001
    pop {r4, r5, r6, lr}
    ret

  ; ---------------------------------------------------------------------- Halt
  .func ep_halt
    push {r4, lr}
    la r4, adapter
    la r0, timer_block
    kcall MosCancelTimer
    kcall MosDeregisterInterrupt
    ld32 r0, [r4+12]
    bz r0, halt_no_buffer
    ; BUG 8 (latent): quiesce receive DMA, then free. If the device was
    ; surprise-removed or the doorbell write is dropped, the NIC still owns
    ; rx_buffer when it is freed.
    ld32 r1, [r4+4]
    movi r2, 0
    st32 [r1+12], r2
    kcall MosFreePool
  halt_no_buffer:
    movi r0, 0
    pop {r4, lr}
    ret

  ; ----------------------------------------------------------- QueryInformation
  .func ep_query_info            ; (oid, buf, len) -> status
    push {r4, lr}
    ; BUG 4: assumes supported OIDs are dense in the low byte; no range check
    andi r4, r0, 0xFF
    shli r4, r4, 2
    la r2, query_table
    add r2, r2, r4
    ld32 r2, [r2+0]
    mov r0, r1
    callr r2
    pop {r4, lr}
    ret

  .func qh_frame_size
    movi r1, 1514
    st32 [r0+0], r1
    movi r0, 0
    ret
  .func qh_mac_low
    movi r1, 0x00AABBCC
    st32 [r0+0], r1
    movi r0, 0
    ret
  .func qh_mcast
    la r1, adapter
    ld32 r1, [r1+8]
    st32 [r0+0], r1
    movi r0, 0
    ret
  .func qh_link_state
    movi r1, 1
    st32 [r0+0], r1
    movi r0, 0
    ret
  .func qh_speed
    movi r1, 10
    st32 [r0+0], r1
    movi r0, 0
    ret
  .func qh_mtu
    movi r1, 1500
    st32 [r0+0], r1
    movi r0, 0
    ret
  .func qh_vendor
    movi r1, 0x10EC
    st32 [r0+0], r1
    movi r0, 0
    ret
  .func qh_stats
    la r1, adapter
    ld32 r1, [r1+16]
    st32 [r0+0], r1
    movi r0, 0
    ret

  ; ------------------------------------------------------------- SetInformation
  .func ep_set_info              ; (oid, buf, len) -> status
    push {r4, lr}
    seqi r4, r0, 0x00010103      ; OID_GEN_MULTICAST_LIST
    bz r4, set_unexpected
    ; BUG 2: mcast_count comes straight from the registry; table has 16 slots
    la r2, adapter
    ld32 r3, [r2+8]
    subi r3, r3, 1
    shli r3, r3, 2
    la r2, mcast_table
    add r2, r2, r3
    ld32 r3, [r1+0]
    st32 [r2+0], r3              ; out-of-bounds write for count > 16 (or 0)
    ; BUG 7 (latent): hand the NIC the multicast list by DMA pointer --
    ; straight from the caller's pageable request buffer
    la r2, adapter
    ld32 r2, [r2+4]
    st32 [r2+20], r1
    movi r0, 0
    pop {r4, lr}
    ret
  set_unexpected:
    ; BUG 5: assumes the request buffer begins with a parameter-block pointer
    ld32 r3, [r1+0]
    ld32 r3, [r3+0]              ; NULL dereference on zero-filled buffers
    movi r0, 0xC0000010
    pop {r4, lr}
    ret

  ; ------------------------------------------------------------------- Send
  .func ep_send                  ; (packet, length) -> status
    push {r4, r5, lr}
    mov r4, r0
    ld32 r5, [r4+0]              ; payload pointer
    ld32 r1, [r5+0]              ; first payload word
    la r2, adapter
    ld32 r2, [r2+4]
    st32 [r2+16], r1             ; tx FIFO register
    la r0, lock
    kcall MosAcquireSpinLock
    la r2, adapter
    ld32 r1, [r2+16]
    addi r1, r1, 1
    st32 [r2+16], r1             ; stats_tx under the lock
    la r0, lock
    kcall MosReleaseSpinLock
    movi r0, 0
    pop {r4, r5, lr}
    ret

  ; -------------------------------------------------------------------- ISR
  .func isr                      ; (ctx = adapter)
    push {r4, lr}
    mov r4, r0
    ld32 r1, [r4+4]              ; register base
    ld32 r2, [r1+0]              ; interrupt status (device-controlled)
    andi r3, r2, 1
    bz r3, isr_done
    ld32 r3, [r4+28]             ; ISR-private event counter
    addi r3, r3, 1
    st32 [r4+28], r3
    ; BUG 3: re-arm the watchdog -- BSOD if the timer was never initialized
    la r0, timer_block
    movi r1, 50
    kcall MosSetTimer
  isr_done:
    pop {r4, lr}
    ret

  ; ------------------------------------------------------------------ timer
  .func watchdog                 ; (ctx = adapter)
    push {r4, lr}
    mov r4, r0
    la r0, lock
    kcall MosDprAcquireSpinLock
    ld32 r1, [r4+16]
    addi r1, r1, 1
    st32 [r4+16], r1
    la r0, lock
    kcall MosDprReleaseSpinLock
    pop {r4, lr}
    ret

  ; ------------------------------------------------------------------- Diag
  .func ep_diag                  ; (code) -> status
    push lr
    call rtl_diag_dispatch
    pop lr
    ret
)";
  source += GenerateDiagDispatch("rtl_diag", 18);
  source += GenerateFillerFunctions("rtl_diag", 18, 0x8029, 1, 3);
  source += R"(
  .data
  adapter:                       ; +0 config, +4 mmio, +8 mcast_count,
    .space 32                    ; +12 rx_buffer, +16 stats_tx, +28 isr events
  lock:
    .space 4
  timer_block:
    .space 16
  name_mcast:
    .asciiz "MaximumMulticastList"
    .align 4
  query_table:
    .word qh_frame_size
    .word qh_mac_low
    .word qh_mcast
    .word qh_link_state
    .word qh_speed
    .word qh_mtu
    .word qh_vendor
    .word qh_stats
)";
  source += EntryTable("ep_init", "ep_halt", "ep_query_info", "ep_set_info", "ep_send", "", "",
                       "ep_diag");
  source += R"(
  mcast_table:                   ; 16 entries; deliberately last in .data
    .space 64
)";
  return source;
}

}  // namespace ddt
