// Intel Pro/100 (DDK sample) analogue — the one driver whose source the
// paper had. Seeded with the single Table-2 defect:
//   - kernel crash: the deferred procedure call (DPC) routine releases a
//     spinlock acquired with MosDprAcquireSpinLock using the plain
//     MosReleaseSpinLock — the NdisReleaseSpinLock-from-DPC bug that sets
//     the IRQL to the wrong value (prohibited by the documentation).
// Reaching it requires an interrupt (the ISR queues the DPC), so only
// interrupt-injecting testing finds it.
#include "src/drivers/asm_lib.h"
#include "src/drivers/corpus.h"

namespace ddt {

std::string Pro100Source() {
  std::string source = R"(
  .driver "pro100"
  .entry driver_entry
  .import MosZeroMemory
  .import MosMoveMemory
  .import MosGetCurrentIrql
  .import MosStallExecution
  .import MosReadPciConfig
  .import MosLog
  .import MosIndicateReceive
  .code

  .func driver_entry
    la r0, entry_table
    kcall MosRegisterDriver
    ret

  ; --------------------------------------------------------------- Initialize
  .func ep_init
    push {r4, r5, lr}
    subi sp, sp, 8
    la r5, adapter
    mov r0, sp
    kcall MosOpenConfiguration
    ld32 r4, [sp+0]
    mov r0, r4
    la r1, name_addr
    addi r2, sp, 0
    kcall MosReadConfiguration
    mov r0, r4
    kcall MosCloseConfiguration
    ; control/status block
    movi r0, 256
    movi r1, 0x43534231              ; 'CSB1'
    kcall MosAllocatePoolWithTag
    bz r0, f100_init_failed
    st32 [r5+0], r0
    movi r0, 0
    kcall MosMapIoSpace
    st32 [r5+4], r0
    la r0, isr
    la r1, adapter
    kcall MosRegisterInterrupt
    addi sp, sp, 8
    movi r0, 0
    pop {r4, r5, lr}
    ret
  f100_init_failed:
    addi sp, sp, 8
    movi r0, 0xC000009A
    pop {r4, r5, lr}
    ret

  ; ---------------------------------------------------------------------- Halt
  .func ep_halt
    push {r4, lr}
    la r4, adapter
    kcall MosDeregisterInterrupt
    ld32 r0, [r4+0]
    kcall MosFreePool
    movi r0, 0
    pop {r4, lr}
    ret

  ; ----------------------------------------------------------- QueryInformation
  .func ep_query_info              ; (oid, buf, len) -> status  (correct code)
    push lr
    seqi r3, r0, 0x00010106
    bnz r3, fq_frame
    seqi r3, r0, 0x00010107
    bnz r3, fq_speed
    movi r0, 0xC0000010
    pop lr
    ret
  fq_frame:
    movi r2, 1514
    st32 [r1+0], r2
    movi r0, 0
    pop lr
    ret
  fq_speed:
    movi r2, 100
    st32 [r1+0], r2
    movi r0, 0
    pop lr
    ret

  ; ------------------------------------------------------------- SetInformation
  .func ep_set_info                ; (correct code)
    push lr
    seqi r3, r0, 0x00010103
    bz r3, fs_reject
    sltui r3, r2, 4
    bnz r3, fs_reject
    ld32 r3, [r1+0]
    la r2, adapter
    st32 [r2+8], r3
    movi r0, 0
    pop lr
    ret
  fs_reject:
    movi r0, 0xC0000010
    pop lr
    ret

  ; ------------------------------------------------------------------- Send
  .func ep_send
    push {r4, r5, lr}
    mov r4, r0
    ld32 r5, [r4+0]
    ld32 r1, [r5+0]
    la r2, adapter
    ld32 r2, [r2+4]
    st32 [r2+4], r1                  ; tx command unit
    la r0, lock
    kcall MosAcquireSpinLock
    la r2, adapter
    ld32 r1, [r2+12]
    addi r1, r1, 1
    st32 [r2+12], r1
    la r0, lock
    kcall MosReleaseSpinLock
    movi r0, 0
    pop {r4, r5, lr}
    ret

  ; -------------------------------------------------------------------- ISR
  .func isr                        ; (ctx)
    push {r4, lr}
    mov r4, r0
    ld32 r1, [r4+4]
    ld32 r2, [r1+8]                  ; SCB status
    andi r3, r2, 0xF
    bz r3, fisr_done
    ld32 r3, [r4+16]
    addi r3, r3, 1
    st32 [r4+16], r3                 ; ISR-private event count
    la r0, pro100_dpc
    la r1, adapter
    kcall MosQueueDpc
  fisr_done:
    pop {r4, lr}
    ret

  ; -------------------------------------------------------------------- DPC
  .func pro100_dpc                 ; (ctx)
    push {r4, lr}
    mov r4, r0
    la r0, lock
    kcall MosDprAcquireSpinLock
    ld32 r1, [r4+12]
    addi r1, r1, 1
    st32 [r4+12], r1
    la r0, lock
    kcall MosReleaseSpinLock         ; BUG: wrong variant from a DPC routine
    pop {r4, lr}
    ret

  ; ------------------------------------------------------------------- Diag
  .func ep_diag
    push lr
    call f100_diag_dispatch
    pop lr
    ret
)";
  source += GenerateDiagDispatch("f100_diag", 45);
  source += GenerateFillerFunctions("f100_diag", 45, 0xF100, 10, 14);
  source += R"(
  .data
  adapter:               ; +0 csb, +4 mmio, +8 filter, +12 txcnt, +16 isr evt
    .space 32
  lock:
    .space 4
  name_addr:
    .asciiz "NetworkAddress"
    .align 4
)";
  source += EntryTable("ep_init", "ep_halt", "ep_query_info", "ep_set_info", "ep_send", "", "",
                       "ep_diag");
  return source;
}

}  // namespace ddt
