// AMD PCNet analogue, seeded with the two Table-2 resource leaks:
//   1. the adapter block allocated with MosAllocateMemoryWithTag is not
//      freed when the receive-ring allocation fails,
//   2. when the transmit-ring allocation fails, the driver frees the rings
//      and the adapter block but forgets its packets and packet pool.
// Everything else (locking, ISR/DPC split, unload) is deliberately correct.
#include "src/drivers/asm_lib.h"
#include "src/drivers/corpus.h"

namespace ddt {

std::string PcnetSource() {
  std::string source = R"(
  .driver "pcnet"
  .entry driver_entry
  .import MosZeroMemory
  .code

  .func driver_entry
    la r0, entry_table
    kcall MosRegisterDriver
    ret

  ; --------------------------------------------------------------- Initialize
  .func ep_init
    push {r4, r5, r6, lr}
    subi sp, sp, 16                 ; [sp+0]=out ptr scratch
    la r5, adapter
    ; adapter block (NDIS-style tagged allocation)
    mov r0, sp
    movi r1, 128
    movi r2, 0x41445054             ; 'ADPT'
    kcall MosAllocateMemoryWithTag
    bnz r0, init_fail_plain
    ld32 r4, [sp+0]
    st32 [r5+0], r4                 ; adapter.block
    ; packet pool with two packets
    mov r0, sp
    movi r1, 4
    kcall MosAllocatePacketPool
    bnz r0, init_fail_free_block
    ld32 r6, [sp+0]
    st32 [r5+4], r6                 ; adapter.pool
    mov r0, sp
    mov r1, r6
    kcall MosAllocatePacket
    bnz r0, init_fail_free_pool
    ld32 r1, [sp+0]
    st32 [r5+8], r1                 ; adapter.pkt0
    mov r0, sp
    mov r1, r6
    kcall MosAllocatePacket
    bnz r0, init_fail_free_pkt0
    ld32 r1, [sp+0]
    st32 [r5+12], r1                ; adapter.pkt1
    ; receive ring
    movi r0, 512
    movi r1, 0x52585247             ; 'RXRG'
    kcall MosAllocatePoolWithTag
    bz r0, init_fail_rx_ring
    st32 [r5+16], r0                ; adapter.rx_ring
    ; map registers, hook the interrupt
    movi r0, 0
    kcall MosMapIoSpace
    st32 [r5+20], r0
    la r0, isr
    la r1, adapter
    kcall MosRegisterInterrupt
    ; transmit ring
    movi r0, 512
    movi r1, 0x54585247             ; 'TXRG'
    kcall MosAllocatePoolWithTag
    bz r0, init_fail_tx_ring
    st32 [r5+24], r0                ; adapter.tx_ring
    ; zero the rings before enabling DMA
    ld32 r0, [r5+16]
    movi r1, 512
    kcall MosZeroMemory
    ld32 r0, [r5+24]
    movi r1, 512
    kcall MosZeroMemory
    addi sp, sp, 16
    movi r0, 0
    pop {r4, r5, r6, lr}
    ret

  init_fail_tx_ring:
    ; BUG 2: frees the rings and the adapter block, forgets packets + pool
    kcall MosDeregisterInterrupt
    ld32 r0, [r5+16]
    kcall MosFreePool
    ld32 r0, [r5+0]
    kcall MosFreeMemory
    addi sp, sp, 16
    movi r0, 0xC000009A
    pop {r4, r5, r6, lr}
    ret
  init_fail_rx_ring:
    ; BUG 1: frees the packets and pool but NOT the tagged adapter block
    ld32 r0, [r5+12]
    kcall MosFreePacket
    ld32 r0, [r5+8]
    kcall MosFreePacket
    ld32 r0, [r5+4]
    kcall MosFreePacketPool
    addi sp, sp, 16
    movi r0, 0xC000009A
    pop {r4, r5, r6, lr}
    ret
  init_fail_free_pkt0:
    ld32 r0, [r5+8]
    kcall MosFreePacket
  init_fail_free_pool:
    ld32 r0, [r5+4]
    kcall MosFreePacketPool
  init_fail_free_block:
    ld32 r0, [r5+0]
    kcall MosFreeMemory
  init_fail_plain:
    addi sp, sp, 16
    movi r0, 0xC000009A
    pop {r4, r5, r6, lr}
    ret

  ; ---------------------------------------------------------------------- Halt
  .func ep_halt
    push {r4, lr}
    la r4, adapter
    kcall MosDeregisterInterrupt
    ld32 r0, [r4+24]
    kcall MosFreePool
    ld32 r0, [r4+16]
    kcall MosFreePool
    ld32 r0, [r4+12]
    kcall MosFreePacket
    ld32 r0, [r4+8]
    kcall MosFreePacket
    ld32 r0, [r4+4]
    kcall MosFreePacketPool
    ld32 r0, [r4+0]
    kcall MosFreeMemory
    movi r0, 0
    pop {r4, lr}
    ret

  ; ----------------------------------------------------------- QueryInformation
  .func ep_query_info              ; (oid, buf, len) -> status  (correct code)
    push {r4, lr}
    seqi r4, r0, 0x00010106
    bnz r4, pq_frame
    seqi r4, r0, 0x00010107
    bnz r4, pq_speed
    seqi r4, r0, 0x00010102
    bnz r4, pq_addr
    movi r0, 0xC0000010              ; properly rejects unknown OIDs
    pop {r4, lr}
    ret
  pq_frame:
    movi r2, 1514
    st32 [r1+0], r2
    movi r0, 0
    pop {r4, lr}
    ret
  pq_speed:
    movi r2, 100
    st32 [r1+0], r2
    movi r0, 0
    pop {r4, lr}
    ret
  pq_addr:
    movi r2, 0x22334455
    st32 [r1+0], r2
    movi r0, 0
    pop {r4, lr}
    ret

  ; ------------------------------------------------------------- SetInformation
  .func ep_set_info                ; (oid, buf, len) -> status  (correct code)
    push lr
    seqi r3, r0, 0x00010103
    bz r3, ps_reject
    sltui r3, r2, 4                  ; properly validates the buffer length
    bnz r3, ps_reject
    ld32 r3, [r1+0]
    la r2, adapter
    st32 [r2+28], r3                 ; store the filter word
    movi r0, 0
    pop lr
    ret
  ps_reject:
    movi r0, 0xC0000010
    pop lr
    ret

  ; ------------------------------------------------------------------- Send
  .func ep_send                    ; (packet, length) -> status
    push {r4, r5, lr}
    mov r4, r0
    ld32 r5, [r4+0]
    ld32 r1, [r5+0]
    la r2, adapter
    ld32 r2, [r2+20]
    st32 [r2+16], r1                 ; tx FIFO
    la r0, lock
    kcall MosAcquireSpinLock
    la r2, adapter
    ld32 r1, [r2+32]
    addi r1, r1, 1
    st32 [r2+32], r1                 ; tx count (locked)
    la r0, lock
    kcall MosReleaseSpinLock
    movi r0, 0
    pop {r4, r5, lr}
    ret

  ; -------------------------------------------------------------------- ISR
  .func isr                        ; (ctx)
    push {r4, lr}
    mov r4, r0
    ld32 r1, [r4+20]
    ld32 r2, [r1+0]                  ; status register
    andi r3, r2, 3
    bz r3, pisr_done
    ld32 r3, [r4+36]                 ; ISR-private counter
    addi r3, r3, 1
    st32 [r4+36], r3
    la r0, pcnet_dpc
    la r1, adapter
    kcall MosQueueDpc
  pisr_done:
    pop {r4, lr}
    ret

  ; -------------------------------------------------------------------- DPC
  .func pcnet_dpc                  ; (ctx)  -- correct Dpr pairing
    push {r4, lr}
    mov r4, r0
    la r0, lock
    kcall MosDprAcquireSpinLock
    ld32 r1, [r4+32]
    addi r1, r1, 1
    st32 [r4+32], r1
    la r0, lock
    kcall MosDprReleaseSpinLock
    pop {r4, lr}
    ret

  ; ------------------------------------------------------------------- Diag
  .func ep_diag
    push lr
    call pcnet_diag_dispatch
    pop lr
    ret
)";
  source += GenerateDiagDispatch("pcnet_diag", 36);
  source += GenerateFillerFunctions("pcnet_diag", 36, 0x9C9E7, 1, 3);
  source += R"(
  .data
  adapter:                ; +0 block, +4 pool, +8 pkt0, +12 pkt1, +16 rx_ring,
    .space 48             ; +20 mmio, +24 tx_ring, +28 filter, +32 txcnt, +36 isr
  lock:
    .space 4
)";
  source += EntryTable("ep_init", "ep_halt", "ep_query_info", "ep_set_info", "ep_send", "", "",
                       "ep_diag");
  return source;
}

}  // namespace ddt
