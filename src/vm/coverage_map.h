// Stable coverage-novelty API over the engine's block-leader coverage.
//
// The engine tracks covered basic blocks as a set of leader pcs backed by a
// dense leader-slot table (one slot per aligned instruction). Consumers that
// reason about *novelty* — the fuzz corpus manager, promotion scoring, the
// coverage tests — need set algebra over those bitmaps, not access to
// BlockCache or Engine internals. CoverageBitmap is that boundary: a dense
// bitset keyed by instruction slot, with the snapshot/diff/popcount/
// fingerprint operations novelty decisions are made from, plus a hex
// serialization so bitmaps cross process boundaries (fuzz fleet result
// frames) and land in corpus files byte-reproducibly.
#ifndef SRC_VM_COVERAGE_MAP_H_
#define SRC_VM_COVERAGE_MAP_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace ddt {

class CoverageBitmap {
 public:
  CoverageBitmap() = default;
  explicit CoverageBitmap(size_t num_slots) { Resize(num_slots); }

  // Grows (never shrinks) to cover `num_slots` slots; new slots are clear.
  void Resize(size_t num_slots);

  size_t num_slots() const { return num_slots_; }
  bool empty() const { return Popcount() == 0; }

  // Sets `slot`; returns true iff it was newly set. Out-of-range slots grow
  // the bitmap (bitmaps from different-sized snapshots stay comparable).
  bool Set(size_t slot);
  bool Test(size_t slot) const;

  // Number of set slots.
  size_t Popcount() const;

  // Set-union in place; returns how many of `other`'s slots were new here.
  size_t OrWith(const CoverageBitmap& other);

  // How many slots `other` covers that this bitmap does not (the novelty of
  // `other` against this cumulative map), without mutating either.
  size_t NewlyCovered(const CoverageBitmap& other) const;

  // FNV-1a over the significant words (trailing zero words excluded, so
  // logically-equal bitmaps of different allocated sizes fingerprint alike).
  uint64_t Fingerprint() const;

  // Lowercase hex of the significant words, little-endian word order — the
  // wire/corpus form. FromHex accepts exactly what ToHex produces.
  std::string ToHex() const;
  static bool FromHex(const std::string& hex, CoverageBitmap* out);

  bool operator==(const CoverageBitmap& other) const {
    return Fingerprint() == other.Fingerprint() && Popcount() == other.Popcount();
  }

 private:
  // Words past the last set bit may exist (Resize growth); every operation
  // treats them as absent.
  size_t SignificantWords() const;

  std::vector<uint64_t> words_;
  size_t num_slots_ = 0;
};

}  // namespace ddt

#endif  // SRC_VM_COVERAGE_MAP_H_
