// Guest physical memory layout for the DVM32 machine.
//
// The guest address space is a flat 32-bit space carved into fixed windows,
// mirroring a simple PC-style map: a trapping null page, the driver image,
// the kernel heap, the driver stack, a device MMIO window, and a packet
// buffer arena. The memory-access checker keys its region permissions off
// these constants.
#ifndef SRC_VM_LAYOUT_H_
#define SRC_VM_LAYOUT_H_

#include <cstdint>

namespace ddt {

// [0, kNullGuardEnd): never mapped; dereferences here are null-pointer bugs.
inline constexpr uint32_t kNullGuardEnd = 0x0000'1000;

// Driver image (code, data, bss) is loaded here.
inline constexpr uint32_t kDriverImageBase = 0x0001'0000;
inline constexpr uint32_t kDriverImageLimit = 0x000F'0000;

// Kernel pool allocations handed to the driver.
inline constexpr uint32_t kKernelHeapBase = 0x0010'0000;
inline constexpr uint32_t kKernelHeapLimit = 0x0070'0000;

// Kernel-owned scratch structures passed to entry points (request buffers,
// configuration parameter blocks). Grants are issued per-call.
inline constexpr uint32_t kKernelScratchBase = 0x0070'0000;
inline constexpr uint32_t kKernelScratchLimit = 0x0080'0000;

// Driver stack: grows down from kDriverStackTop.
inline constexpr uint32_t kDriverStackBottom = 0x0080'0000;
inline constexpr uint32_t kDriverStackTop = 0x0081'0000;

// Device MMIO window (BAR mappings returned by MosMapIoSpace).
inline constexpr uint32_t kMmioBase = 0x0100'0000;
inline constexpr uint32_t kMmioLimit = 0x0101'0000;

// Packet payload arena.
inline constexpr uint32_t kPacketArenaBase = 0x0200'0000;
inline constexpr uint32_t kPacketArenaLimit = 0x0210'0000;

inline constexpr uint32_t kPageSize = 4096;

inline constexpr bool InRange(uint32_t addr, uint32_t base, uint32_t limit) {
  return addr >= base && addr < limit;
}

inline constexpr bool IsMmioAddr(uint32_t addr) { return InRange(addr, kMmioBase, kMmioLimit); }

}  // namespace ddt

#endif  // SRC_VM_LAYOUT_H_
