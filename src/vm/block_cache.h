// Decoded basic-block translation cache.
//
// The interpreter's original fetch path re-read 8 code bytes through the
// guest-memory COW chain and re-ran DecodeInstruction on every single step.
// QEMU — the substrate the paper builds on — instead decodes each basic block
// once into a translation cache and re-executes the decoded form. This is the
// analogous structure for DVM32: on first entry to a pc, the whole
// straight-line block is decoded into a dense array of Instructions with
// precomputed successor info; every later fetch of any pc in that block is a
// single array index.
//
// The cache is valid because driver images are immutable after load: the
// engine enforces a write barrier (no store may land in the code segment), so
// invalidation is never needed. Self-modifying or hostile images that attempt
// a code write are reported as bugs and the write is suppressed.
//
// The cache indexes instruction-aligned pcs only. A misaligned pc (possible
// only through a hostile image's entry table, since every architectural
// control transfer is alignment-checked) makes Lookup return nullptr and the
// engine falls back to byte-wise decode.
#ifndef SRC_VM_BLOCK_CACHE_H_
#define SRC_VM_BLOCK_CACHE_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "src/obs/profiler.h"
#include "src/vm/isa.h"

namespace ddt {

class BlockCache {
 public:
  // One decoded straight-line run: [begin, end) covers consecutively decoded
  // instructions starting at the block's entry pc and ending at the first
  // terminator, undecodable slot, or previously decoded region.
  struct DecodedBlock {
    uint32_t begin = 0;
    uint32_t end = 0;  // exclusive
    // Static successors of the final instruction (branch targets and/or the
    // fall-through pc). Empty for halt/invalid endings.
    std::vector<uint32_t> successors;
    // The final slot is an indirect transfer (jr/callr/ret): the dynamic
    // target is unknowable statically.
    bool has_indirect_successor = false;
    // The block ends because the slot at `end` does not decode.
    bool ends_invalid = false;

    size_t NumInstructions() const { return (end - begin) / kInstructionSize; }
  };

  struct Stats {
    uint64_t blocks_decoded = 0;
    uint64_t instructions_decoded = 0;
    uint64_t hits = 0;  // fetches served from already-decoded slots
    // Lookup probes that had to fall back to the byte-wise decoder: the pc was
    // out of range, misaligned, or the slot does not decode. These are exactly
    // the fetches no execution tier can ever serve from decoded form, so a
    // nonzero count makes tier-coverage gaps observable instead of silent.
    uint64_t fallback_fetches = 0;
    // Blocks whose execution counter crossed the superblock hotness threshold
    // (each block counts once, at the crossing).
    uint64_t hot_blocks = 0;
  };

  // Snapshots the (immutable) code bytes. `base` is the guest address of
  // code[0].
  BlockCache(const uint8_t* code, size_t size, uint32_t base);

  // Fetches the decoded instruction at `pc`, decoding the enclosing
  // straight-line block on first entry. Returns nullptr if `pc` is outside
  // the cacheable range, misaligned, or the bytes do not decode (the caller
  // distinguishes those cases by re-running the byte-wise path).
  const Instruction* Lookup(uint32_t pc);

  // Decodes (if needed) and returns the block entered at `pc`; nullptr under
  // the same conditions as Lookup. Blocks are keyed by their first-entry pc.
  const DecodedBlock* BlockAt(uint32_t pc);

  // Bumps the per-block execution counter for an entry at `pc` (the engine
  // calls this once per dispatcher entry at a block leader) and returns the
  // new count; 0 if `pc` has no slot. Crossing `hot_threshold` exactly once
  // increments Stats::hot_blocks — the superblock compiler's trigger signal.
  // The counter saturates so long campaigns cannot wrap it.
  uint32_t NoteBlockEntry(uint32_t pc, uint32_t hot_threshold);
  // The execution counter for the block entered at `pc` (0 if unsloted).
  uint32_t ExecCount(uint32_t pc) const;

  const Stats& stats() const { return stats_; }
  uint32_t base() const { return base_; }
  size_t num_slots() const { return slot_state_.size(); }

  // Optional profiler sink (non-owning, may be null): block decodes are
  // attributed to obs::Phase::kDecode. Cache hits stay probe-free — they are
  // the per-fetch hot path.
  void SetProfile(obs::PassProfile* profile) { profile_ = profile; }

 private:
  enum SlotState : uint8_t { kUnknown = 0, kDecoded = 1, kInvalid = 2 };

  // True if `pc` maps to an indexable slot (in range and aligned).
  bool SlotFor(uint32_t pc, size_t* slot) const;
  // Decodes the straight-line run starting at `slot` and records its block.
  void DecodeBlockFrom(size_t slot);

  std::vector<uint8_t> code_;  // private snapshot; immutability enforced upstream
  uint32_t base_ = 0;
  std::vector<Instruction> insns_;      // dense, one per slot
  std::vector<uint8_t> slot_state_;     // SlotState per slot
  std::vector<uint32_t> exec_counts_;   // per-slot block-entry counters
  std::unordered_map<uint32_t, DecodedBlock> blocks_;  // keyed by entry pc
  Stats stats_;
  obs::PassProfile* profile_ = nullptr;
};

}  // namespace ddt

#endif  // SRC_VM_BLOCK_CACHE_H_
