#include "src/vm/image.h"

#include <cstdio>
#include <cstring>

#include "src/support/strings.h"
#include "src/vm/guest_memory.h"

namespace ddt {

namespace {

struct DdfHeader {
  uint32_t magic;
  uint32_t entry_offset;
  uint32_t code_size;
  uint32_t data_size;
  uint32_t bss_size;
  uint32_t import_count;
  char name[32];
};
static_assert(sizeof(DdfHeader) == 56);

void AppendU32(std::vector<uint8_t>* out, uint32_t v) {
  out->push_back(static_cast<uint8_t>(v & 0xFF));
  out->push_back(static_cast<uint8_t>((v >> 8) & 0xFF));
  out->push_back(static_cast<uint8_t>((v >> 16) & 0xFF));
  out->push_back(static_cast<uint8_t>((v >> 24) & 0xFF));
}

uint32_t ReadU32(const uint8_t* p) {
  return static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
         (static_cast<uint32_t>(p[2]) << 16) | (static_cast<uint32_t>(p[3]) << 24);
}

}  // namespace

std::vector<uint8_t> DriverImage::Serialize() const {
  std::vector<uint8_t> out;
  out.reserve(BinaryFileSize());
  AppendU32(&out, kDdfMagic);
  AppendU32(&out, entry_offset);
  AppendU32(&out, static_cast<uint32_t>(code.size()));
  AppendU32(&out, static_cast<uint32_t>(data.size()));
  AppendU32(&out, bss_size);
  AppendU32(&out, static_cast<uint32_t>(imports.size()));
  char name_field[32] = {};
  std::strncpy(name_field, name.c_str(), sizeof(name_field) - 1);
  out.insert(out.end(), name_field, name_field + sizeof(name_field));
  for (const std::string& import : imports) {
    char field[kImportNameSize] = {};
    std::strncpy(field, import.c_str(), sizeof(field) - 1);
    out.insert(out.end(), field, field + sizeof(field));
  }
  out.insert(out.end(), code.begin(), code.end());
  out.insert(out.end(), data.begin(), data.end());
  return out;
}

Result<DriverImage> DriverImage::Parse(const std::vector<uint8_t>& bytes) {
  constexpr size_t kHeaderSize = 56;
  if (bytes.size() < kHeaderSize) {
    return Status::Error("DDF: truncated header");
  }
  const uint8_t* p = bytes.data();
  if (ReadU32(p) != kDdfMagic) {
    return Status::Error("DDF: bad magic");
  }
  DriverImage image;
  image.entry_offset = ReadU32(p + 4);
  uint32_t code_size = ReadU32(p + 8);
  uint32_t data_size = ReadU32(p + 12);
  image.bss_size = ReadU32(p + 16);
  uint32_t import_count = ReadU32(p + 20);
  char name_field[33] = {};
  std::memcpy(name_field, p + 24, 32);
  image.name = name_field;

  size_t offset = kHeaderSize;
  if (import_count > 4096) {
    return Status::Error("DDF: unreasonable import count");
  }
  for (uint32_t i = 0; i < import_count; ++i) {
    if (offset + kImportNameSize > bytes.size()) {
      return Status::Error("DDF: truncated import table");
    }
    char field[kImportNameSize + 1] = {};
    std::memcpy(field, p + offset, kImportNameSize);
    image.imports.emplace_back(field);
    offset += kImportNameSize;
  }
  if (offset + code_size + data_size > bytes.size()) {
    return Status::Error("DDF: truncated segments");
  }
  if (image.entry_offset >= code_size) {
    return Status::Error("DDF: entry point outside code segment");
  }
  image.code.assign(p + offset, p + offset + code_size);
  offset += code_size;
  image.data.assign(p + offset, p + offset + data_size);
  return image;
}

Status DriverImage::SaveFile(const std::string& path) const {
  std::vector<uint8_t> bytes = Serialize();
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Status::Error("cannot open for writing: " + path);
  }
  size_t written = std::fwrite(bytes.data(), 1, bytes.size(), f);
  std::fclose(f);
  if (written != bytes.size()) {
    return Status::Error("short write: " + path);
  }
  return Status::Ok();
}

Result<DriverImage> DriverImage::LoadFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::Error("cannot open: " + path);
  }
  std::fseek(f, 0, SEEK_END);
  long size = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  if (size < 0) {
    std::fclose(f);
    return Status::Error("cannot stat: " + path);
  }
  std::vector<uint8_t> bytes(static_cast<size_t>(size));
  size_t read = std::fread(bytes.data(), 1, bytes.size(), f);
  std::fclose(f);
  if (read != bytes.size()) {
    return Status::Error("short read: " + path);
  }
  return Parse(bytes);
}

size_t DriverImage::BinaryFileSize() const {
  return 56 + imports.size() * kImportNameSize + code.size() + data.size();
}

LoadedDriver InstallImage(GuestMemory* mem, const DriverImage& image, uint32_t base) {
  LoadedDriver loaded;
  loaded.name = image.name;
  loaded.base = base;
  loaded.code_begin = base;
  loaded.code_end = base + static_cast<uint32_t>(image.code.size());
  loaded.data_begin = loaded.code_end;
  loaded.data_end = loaded.data_begin + static_cast<uint32_t>(image.data.size()) + image.bss_size;
  loaded.entry_point = base + image.entry_offset;
  loaded.imports = image.imports;
  if (!image.code.empty()) {
    mem->InitWrite(loaded.code_begin, image.code.data(), image.code.size());
  }
  if (!image.data.empty()) {
    mem->InitWrite(loaded.data_begin, image.data.data(), image.data.size());
  }
  // bss is implicitly zero (untouched guest memory reads 0).
  return loaded;
}

}  // namespace ddt
