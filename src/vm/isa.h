// DVM32: the guest instruction set.
//
// A 32-bit load/store RISC with a fixed 8-byte instruction encoding:
//   byte 0: opcode    byte 1: rd    byte 2: ra    byte 3: rb
//   bytes 4..7: 32-bit little-endian immediate
//
// 16 general registers. r13 is the stack pointer (sp), r14 the link register
// (lr), r15 reads as zero and ignores writes (zr). Calling convention:
// arguments in r0..r3 (extras on the stack), return value in r0, r4..r12
// callee-saved.
//
// Driver binaries are genuinely opaque to DDT: the tester only ever sees the
// encoded bytes, exactly as the paper's DDT only sees x86 driver images.
#ifndef SRC_VM_ISA_H_
#define SRC_VM_ISA_H_

#include <cstdint>
#include <optional>
#include <string>

namespace ddt {

inline constexpr uint32_t kInstructionSize = 8;
inline constexpr int kNumRegisters = 16;
inline constexpr int kRegSp = 13;
inline constexpr int kRegLr = 14;
inline constexpr int kRegZero = 15;

enum class Opcode : uint8_t {
  kNop = 0,
  kHalt,
  // Moves.
  kMov,   // rd = ra
  kMovI,  // rd = imm
  // Three-register ALU.
  kAdd,
  kSub,
  kMul,
  kUDiv,
  kSDiv,
  kURem,
  kAnd,
  kOr,
  kXor,
  kShl,
  kLShr,
  kAShr,
  // Register-immediate ALU (rd = ra OP imm).
  kAddI,
  kSubI,
  kMulI,
  kUDivI,
  kAndI,
  kOrI,
  kXorI,
  kShlI,
  kLShrI,
  kAShrI,
  // Unary.
  kNot,  // rd = ~ra
  kNeg,  // rd = -ra
  // Comparison set (rd = (ra OP rb) ? 1 : 0).
  kSeq,
  kSne,
  kSltU,
  kSltS,
  kSleU,
  kSleS,
  // Comparison set vs. immediate (rd = (ra OP imm) ? 1 : 0).
  kSeqI,
  kSneI,
  kSltUI,
  kSltSI,
  kSleUI,
  kSleSI,
  // Loads: rd = mem[ra + imm], zero/sign extended.
  kLd8U,
  kLd8S,
  kLd16U,
  kLd16S,
  kLd32,
  // Stores: mem[ra + imm] = rb (low bits).
  kSt8,
  kSt16,
  kSt32,
  // Control flow. Branch targets are absolute addresses in imm.
  kBr,     // pc = imm
  kBz,     // if (ra == 0) pc = imm
  kBnz,    // if (ra != 0) pc = imm
  kJr,     // pc = ra
  kCall,   // lr = pc + 8; pc = imm
  kCallR,  // lr = pc + 8; pc = ra
  kRet,    // pc = lr
  // Stack.
  kPush,  // sp -= 4; mem[sp] = rb
  kPop,   // rd = mem[sp]; sp += 4
  // Kernel API call through the import table: imm = import index.
  kKCall,

  kOpcodeCount,
};

struct Instruction {
  Opcode opcode = Opcode::kNop;
  uint8_t rd = 0;
  uint8_t ra = 0;
  uint8_t rb = 0;
  uint32_t imm = 0;
};

// Encodes into exactly kInstructionSize bytes at `out`.
void EncodeInstruction(const Instruction& insn, uint8_t* out);

// Decodes from `bytes`; nullopt if the opcode byte is invalid or a register
// field is out of range.
std::optional<Instruction> DecodeInstruction(const uint8_t* bytes);

// True if the instruction ends a basic block (any control transfer).
bool IsTerminator(Opcode opcode);

// Mnemonic for an opcode ("add", "kcall", ...).
const char* OpcodeMnemonic(Opcode opcode);

// Opcode for a mnemonic; nullopt if unknown.
std::optional<Opcode> OpcodeFromMnemonic(const std::string& mnemonic);

// Register name: "r0".."r12", "sp", "lr", "zr".
std::string RegisterName(int reg);

// Parses a register name; -1 if invalid.
int RegisterFromName(const std::string& name);

}  // namespace ddt

#endif  // SRC_VM_ISA_H_
