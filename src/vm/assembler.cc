#include "src/vm/assembler.h"

#include <algorithm>
#include <cctype>
#include <optional>
#include <unordered_map>

#include "src/support/strings.h"
#include "src/vm/isa.h"

namespace ddt {

namespace {

enum class Section { kCode, kData };

// One unresolved instruction: the immediate may reference a label.
struct PendingInstruction {
  Instruction insn;
  std::string imm_label;  // empty if imm already resolved
  int32_t imm_addend = 0;
  int line = 0;
  uint32_t code_offset = 0;
};

struct Operand {
  enum class Kind { kRegister, kImmediate, kLabel, kMemory } kind;
  int reg = 0;           // kRegister / kMemory base
  int64_t imm = 0;       // kImmediate / kMemory displacement
  std::string label;     // kLabel
};

class Assembler {
 public:
  explicit Assembler(uint32_t load_base) : load_base_(load_base) {}

  Result<AssembledDriver> Run(const std::string& source);

 private:
  Status ProcessLine(std::string_view raw, int line);
  Status ProcessDirective(const std::vector<std::string>& tokens, int line);
  Status ProcessInstruction(const std::string& mnemonic, const std::vector<Operand>& operands,
                            int line);
  Status DefineLabel(const std::string& name, int line);
  uint32_t ImportIndex(const std::string& name);
  Status Resolve(AssembledDriver* out);

  // Tokenizes the operand list (after the mnemonic), honoring {} groups,
  // [] memory operands, and "" strings.
  static Result<std::vector<std::string>> SplitOperands(std::string_view text);
  Result<Operand> ParseOperand(const std::string& token, int line) const;

  Status ErrorAt(int line, const std::string& message) const {
    return Status::Error(StrFormat("line %d: %s", line, message.c_str()));
  }

  uint32_t load_base_;
  Section section_ = Section::kCode;
  std::string driver_name_ = "driver";
  std::string entry_label_;

  struct DataFixup {
    uint32_t offset;
    std::string label;
    int line;
  };

  std::vector<PendingInstruction> pending_;
  std::vector<uint8_t> data_;
  std::vector<DataFixup> data_fixups_;
  uint32_t bss_size_ = 0;

  // Label -> (section, offset). Resolved to absolute addresses at the end.
  struct LabelDef {
    Section section;
    uint32_t offset;
  };
  std::map<std::string, LabelDef> labels_;
  std::vector<std::string> function_labels_;
  std::vector<std::string> imports_;
  std::unordered_map<std::string, uint32_t> import_index_;
};

Result<std::vector<std::string>> Assembler::SplitOperands(std::string_view text) {
  std::vector<std::string> out;
  std::string current;
  int depth = 0;
  bool in_string = false;
  for (size_t i = 0; i < text.size(); ++i) {
    char c = text[i];
    if (in_string) {
      current.push_back(c);
      if (c == '"') {
        in_string = false;
      }
      continue;
    }
    switch (c) {
      case '"':
        in_string = true;
        current.push_back(c);
        break;
      case '{':
      case '[':
        ++depth;
        current.push_back(c);
        break;
      case '}':
      case ']':
        --depth;
        current.push_back(c);
        break;
      case ',':
        if (depth == 0) {
          std::string_view stripped = StripWhitespace(current);
          if (stripped.empty()) {
            return Status::Error("empty operand");
          }
          out.emplace_back(stripped);
          current.clear();
        } else {
          current.push_back(c);
        }
        break;
      default:
        current.push_back(c);
    }
  }
  if (in_string || depth != 0) {
    return Status::Error("unterminated operand");
  }
  std::string_view stripped = StripWhitespace(current);
  if (!stripped.empty()) {
    out.emplace_back(stripped);
  }
  return out;
}

Result<Operand> Assembler::ParseOperand(const std::string& token, int line) const {
  if (token.empty()) {
    return ErrorAt(line, "empty operand");
  }
  // Memory operand [reg], [reg+imm], [reg-imm].
  if (token.front() == '[') {
    if (token.back() != ']') {
      return ErrorAt(line, "malformed memory operand: " + token);
    }
    std::string inner(StripWhitespace(std::string_view(token).substr(1, token.size() - 2)));
    size_t sign_pos = inner.find_first_of("+-", 1);
    Operand op;
    op.kind = Operand::Kind::kMemory;
    std::string reg_part = inner;
    if (sign_pos != std::string::npos) {
      reg_part = std::string(StripWhitespace(std::string_view(inner).substr(0, sign_pos)));
      std::string disp(StripWhitespace(std::string_view(inner).substr(sign_pos)));
      if (!ParseInt(disp, &op.imm)) {
        return ErrorAt(line, "bad displacement: " + disp);
      }
    }
    op.reg = RegisterFromName(reg_part);
    if (op.reg < 0) {
      return ErrorAt(line, "bad base register: " + reg_part);
    }
    return op;
  }
  // Register.
  int reg = RegisterFromName(token);
  if (reg >= 0) {
    Operand op;
    op.kind = Operand::Kind::kRegister;
    op.reg = reg;
    return op;
  }
  // Number.
  int64_t value;
  if (ParseInt(token, &value)) {
    Operand op;
    op.kind = Operand::Kind::kImmediate;
    op.imm = value;
    return op;
  }
  // Label (optionally label+N / label-N).
  Operand op;
  op.kind = Operand::Kind::kLabel;
  size_t sign_pos = token.find_first_of("+-", 1);
  if (sign_pos != std::string::npos) {
    std::string disp(StripWhitespace(std::string_view(token).substr(sign_pos)));
    if (!ParseInt(disp, &op.imm)) {
      return ErrorAt(line, "bad label displacement: " + token);
    }
    op.label = std::string(StripWhitespace(std::string_view(token).substr(0, sign_pos)));
  } else {
    op.label = token;
  }
  if (op.label.empty()) {
    return ErrorAt(line, "bad operand: " + token);
  }
  return op;
}

Status Assembler::DefineLabel(const std::string& name, int line) {
  if (labels_.count(name) != 0) {
    return ErrorAt(line, "duplicate label: " + name);
  }
  uint32_t offset = section_ == Section::kCode
                        ? static_cast<uint32_t>(pending_.size()) * kInstructionSize
                        : static_cast<uint32_t>(data_.size());
  labels_[name] = LabelDef{section_, offset};
  return Status::Ok();
}

uint32_t Assembler::ImportIndex(const std::string& name) {
  auto it = import_index_.find(name);
  if (it != import_index_.end()) {
    return it->second;
  }
  uint32_t index = static_cast<uint32_t>(imports_.size());
  imports_.push_back(name);
  import_index_.emplace(name, index);
  return index;
}

Status Assembler::ProcessDirective(const std::vector<std::string>& tokens, int line) {
  const std::string& directive = tokens[0];
  auto need_args = [&](size_t n) { return tokens.size() == n + 1; };

  if (directive == ".code") {
    section_ = Section::kCode;
    return Status::Ok();
  }
  if (directive == ".data") {
    section_ = Section::kData;
    return Status::Ok();
  }
  if (directive == ".driver") {
    if (!need_args(1)) {
      return ErrorAt(line, ".driver takes one argument");
    }
    std::string name = tokens[1];
    if (name.size() >= 2 && name.front() == '"' && name.back() == '"') {
      name = name.substr(1, name.size() - 2);
    }
    driver_name_ = name;
    return Status::Ok();
  }
  if (directive == ".entry") {
    if (!need_args(1)) {
      return ErrorAt(line, ".entry takes one argument");
    }
    entry_label_ = tokens[1];
    return Status::Ok();
  }
  if (directive == ".import") {
    if (!need_args(1)) {
      return ErrorAt(line, ".import takes one argument");
    }
    ImportIndex(tokens[1]);
    return Status::Ok();
  }
  if (directive == ".func") {
    if (!need_args(1)) {
      return ErrorAt(line, ".func takes one argument");
    }
    if (section_ != Section::kCode) {
      return ErrorAt(line, ".func outside .code");
    }
    Status s = DefineLabel(tokens[1], line);
    if (!s.ok()) {
      return s;
    }
    function_labels_.push_back(tokens[1]);
    return Status::Ok();
  }
  if (directive == ".endfunc") {
    return Status::Ok();  // documentation only
  }
  if (directive == ".word" || directive == ".half" || directive == ".byte") {
    if (section_ != Section::kData) {
      return ErrorAt(line, directive + " outside .data");
    }
    size_t width = directive == ".word" ? 4 : (directive == ".half" ? 2 : 1);
    for (size_t i = 1; i < tokens.size(); ++i) {
      int64_t value;
      if (!ParseInt(tokens[i], &value)) {
        // A .word may reference a label (function tables); fixed up in
        // Resolve once addresses are known.
        if (width == 4) {
          data_fixups_.push_back(DataFixup{static_cast<uint32_t>(data_.size()), tokens[i], line});
          value = 0;
        } else {
          return ErrorAt(line, "bad numeric literal: " + tokens[i]);
        }
      }
      for (size_t b = 0; b < width; ++b) {
        data_.push_back(static_cast<uint8_t>((static_cast<uint64_t>(value) >> (8 * b)) & 0xFF));
      }
    }
    return Status::Ok();
  }
  if (directive == ".asciiz") {
    if (section_ != Section::kData) {
      return ErrorAt(line, ".asciiz outside .data");
    }
    if (tokens.size() < 2 || tokens[1].size() < 2 || tokens[1].front() != '"' ||
        tokens[1].back() != '"') {
      return ErrorAt(line, ".asciiz takes a quoted string");
    }
    std::string content = tokens[1].substr(1, tokens[1].size() - 2);
    for (char c : content) {
      data_.push_back(static_cast<uint8_t>(c));
    }
    data_.push_back(0);
    return Status::Ok();
  }
  if (directive == ".space") {
    if (section_ != Section::kData) {
      return ErrorAt(line, ".space outside .data");
    }
    int64_t count;
    if (!need_args(1) || !ParseInt(tokens[1], &count) || count < 0 || count > (1 << 24)) {
      return ErrorAt(line, ".space takes a reasonable size");
    }
    data_.insert(data_.end(), static_cast<size_t>(count), 0);
    return Status::Ok();
  }
  if (directive == ".align") {
    if (section_ != Section::kData) {
      return ErrorAt(line, ".align outside .data");
    }
    int64_t alignment;
    if (!need_args(1) || !ParseInt(tokens[1], &alignment) || alignment <= 0 ||
        (alignment & (alignment - 1)) != 0) {
      return ErrorAt(line, ".align takes a power of two");
    }
    while (data_.size() % static_cast<size_t>(alignment) != 0) {
      data_.push_back(0);
    }
    return Status::Ok();
  }
  return ErrorAt(line, "unknown directive: " + directive);
}

Status Assembler::ProcessInstruction(const std::string& mnemonic,
                                     const std::vector<Operand>& operands, int line) {
  if (section_ != Section::kCode) {
    return ErrorAt(line, "instruction outside .code");
  }
  auto emit = [&](Instruction insn, const std::string& label = "", int32_t addend = 0) {
    pending_.push_back(PendingInstruction{
        insn, label, addend, line, static_cast<uint32_t>(pending_.size()) * kInstructionSize});
  };
  auto want = [&](size_t n) { return operands.size() == n; };
  auto reg_of = [&](size_t i) -> std::optional<uint8_t> {
    if (operands[i].kind != Operand::Kind::kRegister) {
      return std::nullopt;
    }
    return static_cast<uint8_t>(operands[i].reg);
  };
  auto imm_or_label = [&](size_t i, Instruction* insn, std::string* label,
                          int32_t* addend) -> bool {
    const Operand& op = operands[i];
    if (op.kind == Operand::Kind::kImmediate) {
      insn->imm = static_cast<uint32_t>(op.imm);
      return true;
    }
    if (op.kind == Operand::Kind::kLabel) {
      *label = op.label;
      *addend = static_cast<int32_t>(op.imm);
      return true;
    }
    return false;
  };

  // `la` is an alias for movi with a label operand.
  std::string m = mnemonic == "la" ? "movi" : mnemonic;
  std::optional<Opcode> opcode = OpcodeFromMnemonic(m);
  if (!opcode.has_value()) {
    return ErrorAt(line, "unknown mnemonic: " + mnemonic);
  }

  Instruction insn;
  insn.opcode = *opcode;
  std::string label;
  int32_t addend = 0;

  switch (*opcode) {
    case Opcode::kNop:
    case Opcode::kHalt:
    case Opcode::kRet:
      if (!want(0)) {
        return ErrorAt(line, mnemonic + " takes no operands");
      }
      emit(insn);
      return Status::Ok();

    case Opcode::kMov:
    case Opcode::kNot:
    case Opcode::kNeg: {
      auto rd = want(2) ? reg_of(0) : std::nullopt;
      auto ra = want(2) ? reg_of(1) : std::nullopt;
      if (!rd || !ra) {
        return ErrorAt(line, mnemonic + " rd, ra");
      }
      insn.rd = *rd;
      insn.ra = *ra;
      emit(insn);
      return Status::Ok();
    }

    case Opcode::kMovI: {
      auto rd = want(2) ? reg_of(0) : std::nullopt;
      if (!rd || !imm_or_label(1, &insn, &label, &addend)) {
        return ErrorAt(line, "movi rd, imm|label");
      }
      insn.rd = *rd;
      emit(insn, label, addend);
      return Status::Ok();
    }

    case Opcode::kAdd:
    case Opcode::kSub:
    case Opcode::kMul:
    case Opcode::kUDiv:
    case Opcode::kSDiv:
    case Opcode::kURem:
    case Opcode::kAnd:
    case Opcode::kOr:
    case Opcode::kXor:
    case Opcode::kShl:
    case Opcode::kLShr:
    case Opcode::kAShr:
    case Opcode::kSeq:
    case Opcode::kSne:
    case Opcode::kSltU:
    case Opcode::kSltS:
    case Opcode::kSleU:
    case Opcode::kSleS: {
      auto rd = want(3) ? reg_of(0) : std::nullopt;
      auto ra = want(3) ? reg_of(1) : std::nullopt;
      auto rb = want(3) ? reg_of(2) : std::nullopt;
      if (!rd || !ra || !rb) {
        return ErrorAt(line, mnemonic + " rd, ra, rb");
      }
      insn.rd = *rd;
      insn.ra = *ra;
      insn.rb = *rb;
      emit(insn);
      return Status::Ok();
    }

    case Opcode::kAddI:
    case Opcode::kSubI:
    case Opcode::kMulI:
    case Opcode::kUDivI:
    case Opcode::kAndI:
    case Opcode::kOrI:
    case Opcode::kXorI:
    case Opcode::kShlI:
    case Opcode::kLShrI:
    case Opcode::kAShrI:
    case Opcode::kSeqI:
    case Opcode::kSneI:
    case Opcode::kSltUI:
    case Opcode::kSltSI:
    case Opcode::kSleUI:
    case Opcode::kSleSI: {
      auto rd = want(3) ? reg_of(0) : std::nullopt;
      auto ra = want(3) ? reg_of(1) : std::nullopt;
      if (!rd || !ra || !imm_or_label(2, &insn, &label, &addend)) {
        return ErrorAt(line, mnemonic + " rd, ra, imm");
      }
      insn.rd = *rd;
      insn.ra = *ra;
      emit(insn, label, addend);
      return Status::Ok();
    }

    case Opcode::kLd8U:
    case Opcode::kLd8S:
    case Opcode::kLd16U:
    case Opcode::kLd16S:
    case Opcode::kLd32: {
      auto rd = want(2) ? reg_of(0) : std::nullopt;
      if (!rd || operands[1].kind != Operand::Kind::kMemory) {
        return ErrorAt(line, mnemonic + " rd, [ra+imm]");
      }
      insn.rd = *rd;
      insn.ra = static_cast<uint8_t>(operands[1].reg);
      insn.imm = static_cast<uint32_t>(operands[1].imm);
      emit(insn);
      return Status::Ok();
    }

    case Opcode::kSt8:
    case Opcode::kSt16:
    case Opcode::kSt32: {
      if (!want(2) || operands[0].kind != Operand::Kind::kMemory) {
        return ErrorAt(line, mnemonic + " [ra+imm], rb");
      }
      auto rb = reg_of(1);
      if (!rb) {
        return ErrorAt(line, mnemonic + " [ra+imm], rb");
      }
      insn.ra = static_cast<uint8_t>(operands[0].reg);
      insn.imm = static_cast<uint32_t>(operands[0].imm);
      insn.rb = *rb;
      emit(insn);
      return Status::Ok();
    }

    case Opcode::kBr:
    case Opcode::kCall: {
      if (!want(1) || !imm_or_label(0, &insn, &label, &addend)) {
        return ErrorAt(line, mnemonic + " target");
      }
      emit(insn, label, addend);
      return Status::Ok();
    }

    case Opcode::kBz:
    case Opcode::kBnz: {
      auto ra = want(2) ? reg_of(0) : std::nullopt;
      if (!ra || !imm_or_label(1, &insn, &label, &addend)) {
        return ErrorAt(line, mnemonic + " ra, target");
      }
      insn.ra = *ra;
      emit(insn, label, addend);
      return Status::Ok();
    }

    case Opcode::kJr:
    case Opcode::kCallR: {
      auto ra = want(1) ? reg_of(0) : std::nullopt;
      if (!ra) {
        return ErrorAt(line, mnemonic + " ra");
      }
      insn.ra = *ra;
      emit(insn);
      return Status::Ok();
    }

    case Opcode::kPush:
    case Opcode::kPop: {
      if (!want(1)) {
        return ErrorAt(line, mnemonic + " reg or {regs}");
      }
      // Single register or a {list}. The operand parser treats "{...}" as a
      // label, so unpack it here.
      std::vector<uint8_t> regs;
      if (operands[0].kind == Operand::Kind::kRegister) {
        regs.push_back(static_cast<uint8_t>(operands[0].reg));
      } else if (operands[0].kind == Operand::Kind::kLabel && !operands[0].label.empty() &&
                 operands[0].label.front() == '{' && operands[0].label.back() == '}') {
        std::string inner = operands[0].label.substr(1, operands[0].label.size() - 2);
        for (std::string_view piece : SplitAny(inner, ", \t")) {
          int reg = RegisterFromName(std::string(piece));
          if (reg < 0) {
            return ErrorAt(line, "bad register in list: " + std::string(piece));
          }
          regs.push_back(static_cast<uint8_t>(reg));
        }
        if (regs.empty()) {
          return ErrorAt(line, "empty register list");
        }
      } else {
        return ErrorAt(line, mnemonic + " reg or {regs}");
      }
      if (*opcode == Opcode::kPop) {
        // pop {a, b, c} restores in reverse push order.
        std::reverse(regs.begin(), regs.end());
      }
      for (uint8_t reg : regs) {
        Instruction one = insn;
        if (*opcode == Opcode::kPush) {
          one.rb = reg;
        } else {
          one.rd = reg;
        }
        emit(one);
      }
      return Status::Ok();
    }

    case Opcode::kKCall: {
      if (!want(1)) {
        return ErrorAt(line, "kcall FunctionName");
      }
      if (operands[0].kind == Operand::Kind::kLabel) {
        insn.imm = ImportIndex(operands[0].label);
      } else if (operands[0].kind == Operand::Kind::kImmediate) {
        insn.imm = static_cast<uint32_t>(operands[0].imm);
      } else {
        return ErrorAt(line, "kcall FunctionName");
      }
      emit(insn);
      return Status::Ok();
    }

    default:
      return ErrorAt(line, "unsupported mnemonic: " + mnemonic);
  }
}

Status Assembler::ProcessLine(std::string_view raw, int line) {
  // Strip comments (';' or '#'), respecting string literals.
  std::string text;
  bool in_string = false;
  for (char c : raw) {
    if (c == '"') {
      in_string = !in_string;
    }
    if (!in_string && (c == ';' || c == '#')) {
      break;
    }
    text.push_back(c);
  }
  std::string_view stripped = StripWhitespace(text);
  if (stripped.empty()) {
    return Status::Ok();
  }

  // Leading labels: "name:".
  while (true) {
    size_t colon = stripped.find(':');
    if (colon == std::string_view::npos) {
      break;
    }
    std::string_view candidate = StripWhitespace(stripped.substr(0, colon));
    bool is_identifier = !candidate.empty();
    for (char c : candidate) {
      if (std::isalnum(static_cast<unsigned char>(c)) == 0 && c != '_' && c != '.') {
        is_identifier = false;
        break;
      }
    }
    if (!is_identifier || candidate.front() == '.') {
      break;
    }
    Status s = DefineLabel(std::string(candidate), line);
    if (!s.ok()) {
      return s;
    }
    stripped = StripWhitespace(stripped.substr(colon + 1));
    if (stripped.empty()) {
      return Status::Ok();
    }
  }

  // Directive or instruction: first token is the keyword.
  size_t space = stripped.find_first_of(" \t");
  std::string keyword(stripped.substr(0, space));
  std::string_view rest =
      space == std::string_view::npos ? std::string_view() : StripWhitespace(stripped.substr(space));

  if (keyword[0] == '.') {
    // Directives take space/comma separated tokens, except quoted strings.
    std::vector<std::string> tokens{keyword};
    if (!rest.empty()) {
      if (rest.front() == '"') {
        tokens.emplace_back(rest);
      } else {
        for (std::string_view piece : SplitAny(rest, ", \t")) {
          tokens.emplace_back(piece);
        }
      }
    }
    return ProcessDirective(tokens, line);
  }

  Result<std::vector<std::string>> operand_tokens = SplitOperands(rest);
  if (!operand_tokens.ok()) {
    return ErrorAt(line, operand_tokens.error());
  }
  std::vector<Operand> operands;
  for (const std::string& token : operand_tokens.value()) {
    Result<Operand> op = ParseOperand(token, line);
    if (!op.ok()) {
      return op.status();
    }
    operands.push_back(op.take());
  }
  return ProcessInstruction(keyword, operands, line);
}

Status Assembler::Resolve(AssembledDriver* out) {
  uint32_t code_size = static_cast<uint32_t>(pending_.size()) * kInstructionSize;
  uint32_t data_base = load_base_ + code_size;

  auto label_address = [&](const std::string& name, uint32_t* addr) -> bool {
    auto it = labels_.find(name);
    if (it == labels_.end()) {
      return false;
    }
    *addr = it->second.section == Section::kCode ? load_base_ + it->second.offset
                                                 : data_base + it->second.offset;
    return true;
  };

  for (PendingInstruction& p : pending_) {
    if (!p.imm_label.empty()) {
      uint32_t addr;
      if (!label_address(p.imm_label, &addr)) {
        return Status::Error(
            StrFormat("line %d: undefined label: %s", p.line, p.imm_label.c_str()));
      }
      p.insn.imm = addr + static_cast<uint32_t>(p.imm_addend);
    }
  }

  for (const DataFixup& fixup : data_fixups_) {
    uint32_t addr;
    if (!label_address(fixup.label, &addr)) {
      return Status::Error(
          StrFormat("line %d: undefined label in .word: %s", fixup.line, fixup.label.c_str()));
    }
    for (size_t b = 0; b < 4; ++b) {
      data_[fixup.offset + b] = static_cast<uint8_t>((addr >> (8 * b)) & 0xFF);
    }
  }

  if (entry_label_.empty()) {
    return Status::Error("missing .entry directive");
  }
  auto entry_it = labels_.find(entry_label_);
  if (entry_it == labels_.end() || entry_it->second.section != Section::kCode) {
    return Status::Error("entry label not defined in .code: " + entry_label_);
  }

  DriverImage image;
  image.name = driver_name_;
  image.entry_offset = entry_it->second.offset;
  image.code.resize(code_size);
  for (const PendingInstruction& p : pending_) {
    EncodeInstruction(p.insn, image.code.data() + p.code_offset);
  }
  image.data = data_;
  image.bss_size = bss_size_;
  image.imports = imports_;

  out->image = std::move(image);
  out->load_base = load_base_;
  for (const auto& [name, def] : labels_) {
    uint32_t addr = 0;
    // Every entry in labels_ resolves by construction.
    label_address(name, &addr);
    out->symbols[name] = addr;
  }
  for (const std::string& fn : function_labels_) {
    uint32_t addr;
    if (label_address(fn, &addr)) {
      out->functions.push_back(addr);
    }
  }
  return Status::Ok();
}

Result<AssembledDriver> Assembler::Run(const std::string& source) {
  int line = 0;
  size_t start = 0;
  while (start <= source.size()) {
    size_t end = source.find('\n', start);
    if (end == std::string::npos) {
      end = source.size();
    }
    ++line;
    Status s = ProcessLine(std::string_view(source).substr(start, end - start), line);
    if (!s.ok()) {
      return s;
    }
    start = end + 1;
  }
  AssembledDriver out;
  Status s = Resolve(&out);
  if (!s.ok()) {
    return s;
  }
  return out;
}

}  // namespace

Result<AssembledDriver> Assemble(const std::string& source, uint32_t load_base) {
  Assembler assembler(load_base);
  return assembler.Run(source);
}

}  // namespace ddt
