// Disassembler and static CFG recovery for DVM32 code.
//
// Used three ways:
//   - basic-block identification for the coverage counters behind Figures 2
//     and 3 (the engine marks a block covered when its leader executes),
//   - the SDV-like static-analysis baseline, which runs dataflow over this
//     CFG without ever executing the driver,
//   - human-readable listings in bug reports and tests.
#ifndef SRC_VM_DISASM_H_
#define SRC_VM_DISASM_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/vm/isa.h"

namespace ddt {

// Renders one instruction, e.g. "addi r2, r1, 0x4".
std::string DisassembleInstruction(const Instruction& insn);

struct BasicBlock {
  uint32_t begin = 0;  // address of the leader instruction
  uint32_t end = 0;    // exclusive (address just past the last instruction)
  std::vector<uint32_t> successors;
  bool has_indirect_successor = false;  // ends in jr/callr (unknown target)
  bool ends_in_return = false;
  bool ends_in_halt = false;

  size_t NumInstructions() const { return (end - begin) / kInstructionSize; }
};

struct Cfg {
  uint32_t base = 0;
  std::map<uint32_t, BasicBlock> blocks;  // keyed by leader address
  std::vector<uint32_t> call_targets;     // static call destinations (deduped)

  size_t NumBlocks() const { return blocks.size(); }
  // Leader address of the block containing `addr`, or 0 if none.
  uint32_t BlockLeaderFor(uint32_t addr) const;
};

// Recovers the CFG of a code segment loaded at `base`. Decoding failures
// terminate the affected block (treated like halt).
Cfg BuildCfg(const uint8_t* code, size_t size, uint32_t base);

// Renders a full listing with addresses and block boundaries.
std::string DisassembleSegment(const uint8_t* code, size_t size, uint32_t base);

}  // namespace ddt

#endif  // SRC_VM_DISASM_H_
