// Two-pass assembler for DVM32 assembly, producing DDF driver images.
//
// The driver corpus is written in this assembly dialect and assembled to
// opaque binary images at startup — DDT proper never sees the source, which
// keeps the "closed-source binary driver" premise honest.
//
// Dialect summary:
//   ; comment          # comment
//   .driver "rtl8029"        image name
//   .entry main              load entry point (label in .code)
//   .import MosAllocatePool  explicit import (kcall also auto-imports)
//   .code / .data            section switch
//   .word 123  .half 5  .byte 7  .asciiz "s"  .space 64  .align 4
//   .func name               label + marks a function start (Table 1 counts)
//   label:                   labels (absolute addresses after layout)
//   movi r0, 0x10            instructions; immediates may be label refs
//   ld32 r1, [r0+4]          memory operands: [reg], [reg+imm], [reg-imm]
//   push {r4, r5, lr}        multi-register push/pop (pop reverses order)
//   la r0, buffer            pseudo: movi with a label
//   kcall MosAllocatePool    kernel call; name resolved via import table
#ifndef SRC_VM_ASSEMBLER_H_
#define SRC_VM_ASSEMBLER_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/support/status.h"
#include "src/vm/image.h"

namespace ddt {

struct AssembledDriver {
  DriverImage image;
  // Label -> absolute guest address (given the load base).
  std::map<std::string, uint32_t> symbols;
  // Absolute addresses of .func-declared functions, in declaration order.
  std::vector<uint32_t> functions;
  uint32_t load_base = 0;
};

// Assembles `source` for a driver loaded at `load_base`. Returns a detailed
// error (with line number) on malformed input.
Result<AssembledDriver> Assemble(const std::string& source,
                                 uint32_t load_base = 0x00010000);

}  // namespace ddt

#endif  // SRC_VM_ASSEMBLER_H_
