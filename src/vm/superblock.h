// Tier-2 execution: superblocks of pre-lowered threaded ops.
//
// The tier-1 decoded-block cache (block_cache.h) eliminated re-decoding but
// still pays per-instruction dispatch: a cache probe, an Instruction copy,
// operand Value construction, and a large opcode switch on every step. QEMU —
// the substrate the paper runs drivers on — goes one tier further: hot
// translated blocks are *chained*, so concrete execution never returns to the
// dispatcher between blocks. This module is the analogous structure for
// DVM32.
//
// When a block's execution counter crosses the hotness threshold
// (BlockCache::NoteBlockEntry), the compiler here lowers the block and its
// static successors — following branch/call targets and fall-throughs, with
// tail duplication for mid-block entries — into one `Superblock`: a flat
// array of `SbOp` threaded ops with operands pre-extracted and control
// transfers pre-resolved. Internal edges become op-index jumps (loops run
// entirely inside one superblock); external edges become exit ops that chain
// directly into the target superblock once it is compiled.
//
// The region ends, per instruction, at anything the concrete fast path cannot
// retire by itself: indirect transfers (jr/callr/ret), kernel calls, halt,
// undecodable slots, and statically invalid branch targets all lower to
// side-exit ops. At runtime the executor (Engine::RunSuperblock) additionally
// side-exits *before* the instruction on symbolic operands, MMIO-touching
// addresses, zero divisors, and code-segment (write barrier) stores, so the
// tier-1 interpreter re-executes the instruction with full symbolic/checker
// semantics from an exact instruction boundary.
//
// Like the tier-1 cache, superblocks are valid forever: the code segment is
// immutable behind the engine's write barrier, so invalidation is never
// needed. Compilation is deterministic (static BFS over decoded successors),
// and the trigger counters are per-engine, so the set of compiled regions is
// a pure function of the executed instruction stream.
#ifndef SRC_VM_SUPERBLOCK_H_
#define SRC_VM_SUPERBLOCK_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/obs/profiler.h"
#include "src/vm/block_cache.h"
#include "src/vm/isa.h"

namespace ddt {

// Threaded-op kinds. Every kind except the three synthetic ones retires
// exactly one guest instruction; the synthetic kinds (kJump, kExit,
// kSideExit) retire zero and exist only to encode region structure.
//
// The X-macro keeps the enum and the executor's computed-goto label table
// (engine.cc) generated from one list, so they can never drift out of order.
//
//   kJump      internal transfer to op index `taken` (fall-into-region glue)
//   kExit      leave the region for guest pc `imm`; chain if compiled
//   kSideExit  hand the instruction at `pc` to the tier-1 interpreter
//   kMovR      rd = ra (symbolic values copy exactly; no side exit needed)
//   k*RR/k*RI  two-operand ALU / comparison, reg/reg and reg/imm forms
//   kUDiv...   division side-exits on a zero divisor (tier-1 owns the bug)
//   kLoad      rd = mem[ra + imm], mem_size bytes, sign-extend per flag
//   kStore     mem[ra + imm] = rb, mem_size bytes
//   kBrOp...   control with statically validated targets
#define DDT_SB_KIND_LIST(X)                                                  \
  X(kJump) X(kExit) X(kSideExit)                                             \
  X(kNop) X(kMovR) X(kMovI) X(kNotR) X(kNegR)                                \
  X(kAddRR) X(kAddRI) X(kSubRR) X(kSubRI) X(kMulRR) X(kMulRI)                \
  X(kAndRR) X(kAndRI) X(kOrRR) X(kOrRI) X(kXorRR) X(kXorRI)                  \
  X(kShlRR) X(kShlRI) X(kLShrRR) X(kLShrRI) X(kAShrRR) X(kAShrRI)            \
  X(kSeqRR) X(kSeqRI) X(kSneRR) X(kSneRI)                                    \
  X(kSltURR) X(kSltURI) X(kSltSRR) X(kSltSRI)                                \
  X(kSleURR) X(kSleURI) X(kSleSRR) X(kSleSRI)                                \
  X(kUDivRR) X(kUDivRI) X(kSDivRR) X(kURemRR)                                \
  X(kLoad) X(kStore) X(kPush) X(kPop)                                        \
  X(kBrOp) X(kBzOp) X(kBnzOp) X(kCallOp)

enum class SbKind : uint8_t {
#define DDT_SB_ENUM_ENTRY(name) name,
  DDT_SB_KIND_LIST(DDT_SB_ENUM_ENTRY)
#undef DDT_SB_ENUM_ENTRY
};

// Flags for SbOp::flags.
inline constexpr uint8_t kSbLeader = 1;      // pc is a CFG block leader (coverage)
inline constexpr uint8_t kSbLoadSigned = 2;  // kLoad sign-extends

// One pre-lowered threaded op. 24 bytes; ops for a region are contiguous so
// the executor walks them with no per-step lookup.
struct SbOp {
  SbKind kind = SbKind::kSideExit;
  uint8_t rd = 0;
  uint8_t ra = 0;
  uint8_t rb = 0;
  uint8_t flags = 0;
  uint8_t mem_size = 0;  // 1/2/4 for kLoad/kStore
  uint32_t imm = 0;      // ALU immediate / branch or exit target guest pc
  uint32_t pc = 0;       // guest pc of the lowered instruction (0 = synthetic)
  int32_t taken = -1;    // internal op index of the (taken) target; -1 = external
  int32_t fall = -1;     // internal op index of the fall-through; -1 = external
};

struct Superblock {
  uint32_t entry_pc = 0;
  uint32_t blocks = 0;        // region blocks lowered (tail duplicates count)
  uint32_t instructions = 0;  // guest instructions lowered
  std::vector<SbOp> ops;
};

// Owns the compiled superblocks for one engine, keyed by entry slot (one slot
// per aligned instruction, same indexing as BlockCache). Single-threaded by
// construction: each engine owns its caches, and campaign parallelism is
// engine-per-pass.
class SuperblockCache {
 public:
  struct Limits {
    uint32_t max_blocks = 32;   // region blocks per superblock
    uint32_t max_ops = 1024;    // total ops per superblock
  };

  struct Stats {
    uint64_t compiled = 0;
    uint64_t ops_lowered = 0;
    uint64_t instructions_lowered = 0;
  };

  // `cache` must outlive this object and cover [code_begin, code_begin +
  // 8 * cache->num_slots()). `leader_slots` is the engine's dense CFG-leader
  // bitmap (nullable); leader ops get kSbLeader so the executor only pays the
  // coverage probe where the interpreter would.
  SuperblockCache(BlockCache* cache, uint32_t code_begin,
                  const std::vector<uint8_t>* leader_slots);

  // The compiled superblock whose entry is at `slot` / `pc`; nullptr if none.
  const Superblock* AtSlot(size_t slot) const {
    return slot < table_.size() ? table_[slot].get() : nullptr;
  }
  const Superblock* AtPc(uint32_t pc) const;

  // Compiles (at most once) the superblock entered at `pc`. Deterministic:
  // a static breadth-first walk of decoded successors, independent of any
  // runtime value. Returns nullptr only if `pc` has no decodable slot.
  const Superblock* Compile(uint32_t pc, const Limits& limits);

  const Stats& stats() const { return stats_; }
  size_t num_slots() const { return table_.size(); }
  uint32_t code_begin() const { return base_; }
  uint32_t code_end() const { return end_; }

  // Optional profiler sink: compiles are attributed to obs::Phase::kSuperblock.
  void SetProfile(obs::PassProfile* profile) { profile_ = profile; }

 private:
  bool SlotFor(uint32_t pc, size_t* slot) const;

  BlockCache* cache_;
  uint32_t base_ = 0;
  uint32_t end_ = 0;  // exclusive: base_ + 8 * num_slots
  const std::vector<uint8_t>* leader_slots_;
  std::vector<std::unique_ptr<Superblock>> table_;  // by entry slot
  Stats stats_;
  obs::PassProfile* profile_ = nullptr;
};

}  // namespace ddt

#endif  // SRC_VM_SUPERBLOCK_H_
