#include "src/vm/isa.h"

#include <cstring>
#include <unordered_map>

#include "src/support/check.h"
#include "src/support/strings.h"

namespace ddt {

namespace {

struct MnemonicEntry {
  Opcode opcode;
  const char* name;
};

constexpr MnemonicEntry kMnemonics[] = {
    {Opcode::kNop, "nop"},       {Opcode::kHalt, "halt"},    {Opcode::kMov, "mov"},
    {Opcode::kMovI, "movi"},     {Opcode::kAdd, "add"},      {Opcode::kSub, "sub"},
    {Opcode::kMul, "mul"},       {Opcode::kUDiv, "udiv"},    {Opcode::kSDiv, "sdiv"},
    {Opcode::kURem, "urem"},     {Opcode::kAnd, "and"},      {Opcode::kOr, "or"},
    {Opcode::kXor, "xor"},       {Opcode::kShl, "shl"},      {Opcode::kLShr, "lshr"},
    {Opcode::kAShr, "ashr"},     {Opcode::kAddI, "addi"},    {Opcode::kSubI, "subi"},
    {Opcode::kMulI, "muli"},     {Opcode::kUDivI, "udivi"},  {Opcode::kAndI, "andi"},
    {Opcode::kOrI, "ori"},       {Opcode::kXorI, "xori"},    {Opcode::kShlI, "shli"},
    {Opcode::kLShrI, "lshri"},   {Opcode::kAShrI, "ashri"},  {Opcode::kNot, "not"},
    {Opcode::kNeg, "neg"},       {Opcode::kSeq, "seq"},      {Opcode::kSne, "sne"},
    {Opcode::kSltU, "sltu"},     {Opcode::kSltS, "slts"},    {Opcode::kSleU, "sleu"},
    {Opcode::kSleS, "sles"},     {Opcode::kSeqI, "seqi"},    {Opcode::kSneI, "snei"},
    {Opcode::kSltUI, "sltui"},   {Opcode::kSltSI, "sltsi"},  {Opcode::kSleUI, "sleui"},
    {Opcode::kSleSI, "slesi"},   {Opcode::kLd8U, "ld8u"},    {Opcode::kLd8S, "ld8s"},
    {Opcode::kLd16U, "ld16u"},   {Opcode::kLd16S, "ld16s"},  {Opcode::kLd32, "ld32"},
    {Opcode::kSt8, "st8"},       {Opcode::kSt16, "st16"},    {Opcode::kSt32, "st32"},
    {Opcode::kBr, "br"},         {Opcode::kBz, "bz"},        {Opcode::kBnz, "bnz"},
    {Opcode::kJr, "jr"},         {Opcode::kCall, "call"},    {Opcode::kCallR, "callr"},
    {Opcode::kRet, "ret"},       {Opcode::kPush, "push"},    {Opcode::kPop, "pop"},
    {Opcode::kKCall, "kcall"},
};

static_assert(sizeof(kMnemonics) / sizeof(kMnemonics[0]) ==
                  static_cast<size_t>(Opcode::kOpcodeCount),
              "mnemonic table out of sync with Opcode enum");

}  // namespace

void EncodeInstruction(const Instruction& insn, uint8_t* out) {
  out[0] = static_cast<uint8_t>(insn.opcode);
  out[1] = insn.rd;
  out[2] = insn.ra;
  out[3] = insn.rb;
  out[4] = static_cast<uint8_t>(insn.imm & 0xFF);
  out[5] = static_cast<uint8_t>((insn.imm >> 8) & 0xFF);
  out[6] = static_cast<uint8_t>((insn.imm >> 16) & 0xFF);
  out[7] = static_cast<uint8_t>((insn.imm >> 24) & 0xFF);
}

std::optional<Instruction> DecodeInstruction(const uint8_t* bytes) {
  if (bytes[0] >= static_cast<uint8_t>(Opcode::kOpcodeCount)) {
    return std::nullopt;
  }
  if (bytes[1] >= kNumRegisters || bytes[2] >= kNumRegisters || bytes[3] >= kNumRegisters) {
    return std::nullopt;
  }
  Instruction insn;
  insn.opcode = static_cast<Opcode>(bytes[0]);
  insn.rd = bytes[1];
  insn.ra = bytes[2];
  insn.rb = bytes[3];
  insn.imm = static_cast<uint32_t>(bytes[4]) | (static_cast<uint32_t>(bytes[5]) << 8) |
             (static_cast<uint32_t>(bytes[6]) << 16) | (static_cast<uint32_t>(bytes[7]) << 24);
  return insn;
}

bool IsTerminator(Opcode opcode) {
  switch (opcode) {
    case Opcode::kBr:
    case Opcode::kBz:
    case Opcode::kBnz:
    case Opcode::kJr:
    case Opcode::kCall:
    case Opcode::kCallR:
    case Opcode::kRet:
    case Opcode::kHalt:
      return true;
    default:
      return false;
  }
}

const char* OpcodeMnemonic(Opcode opcode) {
  size_t index = static_cast<size_t>(opcode);
  DDT_CHECK(index < static_cast<size_t>(Opcode::kOpcodeCount));
  return kMnemonics[index].name;
}

std::optional<Opcode> OpcodeFromMnemonic(const std::string& mnemonic) {
  static const std::unordered_map<std::string, Opcode>* table = [] {
    auto* map = new std::unordered_map<std::string, Opcode>();
    for (const MnemonicEntry& entry : kMnemonics) {
      map->emplace(entry.name, entry.opcode);
    }
    return map;
  }();
  auto it = table->find(mnemonic);
  if (it == table->end()) {
    return std::nullopt;
  }
  return it->second;
}

std::string RegisterName(int reg) {
  DDT_CHECK(reg >= 0 && reg < kNumRegisters);
  if (reg == kRegSp) {
    return "sp";
  }
  if (reg == kRegLr) {
    return "lr";
  }
  if (reg == kRegZero) {
    return "zr";
  }
  return StrFormat("r%d", reg);
}

int RegisterFromName(const std::string& name) {
  if (name == "sp") {
    return kRegSp;
  }
  if (name == "lr") {
    return kRegLr;
  }
  if (name == "zr") {
    return kRegZero;
  }
  if (name.size() >= 2 && name.size() <= 3 && name[0] == 'r') {
    int64_t value;
    if (ParseInt(name.substr(1), &value) && value >= 0 && value < kNumRegisters) {
      return static_cast<int>(value);
    }
  }
  return -1;
}

}  // namespace ddt
