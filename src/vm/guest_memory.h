// Guest memory with chained copy-on-write forking (§4.1.3 of the paper).
//
// Each execution state owns a GuestMemory handle: a mutable write delta on
// top of a chain of frozen parent deltas, bottoming out in a shared root that
// holds the initial image pages. Forking freezes the current delta and hands
// both siblings fresh empty deltas — O(1) instead of copying the full state.
// Reads that miss the local delta walk the chain and are cached in the leaf,
// exactly the paper's "cache each resolved read in the leaf state"
// optimization.
//
// Bytes are concrete-or-symbolic (MemByte); the interpreter composes words
// from bytes, and KLEE-style Extract/Concat folding in ExprContext
// reassembles whole symbolic words.
//
// An eager mode (every fork deep-copies the merged map) exists solely for
// the COW ablation benchmark.
#ifndef SRC_VM_GUEST_MEMORY_H_
#define SRC_VM_GUEST_MEMORY_H_

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "src/expr/expr.h"

namespace ddt {

struct MemByte {
  ExprRef sym = nullptr;  // null -> concrete
  uint8_t conc = 0;

  bool IsSymbolic() const { return sym != nullptr; }
  static MemByte Concrete(uint8_t v) { return MemByte{nullptr, v}; }
  static MemByte Symbolic(ExprRef e) { return MemByte{e, 0}; }
};

struct MemStats {
  uint64_t forks = 0;
  uint64_t bytes_copied = 0;  // eager mode / compaction copies
  uint64_t reads = 0;
  uint64_t writes = 0;
  uint64_t cache_hits = 0;
  uint64_t chain_walks = 0;  // reads that had to walk past the leaf
  uint64_t compactions = 0;
};

class GuestMemory {
 public:
  GuestMemory();
  GuestMemory(GuestMemory&&) = default;
  GuestMemory& operator=(GuestMemory&&) = default;
  GuestMemory(const GuestMemory&) = delete;
  GuestMemory& operator=(const GuestMemory&) = delete;

  // Installs initial image bytes into the shared root. Only valid before the
  // first fork (the root is shared afterwards).
  void InitWrite(uint32_t addr, const uint8_t* data, size_t len);

  MemByte ReadByte(uint32_t addr);
  void WriteByte(uint32_t addr, MemByte byte);

  // Concrete helpers (assert no symbolic byte is touched; callers that can
  // see symbolic data go byte-by-byte through ReadByte).
  void WriteConcrete(uint32_t addr, const uint8_t* data, size_t len);
  // Returns false if any byte in the span is symbolic.
  bool TryReadConcrete(uint32_t addr, uint8_t* out, size_t len);

  // Forks this memory: freezes the current delta; both `this` and the
  // returned sibling continue with empty deltas over the shared chain.
  GuestMemory Fork();

  size_t ChainDepth() const;
  size_t DeltaSize() const { return delta_.size(); }
  // Per-instance access odometer (reads + writes since construction or fork
  // inheritance). The diamond-merge eligibility check compares snapshots of
  // this counter to prove a fork suffix touched no guest memory at all.
  uint64_t access_count() const { return access_count_; }

  void set_stats(MemStats* stats) { stats_ = stats; }
  void set_eager_fork(bool eager) { eager_fork_ = eager; }

 private:
  struct Node {
    std::unordered_map<uint32_t, MemByte> writes;
    std::shared_ptr<const Node> parent;
  };

  struct Root {
    std::unordered_map<uint32_t, std::vector<uint8_t>> pages;
  };

  // Resolves a byte by walking delta -> chain -> root.
  MemByte Resolve(uint32_t addr, bool* walked_chain) const;
  // Merges chain + delta into a single flat map (for eager mode/compaction).
  std::unordered_map<uint32_t, MemByte> MergedWrites() const;
  void CompactIfDeep();

  std::shared_ptr<Root> root_;
  std::shared_ptr<const Node> parent_;  // frozen chain (may be null)
  std::unordered_map<uint32_t, MemByte> delta_;
  std::unordered_map<uint32_t, MemByte> read_cache_;
  MemStats* stats_ = nullptr;
  uint64_t access_count_ = 0;
  bool eager_fork_ = false;
  bool forked_ = false;

  static constexpr size_t kCompactionDepth = 96;
};

}  // namespace ddt

#endif  // SRC_VM_GUEST_MEMORY_H_
