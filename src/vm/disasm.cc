#include "src/vm/disasm.h"

#include <algorithm>
#include <set>

#include "src/support/strings.h"

namespace ddt {

std::string DisassembleInstruction(const Instruction& insn) {
  const char* m = OpcodeMnemonic(insn.opcode);
  auto rd = [&] { return RegisterName(insn.rd); };
  auto ra = [&] { return RegisterName(insn.ra); };
  auto rb = [&] { return RegisterName(insn.rb); };
  switch (insn.opcode) {
    case Opcode::kNop:
    case Opcode::kHalt:
    case Opcode::kRet:
      return m;
    case Opcode::kMov:
    case Opcode::kNot:
    case Opcode::kNeg:
      return StrFormat("%s %s, %s", m, rd().c_str(), ra().c_str());
    case Opcode::kMovI:
      return StrFormat("%s %s, 0x%x", m, rd().c_str(), insn.imm);
    case Opcode::kAdd:
    case Opcode::kSub:
    case Opcode::kMul:
    case Opcode::kUDiv:
    case Opcode::kSDiv:
    case Opcode::kURem:
    case Opcode::kAnd:
    case Opcode::kOr:
    case Opcode::kXor:
    case Opcode::kShl:
    case Opcode::kLShr:
    case Opcode::kAShr:
    case Opcode::kSeq:
    case Opcode::kSne:
    case Opcode::kSltU:
    case Opcode::kSltS:
    case Opcode::kSleU:
    case Opcode::kSleS:
      return StrFormat("%s %s, %s, %s", m, rd().c_str(), ra().c_str(), rb().c_str());
    case Opcode::kAddI:
    case Opcode::kSubI:
    case Opcode::kMulI:
    case Opcode::kUDivI:
    case Opcode::kAndI:
    case Opcode::kOrI:
    case Opcode::kXorI:
    case Opcode::kShlI:
    case Opcode::kLShrI:
    case Opcode::kAShrI:
    case Opcode::kSeqI:
    case Opcode::kSneI:
    case Opcode::kSltUI:
    case Opcode::kSltSI:
    case Opcode::kSleUI:
    case Opcode::kSleSI:
      return StrFormat("%s %s, %s, 0x%x", m, rd().c_str(), ra().c_str(), insn.imm);
    case Opcode::kLd8U:
    case Opcode::kLd8S:
    case Opcode::kLd16U:
    case Opcode::kLd16S:
    case Opcode::kLd32:
      return StrFormat("%s %s, [%s+0x%x]", m, rd().c_str(), ra().c_str(), insn.imm);
    case Opcode::kSt8:
    case Opcode::kSt16:
    case Opcode::kSt32:
      return StrFormat("%s [%s+0x%x], %s", m, ra().c_str(), insn.imm, rb().c_str());
    case Opcode::kBr:
    case Opcode::kCall:
      return StrFormat("%s 0x%x", m, insn.imm);
    case Opcode::kBz:
    case Opcode::kBnz:
      return StrFormat("%s %s, 0x%x", m, ra().c_str(), insn.imm);
    case Opcode::kJr:
    case Opcode::kCallR:
      return StrFormat("%s %s", m, ra().c_str());
    case Opcode::kPush:
      return StrFormat("%s %s", m, rb().c_str());
    case Opcode::kPop:
      return StrFormat("%s %s", m, rd().c_str());
    case Opcode::kKCall:
      return StrFormat("%s #%u", m, insn.imm);
    default:
      return StrFormat("<bad opcode %u>", static_cast<unsigned>(insn.opcode));
  }
}

uint32_t Cfg::BlockLeaderFor(uint32_t addr) const {
  auto it = blocks.upper_bound(addr);
  if (it == blocks.begin()) {
    return 0;
  }
  --it;
  if (addr >= it->second.begin && addr < it->second.end) {
    return it->second.begin;
  }
  return 0;
}

Cfg BuildCfg(const uint8_t* code, size_t size, uint32_t base) {
  Cfg cfg;
  cfg.base = base;
  uint32_t end = base + static_cast<uint32_t>(size);
  size_t count = size / kInstructionSize;

  auto decode_at = [&](uint32_t addr) -> std::optional<Instruction> {
    if (addr < base || addr + kInstructionSize > end ||
        (addr - base) % kInstructionSize != 0) {
      return std::nullopt;
    }
    return DecodeInstruction(code + (addr - base));
  };

  // Pass 1: find leaders.
  std::set<uint32_t> leaders;
  leaders.insert(base);
  std::set<uint32_t> call_targets;
  for (size_t i = 0; i < count; ++i) {
    uint32_t addr = base + static_cast<uint32_t>(i) * kInstructionSize;
    std::optional<Instruction> insn = DecodeInstruction(code + i * kInstructionSize);
    if (!insn.has_value()) {
      leaders.insert(addr + kInstructionSize);
      continue;
    }
    switch (insn->opcode) {
      case Opcode::kBr:
        leaders.insert(insn->imm);
        leaders.insert(addr + kInstructionSize);
        break;
      case Opcode::kBz:
      case Opcode::kBnz:
        leaders.insert(insn->imm);
        leaders.insert(addr + kInstructionSize);
        break;
      case Opcode::kCall:
        call_targets.insert(insn->imm);
        leaders.insert(insn->imm);
        leaders.insert(addr + kInstructionSize);
        break;
      case Opcode::kJr:
      case Opcode::kCallR:
      case Opcode::kRet:
      case Opcode::kHalt:
        leaders.insert(addr + kInstructionSize);
        break;
      default:
        break;
    }
  }

  // Pass 2: materialize blocks between consecutive leaders.
  std::vector<uint32_t> sorted_leaders;
  for (uint32_t leader : leaders) {
    if (leader >= base && leader < end) {
      sorted_leaders.push_back(leader);
    }
  }
  std::sort(sorted_leaders.begin(), sorted_leaders.end());

  for (size_t i = 0; i < sorted_leaders.size(); ++i) {
    uint32_t begin = sorted_leaders[i];
    uint32_t limit = i + 1 < sorted_leaders.size() ? sorted_leaders[i + 1] : end;
    BasicBlock block;
    block.begin = begin;
    uint32_t addr = begin;
    while (addr < limit) {
      std::optional<Instruction> insn = decode_at(addr);
      addr += kInstructionSize;
      if (!insn.has_value()) {
        block.ends_in_halt = true;
        break;
      }
      if (IsTerminator(insn->opcode)) {
        switch (insn->opcode) {
          case Opcode::kBr:
            block.successors.push_back(insn->imm);
            break;
          case Opcode::kBz:
          case Opcode::kBnz:
            block.successors.push_back(insn->imm);
            block.successors.push_back(addr);  // fallthrough
            break;
          case Opcode::kCall:
            block.successors.push_back(insn->imm);
            block.successors.push_back(addr);  // return continuation
            break;
          case Opcode::kJr:
          case Opcode::kCallR:
            block.has_indirect_successor = true;
            break;
          case Opcode::kRet:
            block.ends_in_return = true;
            break;
          case Opcode::kHalt:
            block.ends_in_halt = true;
            break;
          default:
            break;
        }
        break;
      }
    }
    block.end = addr;
    if (addr >= limit && !block.ends_in_return && !block.ends_in_halt &&
        block.successors.empty() && !block.has_indirect_successor && addr < end) {
      block.successors.push_back(addr);  // plain fallthrough into next leader
    }
    cfg.blocks.emplace(begin, std::move(block));
  }

  cfg.call_targets.assign(call_targets.begin(), call_targets.end());
  return cfg;
}

std::string DisassembleSegment(const uint8_t* code, size_t size, uint32_t base) {
  Cfg cfg = BuildCfg(code, size, base);
  std::string out;
  for (size_t i = 0; i * kInstructionSize + kInstructionSize <= size; ++i) {
    uint32_t addr = base + static_cast<uint32_t>(i * kInstructionSize);
    if (cfg.blocks.count(addr) != 0) {
      out += StrFormat("\n%08x <block>:\n", addr);
    }
    std::optional<Instruction> insn = DecodeInstruction(code + i * kInstructionSize);
    if (insn.has_value()) {
      out += StrFormat("  %08x:  %s\n", addr, DisassembleInstruction(*insn).c_str());
    } else {
      out += StrFormat("  %08x:  <invalid %s>\n", addr,
                       HexBytes(code + i * kInstructionSize, kInstructionSize).c_str());
    }
  }
  return out;
}

}  // namespace ddt
