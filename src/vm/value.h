// A guest machine word: either a concrete 32-bit value (fast path) or a
// symbolic expression. This is the currency of the interpreter — registers,
// operands, and memory words are all Values.
#ifndef SRC_VM_VALUE_H_
#define SRC_VM_VALUE_H_

#include <cstdint>

#include "src/expr/expr.h"
#include "src/support/check.h"

namespace ddt {

class Value {
 public:
  Value() : conc_(0), sym_(nullptr) {}
  explicit Value(uint32_t concrete) : conc_(concrete), sym_(nullptr) {}

  static Value Concrete(uint32_t v) { return Value(v); }
  static Value Symbolic(ExprRef e) {
    DDT_CHECK(e != nullptr);
    Value v;
    if (e->IsConst()) {
      // Collapse constant expressions back into the fast path.
      v.conc_ = static_cast<uint32_t>(e->const_value());
    } else {
      v.sym_ = e;
    }
    return v;
  }

  bool IsConcrete() const { return sym_ == nullptr; }
  bool IsSymbolic() const { return sym_ != nullptr; }

  uint32_t concrete() const {
    DDT_CHECK(IsConcrete());
    return conc_;
  }

  ExprRef symbolic() const {
    DDT_CHECK(IsSymbolic());
    return sym_;
  }

  // Expression view regardless of representation (builds a Const on demand).
  ExprRef AsExpr(ExprContext* ctx) const {
    return IsSymbolic() ? sym_ : ctx->Const(conc_, 32);
  }

  bool operator==(const Value& other) const {
    return sym_ == other.sym_ && (sym_ != nullptr || conc_ == other.conc_);
  }

 private:
  uint32_t conc_;
  ExprRef sym_;
};

}  // namespace ddt

#endif  // SRC_VM_VALUE_H_
