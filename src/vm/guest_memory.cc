#include "src/vm/guest_memory.h"

#include "src/support/check.h"
#include "src/vm/layout.h"

namespace ddt {

GuestMemory::GuestMemory() : root_(std::make_shared<Root>()) {}

void GuestMemory::InitWrite(uint32_t addr, const uint8_t* data, size_t len) {
  DDT_CHECK_MSG(!forked_, "InitWrite after first fork");
  for (size_t i = 0; i < len; ++i) {
    uint32_t a = addr + static_cast<uint32_t>(i);
    uint32_t page = a / kPageSize;
    auto& bytes = root_->pages[page];
    if (bytes.empty()) {
      bytes.resize(kPageSize, 0);
    }
    bytes[a % kPageSize] = data[i];
  }
}

MemByte GuestMemory::Resolve(uint32_t addr, bool* walked_chain) const {
  *walked_chain = false;
  auto it = delta_.find(addr);
  if (it != delta_.end()) {
    return it->second;
  }
  for (const Node* node = parent_.get(); node != nullptr; node = node->parent.get()) {
    *walked_chain = true;
    auto nit = node->writes.find(addr);
    if (nit != node->writes.end()) {
      return nit->second;
    }
  }
  auto pit = root_->pages.find(addr / kPageSize);
  if (pit != root_->pages.end()) {
    return MemByte::Concrete(pit->second[addr % kPageSize]);
  }
  return MemByte::Concrete(0);
}

MemByte GuestMemory::ReadByte(uint32_t addr) {
  ++access_count_;
  if (stats_ != nullptr) {
    ++stats_->reads;
  }
  // Leaf read cache: avoids re-walking deep chains for hot addresses.
  auto cit = read_cache_.find(addr);
  if (cit != read_cache_.end()) {
    if (stats_ != nullptr) {
      ++stats_->cache_hits;
    }
    return cit->second;
  }
  bool walked = false;
  MemByte byte = Resolve(addr, &walked);
  if (walked) {
    if (stats_ != nullptr) {
      ++stats_->chain_walks;
    }
    read_cache_.emplace(addr, byte);
  }
  return byte;
}

void GuestMemory::WriteByte(uint32_t addr, MemByte byte) {
  ++access_count_;
  if (stats_ != nullptr) {
    ++stats_->writes;
  }
  delta_[addr] = byte;
  // The leaf cache must not shadow newer writes.
  auto cit = read_cache_.find(addr);
  if (cit != read_cache_.end()) {
    cit->second = byte;
  }
}

void GuestMemory::WriteConcrete(uint32_t addr, const uint8_t* data, size_t len) {
  for (size_t i = 0; i < len; ++i) {
    WriteByte(addr + static_cast<uint32_t>(i), MemByte::Concrete(data[i]));
  }
}

bool GuestMemory::TryReadConcrete(uint32_t addr, uint8_t* out, size_t len) {
  for (size_t i = 0; i < len; ++i) {
    MemByte byte = ReadByte(addr + static_cast<uint32_t>(i));
    if (byte.IsSymbolic()) {
      return false;
    }
    out[i] = byte.conc;
  }
  return true;
}

std::unordered_map<uint32_t, MemByte> GuestMemory::MergedWrites() const {
  // Walk root-most first so newer layers overwrite older ones.
  std::vector<const Node*> chain;
  for (const Node* node = parent_.get(); node != nullptr; node = node->parent.get()) {
    chain.push_back(node);
  }
  std::unordered_map<uint32_t, MemByte> merged;
  for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
    for (const auto& [addr, byte] : (*it)->writes) {
      merged[addr] = byte;
    }
  }
  for (const auto& [addr, byte] : delta_) {
    merged[addr] = byte;
  }
  return merged;
}

GuestMemory GuestMemory::Fork() {
  if (stats_ != nullptr) {
    ++stats_->forks;
  }
  forked_ = true;

  GuestMemory child;
  child.root_ = root_;
  child.stats_ = stats_;
  child.access_count_ = access_count_;
  child.eager_fork_ = eager_fork_;
  child.forked_ = true;

  if (eager_fork_) {
    // Ablation mode: the child receives a full deep copy of the merged
    // write set; no chain sharing.
    child.delta_ = MergedWrites();
    if (stats_ != nullptr) {
      stats_->bytes_copied += child.delta_.size();
    }
    return child;
  }

  // Chained COW: freeze the current delta (if any) onto the chain.
  if (!delta_.empty()) {
    auto frozen = std::make_shared<Node>();
    frozen->writes = std::move(delta_);
    frozen->parent = parent_;
    parent_ = frozen;
    delta_.clear();
  }
  child.parent_ = parent_;
  child.read_cache_ = read_cache_;  // still valid: chain below is immutable
  CompactIfDeep();
  child.CompactIfDeep();
  return child;
}

size_t GuestMemory::ChainDepth() const {
  size_t depth = 0;
  for (const Node* node = parent_.get(); node != nullptr; node = node->parent.get()) {
    ++depth;
  }
  return depth;
}

void GuestMemory::CompactIfDeep() {
  if (ChainDepth() < kCompactionDepth) {
    return;
  }
  // Flatten the chain into a single frozen node. This bounds read cost on
  // long-lived states without giving up sharing for recent forks.
  auto flat = std::make_shared<Node>();
  std::vector<const Node*> chain;
  for (const Node* node = parent_.get(); node != nullptr; node = node->parent.get()) {
    chain.push_back(node);
  }
  for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
    for (const auto& [addr, byte] : (*it)->writes) {
      flat->writes[addr] = byte;
    }
  }
  if (stats_ != nullptr) {
    stats_->bytes_copied += flat->writes.size();
    ++stats_->compactions;
  }
  parent_ = flat;
}

}  // namespace ddt
