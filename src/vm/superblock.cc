#include "src/vm/superblock.h"

#include <unordered_map>

namespace ddt {

namespace {

// Lowers one straight-line (non-terminator) instruction. Returns false for
// opcodes the fast path never retires — they become side exits.
bool LowerSimple(const Instruction& insn, uint32_t pc, SbOp* op) {
  op->rd = insn.rd;
  op->ra = insn.ra;
  op->rb = insn.rb;
  op->imm = insn.imm;
  op->pc = pc;
  switch (insn.opcode) {
    case Opcode::kNop:  op->kind = SbKind::kNop;  return true;
    case Opcode::kMov:  op->kind = SbKind::kMovR; return true;
    case Opcode::kMovI: op->kind = SbKind::kMovI; return true;
    case Opcode::kNot:  op->kind = SbKind::kNotR; return true;
    case Opcode::kNeg:  op->kind = SbKind::kNegR; return true;

    case Opcode::kAdd:   op->kind = SbKind::kAddRR;  return true;
    case Opcode::kAddI:  op->kind = SbKind::kAddRI;  return true;
    case Opcode::kSub:   op->kind = SbKind::kSubRR;  return true;
    case Opcode::kSubI:  op->kind = SbKind::kSubRI;  return true;
    case Opcode::kMul:   op->kind = SbKind::kMulRR;  return true;
    case Opcode::kMulI:  op->kind = SbKind::kMulRI;  return true;
    case Opcode::kAnd:   op->kind = SbKind::kAndRR;  return true;
    case Opcode::kAndI:  op->kind = SbKind::kAndRI;  return true;
    case Opcode::kOr:    op->kind = SbKind::kOrRR;   return true;
    case Opcode::kOrI:   op->kind = SbKind::kOrRI;   return true;
    case Opcode::kXor:   op->kind = SbKind::kXorRR;  return true;
    case Opcode::kXorI:  op->kind = SbKind::kXorRI;  return true;
    case Opcode::kShl:   op->kind = SbKind::kShlRR;  return true;
    case Opcode::kShlI:  op->kind = SbKind::kShlRI;  return true;
    case Opcode::kLShr:  op->kind = SbKind::kLShrRR; return true;
    case Opcode::kLShrI: op->kind = SbKind::kLShrRI; return true;
    case Opcode::kAShr:  op->kind = SbKind::kAShrRR; return true;
    case Opcode::kAShrI: op->kind = SbKind::kAShrRI; return true;

    case Opcode::kSeq:    op->kind = SbKind::kSeqRR;  return true;
    case Opcode::kSeqI:   op->kind = SbKind::kSeqRI;  return true;
    case Opcode::kSne:    op->kind = SbKind::kSneRR;  return true;
    case Opcode::kSneI:   op->kind = SbKind::kSneRI;  return true;
    case Opcode::kSltU:   op->kind = SbKind::kSltURR; return true;
    case Opcode::kSltUI:  op->kind = SbKind::kSltURI; return true;
    case Opcode::kSltS:   op->kind = SbKind::kSltSRR; return true;
    case Opcode::kSltSI:  op->kind = SbKind::kSltSRI; return true;
    case Opcode::kSleU:   op->kind = SbKind::kSleURR; return true;
    case Opcode::kSleUI:  op->kind = SbKind::kSleURI; return true;
    case Opcode::kSleS:   op->kind = SbKind::kSleSRR; return true;
    case Opcode::kSleSI:  op->kind = SbKind::kSleSRI; return true;

    case Opcode::kUDiv:  op->kind = SbKind::kUDivRR; return true;
    case Opcode::kUDivI: op->kind = SbKind::kUDivRI; return true;
    case Opcode::kSDiv:  op->kind = SbKind::kSDivRR; return true;
    case Opcode::kURem:  op->kind = SbKind::kURemRR; return true;

    case Opcode::kLd8U:
    case Opcode::kLd8S:
    case Opcode::kLd16U:
    case Opcode::kLd16S:
    case Opcode::kLd32:
      op->kind = SbKind::kLoad;
      op->mem_size = insn.opcode == Opcode::kLd32
                         ? 4
                         : (insn.opcode == Opcode::kLd16U || insn.opcode == Opcode::kLd16S ? 2
                                                                                           : 1);
      if (insn.opcode == Opcode::kLd8S || insn.opcode == Opcode::kLd16S) {
        op->flags |= kSbLoadSigned;
      }
      return true;
    case Opcode::kSt8:
    case Opcode::kSt16:
    case Opcode::kSt32:
      op->kind = SbKind::kStore;
      op->mem_size =
          insn.opcode == Opcode::kSt32 ? 4 : (insn.opcode == Opcode::kSt16 ? 2 : 1);
      return true;
    case Opcode::kPush: op->kind = SbKind::kPush; return true;
    case Opcode::kPop:  op->kind = SbKind::kPop;  return true;

    default:
      return false;  // terminators handled by the caller; unknown → side exit
  }
}

SbOp SideExitAt(uint32_t pc) {
  SbOp op;
  op.kind = SbKind::kSideExit;
  op.pc = pc;
  return op;
}

}  // namespace

SuperblockCache::SuperblockCache(BlockCache* cache, uint32_t code_begin,
                                 const std::vector<uint8_t>* leader_slots)
    : cache_(cache),
      base_(code_begin),
      end_(code_begin + static_cast<uint32_t>(cache->num_slots() * kInstructionSize)),
      leader_slots_(leader_slots) {
  table_.resize(cache->num_slots());
}

bool SuperblockCache::SlotFor(uint32_t pc, size_t* slot) const {
  uint32_t offset = pc - base_;
  if (pc < base_ || offset % kInstructionSize != 0) {
    return false;
  }
  size_t index = offset / kInstructionSize;
  if (index >= table_.size()) {
    return false;
  }
  *slot = index;
  return true;
}

const Superblock* SuperblockCache::AtPc(uint32_t pc) const {
  size_t slot;
  return SlotFor(pc, &slot) ? table_[slot].get() : nullptr;
}

const Superblock* SuperblockCache::Compile(uint32_t entry_pc, const Limits& limits) {
  size_t entry_slot;
  if (!SlotFor(entry_pc, &entry_slot)) {
    return nullptr;
  }
  if (table_[entry_slot] != nullptr) {
    return table_[entry_slot].get();
  }
  obs::ScopedPhase obs_phase(profile_, obs::Phase::kSuperblock);

  auto sb = std::make_unique<Superblock>();
  sb->entry_pc = entry_pc;

  // Breadth-first over static successors: deterministic region shape for a
  // given entry, independent of runtime values. Targets that land mid-run in
  // an already-lowered block are tail-duplicated (lowered again from the
  // target), which keeps every region block entry at op granularity.
  std::vector<uint32_t> queue{entry_pc};
  size_t queue_head = 0;
  std::unordered_map<uint32_t, int32_t> block_start;  // region-block pc -> op index
  struct Fixup {
    size_t op;
    uint32_t target;
    bool is_fall;
  };
  std::vector<Fixup> fixups;

  auto queue_target = [&](size_t op_index, uint32_t target, bool is_fall) {
    fixups.push_back(Fixup{op_index, target, is_fall});
    queue.push_back(target);
  };

  while (queue_head < queue.size()) {
    uint32_t pc = queue[queue_head++];
    if (block_start.count(pc) != 0) {
      continue;
    }
    if (block_start.size() >= limits.max_blocks || sb->ops.size() >= limits.max_ops) {
      continue;  // budget spent: unresolved fixups stay external exits
    }
    block_start.emplace(pc, static_cast<int32_t>(sb->ops.size()));
    ++sb->blocks;

    uint32_t cur = pc;
    for (;;) {
      if (sb->ops.size() >= limits.max_ops) {
        // Synthetic exit: zero instructions retired, chainable once the
        // continuation gets hot and compiles on its own.
        SbOp exit_op;
        exit_op.kind = SbKind::kExit;
        exit_op.imm = cur;
        sb->ops.push_back(exit_op);
        break;
      }
      size_t cur_slot;
      if (!SlotFor(cur, &cur_slot)) {
        // Fell off the code segment (or into a non-indexable tail): tier-1
        // reports the invalid-address bug from this exact boundary.
        sb->ops.push_back(SideExitAt(cur));
        break;
      }
      const Instruction* insn = cache_->Lookup(cur);
      if (insn == nullptr) {
        sb->ops.push_back(SideExitAt(cur));  // undecodable slot
        break;
      }

      SbOp op;
      op.pc = cur;
      if (leader_slots_ != nullptr && cur_slot < leader_slots_->size() &&
          (*leader_slots_)[cur_slot] != 0) {
        op.flags |= kSbLeader;
      }

      if (IsTerminator(insn->opcode)) {
        uint32_t fall = cur + kInstructionSize;
        size_t target_slot;
        switch (insn->opcode) {
          case Opcode::kBr:
            if (!SlotFor(insn->imm, &target_slot)) {
              sb->ops.push_back(SideExitAt(cur));  // invalid/misaligned target
              break;
            }
            op.kind = SbKind::kBrOp;
            op.imm = insn->imm;
            sb->ops.push_back(op);
            ++sb->instructions;
            queue_target(sb->ops.size() - 1, insn->imm, /*is_fall=*/false);
            break;
          case Opcode::kBz:
          case Opcode::kBnz:
            if (!SlotFor(insn->imm, &target_slot)) {
              sb->ops.push_back(SideExitAt(cur));
              break;
            }
            op.kind = insn->opcode == Opcode::kBz ? SbKind::kBzOp : SbKind::kBnzOp;
            op.ra = insn->ra;
            op.imm = insn->imm;
            sb->ops.push_back(op);
            ++sb->instructions;
            queue_target(sb->ops.size() - 1, insn->imm, /*is_fall=*/false);
            queue_target(sb->ops.size() - 1, fall, /*is_fall=*/true);
            break;
          case Opcode::kCall:
            if (!SlotFor(insn->imm, &target_slot)) {
              sb->ops.push_back(SideExitAt(cur));
              break;
            }
            // The region follows the call edge into the callee; the return
            // continuation is reached only through ret, which side-exits.
            op.kind = SbKind::kCallOp;
            op.imm = insn->imm;
            sb->ops.push_back(op);
            ++sb->instructions;
            queue_target(sb->ops.size() - 1, insn->imm, /*is_fall=*/false);
            break;
          default:
            // kJr / kCallR / kRet / kKCall / kHalt: indirect or boundary
            // transfers the fast path never retires.
            sb->ops.push_back(SideExitAt(cur));
            break;
        }
        break;  // block ends at its terminator
      }

      if (!LowerSimple(*insn, cur, &op)) {
        sb->ops.push_back(SideExitAt(cur));  // unknown opcode: tier-1 reports
        break;
      }
      sb->ops.push_back(op);
      ++sb->instructions;
      cur += kInstructionSize;

      // Straight-line fall into a block this region already lowered: link to
      // it with synthetic glue instead of duplicating the whole run.
      auto linked = block_start.find(cur);
      if (linked != block_start.end()) {
        SbOp jump;
        jump.kind = SbKind::kJump;
        jump.taken = linked->second;
        sb->ops.push_back(jump);
        break;
      }
    }
  }

  // Resolve internal edges; anything still unresolved stays an external exit
  // (taken/fall == -1) that chains through the superblock table at runtime.
  for (const Fixup& fixup : fixups) {
    auto it = block_start.find(fixup.target);
    if (it == block_start.end()) {
      continue;
    }
    if (fixup.is_fall) {
      sb->ops[fixup.op].fall = it->second;
    } else {
      sb->ops[fixup.op].taken = it->second;
    }
  }

  ++stats_.compiled;
  stats_.ops_lowered += sb->ops.size();
  stats_.instructions_lowered += sb->instructions;
  table_[entry_slot] = std::move(sb);
  return table_[entry_slot].get();
}

}  // namespace ddt
