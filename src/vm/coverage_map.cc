#include "src/vm/coverage_map.h"

#include <algorithm>

namespace ddt {

namespace {

int PopcountWord(uint64_t w) {
#if defined(__GNUC__) || defined(__clang__)
  return __builtin_popcountll(w);
#else
  int n = 0;
  while (w != 0) {
    w &= w - 1;
    ++n;
  }
  return n;
#endif
}

}  // namespace

void CoverageBitmap::Resize(size_t num_slots) {
  if (num_slots <= num_slots_) {
    return;
  }
  num_slots_ = num_slots;
  words_.resize((num_slots + 63) / 64, 0);
}

bool CoverageBitmap::Set(size_t slot) {
  if (slot >= num_slots_) {
    Resize(slot + 1);
  }
  uint64_t mask = 1ull << (slot % 64);
  uint64_t& word = words_[slot / 64];
  if ((word & mask) != 0) {
    return false;
  }
  word |= mask;
  return true;
}

bool CoverageBitmap::Test(size_t slot) const {
  if (slot >= num_slots_) {
    return false;
  }
  return (words_[slot / 64] & (1ull << (slot % 64))) != 0;
}

size_t CoverageBitmap::Popcount() const {
  size_t n = 0;
  for (uint64_t w : words_) {
    n += static_cast<size_t>(PopcountWord(w));
  }
  return n;
}

size_t CoverageBitmap::OrWith(const CoverageBitmap& other) {
  if (other.num_slots_ > num_slots_) {
    Resize(other.num_slots_);
  }
  size_t fresh = 0;
  for (size_t i = 0; i < other.words_.size(); ++i) {
    uint64_t incoming = other.words_[i] & ~words_[i];
    fresh += static_cast<size_t>(PopcountWord(incoming));
    words_[i] |= other.words_[i];
  }
  return fresh;
}

size_t CoverageBitmap::NewlyCovered(const CoverageBitmap& other) const {
  size_t fresh = 0;
  for (size_t i = 0; i < other.words_.size(); ++i) {
    uint64_t mine = i < words_.size() ? words_[i] : 0;
    fresh += static_cast<size_t>(PopcountWord(other.words_[i] & ~mine));
  }
  return fresh;
}

size_t CoverageBitmap::SignificantWords() const {
  size_t n = words_.size();
  while (n > 0 && words_[n - 1] == 0) {
    --n;
  }
  return n;
}

uint64_t CoverageBitmap::Fingerprint() const {
  uint64_t h = 0xCBF29CE484222325ull;
  size_t n = SignificantWords();
  for (size_t i = 0; i < n; ++i) {
    uint64_t w = words_[i];
    for (int b = 0; b < 8; ++b) {
      h ^= (w >> (b * 8)) & 0xFF;
      h *= 0x100000001B3ull;
    }
  }
  return h;
}

std::string CoverageBitmap::ToHex() const {
  static const char kDigits[] = "0123456789abcdef";
  size_t n = SignificantWords();
  std::string out;
  out.reserve(n * 16);
  for (size_t i = 0; i < n; ++i) {
    uint64_t w = words_[i];
    for (int nib = 15; nib >= 0; --nib) {
      out.push_back(kDigits[(w >> (nib * 4)) & 0xF]);
    }
  }
  return out;
}

bool CoverageBitmap::FromHex(const std::string& hex, CoverageBitmap* out) {
  if (hex.size() % 16 != 0) {
    return false;
  }
  CoverageBitmap bm;
  bm.words_.resize(hex.size() / 16, 0);
  bm.num_slots_ = bm.words_.size() * 64;
  for (size_t i = 0; i < bm.words_.size(); ++i) {
    uint64_t w = 0;
    for (size_t j = 0; j < 16; ++j) {
      char c = hex[i * 16 + j];
      uint64_t nibble;
      if (c >= '0' && c <= '9') {
        nibble = static_cast<uint64_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        nibble = static_cast<uint64_t>(c - 'a' + 10);
      } else {
        return false;
      }
      w = (w << 4) | nibble;
    }
    bm.words_[i] = w;
  }
  *out = std::move(bm);
  return true;
}

}  // namespace ddt
