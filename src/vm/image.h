// DDF ("DDT Driver Format"): the binary container for guest drivers.
//
// This plays the role of a PE/SYS file: a header, an import table naming the
// kernel API functions the driver links against, a code segment, and an
// initialized-data segment (plus a bss size). DDT treats the payload as
// opaque bytes — everything it learns about the driver it learns by decoding
// and executing them.
//
// On-disk layout (all little-endian):
//   DdfHeader
//   import_count * 32-byte zero-padded import names
//   code bytes
//   data bytes
#ifndef SRC_VM_IMAGE_H_
#define SRC_VM_IMAGE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/support/status.h"

namespace ddt {

inline constexpr uint32_t kDdfMagic = 0x31464444;  // "DDF1"
inline constexpr size_t kImportNameSize = 32;

struct DriverImage {
  std::string name;
  uint32_t entry_offset = 0;  // offset of the load entry point within code
  std::vector<uint8_t> code;
  std::vector<uint8_t> data;
  uint32_t bss_size = 0;
  std::vector<std::string> imports;

  std::vector<uint8_t> Serialize() const;
  static Result<DriverImage> Parse(const std::vector<uint8_t>& bytes);

  // File round-trip: a .ddf on disk is exactly the Serialize() bytes.
  Status SaveFile(const std::string& path) const;
  static Result<DriverImage> LoadFile(const std::string& path);

  // "Size of driver binary file" for Table 1.
  size_t BinaryFileSize() const;
  // "Size of driver code segment" for Table 1.
  size_t CodeSegmentSize() const { return code.size(); }
  // Total in-memory footprint when loaded.
  size_t LoadedSize() const { return code.size() + data.size() + bss_size; }
};

// Where a loaded driver lives in guest memory.
struct LoadedDriver {
  uint32_t base = 0;         // code starts here
  uint32_t code_begin = 0;
  uint32_t code_end = 0;     // exclusive
  uint32_t data_begin = 0;
  uint32_t data_end = 0;     // exclusive, includes bss
  uint32_t entry_point = 0;  // absolute address
  std::vector<std::string> imports;
  std::string name;

  bool ContainsCode(uint32_t addr) const { return addr >= code_begin && addr < code_end; }
  bool ContainsData(uint32_t addr) const { return addr >= data_begin && addr < data_end; }
};

class GuestMemory;

// Copies the image's segments into guest memory at `base` (code, then data,
// then zeroed bss) and returns the loaded layout. Must run before the first
// memory fork.
LoadedDriver InstallImage(GuestMemory* mem, const DriverImage& image, uint32_t base);

}  // namespace ddt

#endif  // SRC_VM_IMAGE_H_
