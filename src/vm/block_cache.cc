#include "src/vm/block_cache.h"

namespace ddt {

BlockCache::BlockCache(const uint8_t* code, size_t size, uint32_t base)
    : code_(code, code + size), base_(base) {
  size_t slots = size / kInstructionSize;
  insns_.resize(slots);
  slot_state_.assign(slots, kUnknown);
  exec_counts_.assign(slots, 0);
}

bool BlockCache::SlotFor(uint32_t pc, size_t* slot) const {
  uint32_t offset = pc - base_;
  if (pc < base_ || offset % kInstructionSize != 0) {
    return false;
  }
  size_t index = offset / kInstructionSize;
  if (index >= slot_state_.size()) {
    return false;
  }
  *slot = index;
  return true;
}

void BlockCache::DecodeBlockFrom(size_t slot) {
  obs::ScopedPhase obs_phase(profile_, obs::Phase::kDecode);
  DecodedBlock block;
  block.begin = base_ + static_cast<uint32_t>(slot * kInstructionSize);

  size_t cursor = slot;
  while (cursor < slot_state_.size() && slot_state_[cursor] == kUnknown) {
    std::optional<Instruction> decoded =
        DecodeInstruction(code_.data() + cursor * kInstructionSize);
    if (!decoded.has_value()) {
      slot_state_[cursor] = kInvalid;
      block.ends_invalid = true;
      break;
    }
    insns_[cursor] = *decoded;
    slot_state_[cursor] = kDecoded;
    ++stats_.instructions_decoded;
    if (IsTerminator(decoded->opcode)) {
      ++cursor;
      uint32_t fall = base_ + static_cast<uint32_t>(cursor * kInstructionSize);
      switch (decoded->opcode) {
        case Opcode::kBr:
          block.successors = {decoded->imm};
          break;
        case Opcode::kBz:
        case Opcode::kBnz:
          block.successors = {decoded->imm, fall};
          break;
        case Opcode::kCall:
          // The callee eventually returns to `fall`; both are static targets.
          block.successors = {decoded->imm, fall};
          break;
        case Opcode::kJr:
        case Opcode::kCallR:
        case Opcode::kRet:
          block.has_indirect_successor = true;
          break;
        default:  // kHalt: no successors
          break;
      }
      block.end = fall;
      blocks_.emplace(block.begin, std::move(block));
      ++stats_.blocks_decoded;
      return;
    }
    ++cursor;
  }
  // Ran into an already-decoded region, an invalid slot, or the end of the
  // code segment: the block falls through (unless it ended invalid).
  block.end = base_ + static_cast<uint32_t>(cursor * kInstructionSize);
  if (!block.ends_invalid && cursor < slot_state_.size()) {
    block.successors = {block.end};
  }
  blocks_.emplace(block.begin, std::move(block));
  ++stats_.blocks_decoded;
}

const Instruction* BlockCache::Lookup(uint32_t pc) {
  size_t slot;
  if (!SlotFor(pc, &slot)) {
    ++stats_.fallback_fetches;
    return nullptr;
  }
  if (slot_state_[slot] == kUnknown) {
    DecodeBlockFrom(slot);
  } else {
    ++stats_.hits;
  }
  if (slot_state_[slot] != kDecoded) {
    ++stats_.fallback_fetches;
    return nullptr;
  }
  return &insns_[slot];
}

uint32_t BlockCache::NoteBlockEntry(uint32_t pc, uint32_t hot_threshold) {
  size_t slot;
  if (!SlotFor(pc, &slot)) {
    return 0;
  }
  uint32_t count = exec_counts_[slot];
  if (count == UINT32_MAX) {
    return count;  // saturated
  }
  exec_counts_[slot] = ++count;
  if (count == hot_threshold) {
    ++stats_.hot_blocks;
  }
  return count;
}

uint32_t BlockCache::ExecCount(uint32_t pc) const {
  size_t slot;
  return SlotFor(pc, &slot) ? exec_counts_[slot] : 0;
}

const BlockCache::DecodedBlock* BlockCache::BlockAt(uint32_t pc) {
  size_t slot;
  if (!SlotFor(pc, &slot)) {
    return nullptr;
  }
  if (slot_state_[slot] == kUnknown) {
    DecodeBlockFrom(slot);
  }
  auto it = blocks_.find(pc);
  return it == blocks_.end() ? nullptr : &it->second;
}

}  // namespace ddt
