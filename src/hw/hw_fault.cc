#include "src/hw/hw_fault.h"

#include "src/support/strings.h"

namespace ddt {

const char* HwFaultKindName(HwFaultKind kind) {
  switch (kind) {
    case HwFaultKind::kSurpriseRemoval:
      return "surprise-removal";
    case HwFaultKind::kRemovalAtInterrupt:
      return "removal-at-irq";
    case HwFaultKind::kStickyError:
      return "sticky-error";
    case HwFaultKind::kIrqStorm:
      return "irq-storm";
    case HwFaultKind::kIrqDrought:
      return "irq-drought";
    case HwFaultKind::kDoorbellDrop:
      return "doorbell-drop";
    case HwFaultKind::kNumHwFaultKinds:
      break;
  }
  return "?";
}

bool HwPointsTrigger(const std::vector<HwFaultPoint>& points, HwFaultKind kind, uint32_t index) {
  for (const HwFaultPoint& p : points) {
    if (p.kind == kind && p.index == index) return true;
  }
  return false;
}

std::string FormatHwPoints(const std::vector<HwFaultPoint>& points) {
  std::string out;
  for (const HwFaultPoint& p : points) {
    if (!out.empty()) out += " + ";
    out += StrFormat("%s#%u", HwFaultKindName(p.kind), p.index);
  }
  return out;
}

std::string FormatHwFaultSchedule(const std::vector<InjectedHwFault>& faults) {
  std::string out;
  for (const InjectedHwFault& f : faults) {
    if (!out.empty()) out += ", ";
    out += StrFormat("%s#%u", HwFaultKindName(f.kind), f.index);
  }
  return out;
}

}  // namespace ddt
