// Hardware fault plane (hostile-device campaigns).
//
// The symbolic device already models *arbitrary* hardware values; this plane
// models hostile device *behaviors* that value-symbolism cannot express:
// surprise removal (hot-unplug mid-operation: reads float to all-ones, writes
// are dropped, a PnP removal event reaches the exerciser), sticky MMIO error
// states, interrupt storms and droughts, and dropped doorbell writes. Each
// fault keys off a deterministic per-path device-interaction counter (MMIO
// access/read/write index, boundary-crossing index, interrupt-delivery index)
// kept in KernelState, so a schedule is exactly replayable the same way a
// kernel FaultPlan is (§3.5): recording the plan in a bug report suffices.
//
// This header owns the device-level vocabulary (kinds, points, profiles);
// plan generation and the FaultPlan carrier live one layer up in
// src/engine/fault_injection.h.
#ifndef SRC_HW_HW_FAULT_H_
#define SRC_HW_HW_FAULT_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace ddt {

// Device-level fault behaviors. Each kind's `index` counts a different
// per-path interaction stream (all counters live in KernelState and fork
// with the path, so triggering is deterministic and replayable).
enum class HwFaultKind : uint8_t {
  kSurpriseRemoval = 0,    // hot-unplug at MMIO access #index (reads+writes)
  kRemovalAtInterrupt = 1, // hot-unplug in place of interrupt delivery #index
  kStickyError = 2,        // from MMIO read #index on, reads return all-ones
  kIrqStorm = 3,           // force an interrupt at boundary crossing #index
  kIrqDrought = 4,         // from crossing #index on, suppress all interrupts
  kDoorbellDrop = 5,       // silently drop MMIO write #index
  kNumHwFaultKinds = 6,
};

inline constexpr size_t kNumHwFaultKinds =
    static_cast<size_t>(HwFaultKind::kNumHwFaultKinds);

const char* HwFaultKindName(HwFaultKind kind);

// One device-level injection point: the index-th event of this kind's
// interaction stream on a path misbehaves.
struct HwFaultPoint {
  HwFaultKind kind = HwFaultKind::kSurpriseRemoval;
  uint32_t index = 0;

  bool operator==(const HwFaultPoint& other) const {
    return kind == other.kind && index == other.index;
  }
};

// One hardware fault actually triggered on a path, in trigger order (the
// device-side half of a bug's failure schedule).
struct InjectedHwFault {
  HwFaultKind kind = HwFaultKind::kSurpriseRemoval;
  uint32_t index = 0;
};

// Per-stream high-water marks observed across all paths of a pass: how many
// MMIO accesses / reads / writes, boundary crossings, and interrupt
// deliveries any path performed. The campaign uses the baseline pass's
// profile to place device-level injection points at indices that exist.
struct HwSiteProfile {
  uint32_t max_mmio_accesses = 0;
  uint32_t max_mmio_reads = 0;
  uint32_t max_mmio_writes = 0;
  uint32_t max_crossings = 0;
  uint32_t max_interrupts = 0;

  bool Empty() const {
    return max_mmio_accesses == 0 && max_mmio_reads == 0 && max_mmio_writes == 0 &&
           max_crossings == 0 && max_interrupts == 0;
  }
};

// Linear scan for an exact (kind, index) match — the trigger predicate.
bool HwPointsTrigger(const std::vector<HwFaultPoint>& points, HwFaultKind kind, uint32_t index);

// "surprise-removal#3 + doorbell-drop#1" (no label decoration).
std::string FormatHwPoints(const std::vector<HwFaultPoint>& points);

// Human-readable device-side failure schedule ("surprise-removal@mmio#3, ...").
std::string FormatHwFaultSchedule(const std::vector<InjectedHwFault>& faults);

// The all-ones pattern a removed (or sticky-errored) device floats onto the
// bus for a read of `size` bytes — what real PCI hot-unplug looks like.
inline constexpr uint32_t HwRemovedReadBits(unsigned size) {
  return size >= 4 ? 0xFFFF'FFFFu : ((1u << (size * 8)) - 1u);
}

}  // namespace ddt

#endif  // SRC_HW_HW_FAULT_H_
