// PCI device descriptors (§4.2: the "empty shell" fake device).
//
// DDT fools the OS into loading a driver by presenting a descriptor with the
// right vendor/device IDs and resource requirements; the device behind it
// implements no logic beyond producing symbolic values. MiniOS's PnP path
// allocates one MMIO window per BAR (at kMmioBase + 0x1000 * index) and
// assigns the interrupt line before invoking the driver's load entry point.
#ifndef SRC_HW_PCI_H_
#define SRC_HW_PCI_H_

#include <cstdint>
#include <string>
#include <vector>

namespace ddt {

struct PciBar {
  uint32_t size = 0x100;  // bytes of register space
};

struct PciDescriptor {
  uint16_t vendor_id = 0;
  uint16_t device_id = 0;
  uint8_t revision = 0;
  uint8_t irq_line = 10;
  std::vector<PciBar> bars;
  std::string pretty_name;

  // Guest address where BAR `index` is mapped by the PnP path.
  uint32_t BarBase(size_t index) const;
};

// Config-space offsets readable through MosReadPciConfig.
inline constexpr uint32_t kPciCfgVendorId = 0x00;
inline constexpr uint32_t kPciCfgDeviceId = 0x02;
inline constexpr uint32_t kPciCfgRevision = 0x08;
inline constexpr uint32_t kPciCfgIrqLine = 0x3C;

}  // namespace ddt

#endif  // SRC_HW_PCI_H_
