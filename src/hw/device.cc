#include "src/hw/device.h"

#include "src/hw/pci.h"
#include "src/support/check.h"
#include "src/support/strings.h"
#include "src/vm/layout.h"

namespace ddt {

uint32_t PciDescriptor::BarBase(size_t index) const {
  DDT_CHECK(index < bars.size());
  uint32_t base = kMmioBase + static_cast<uint32_t>(index) * 0x1000;
  DDT_CHECK(base + bars[index].size <= kMmioLimit);
  return base;
}

Value SymbolicDevice::Read(uint32_t offset, unsigned size, ExprContext* ctx) {
  DDT_CHECK(size == 1 || size == 2 || size == 4);
  VarOrigin origin;
  origin.source = VarOrigin::Source::kHardwareRead;
  origin.label = name_;
  origin.aux = offset;
  origin.seq = read_seq_;
  std::string var_name = StrFormat("hw_%s_%x_%llu", name_.c_str(), offset,
                                   static_cast<unsigned long long>(read_seq_));
  ++read_seq_;
  ExprRef var = ctx->Var(static_cast<uint8_t>(size * 8), var_name, origin);
  return Value::Symbolic(size == 4 ? var : ctx->ZExt(var, 32));
}

Value ScriptedDevice::Read(uint32_t offset, unsigned size, ExprContext* ctx) {
  DDT_CHECK(size == 1 || size == 2 || size == 4);
  uint32_t raw;
  if (read_seq_ < script_.size()) {
    raw = script_[read_seq_];
  } else {
    raw = fallback_rng_.Next32();
  }
  ++read_seq_;
  uint32_t mask = size == 4 ? 0xFFFFFFFFu : ((1u << (size * 8)) - 1);
  return Value::Concrete(raw & mask);
}

}  // namespace ddt
