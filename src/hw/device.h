// Device models behind the PCI shell.
//
// SymbolicDevice is the paper's fully symbolic hardware (§3.3): register
// reads return fresh unconstrained symbolic values, writes are discarded,
// and an interrupt can always (symbolically) arrive. ScriptedDevice replays
// a fixed sequence of concrete read values — it is what the trace replayer
// and the Driver Verifier stress baseline run against.
//
// A model is per-execution-state (the read sequence number is path-local so
// solved inputs map 1:1 onto replay reads); Clone() is called on fork.
#ifndef SRC_HW_DEVICE_H_
#define SRC_HW_DEVICE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/expr/expr.h"
#include "src/support/rng.h"
#include "src/vm/value.h"

namespace ddt {

class DeviceModel {
 public:
  virtual ~DeviceModel() = default;
  virtual std::unique_ptr<DeviceModel> Clone() const = 0;

  // Handles a driver read of `size` bytes (1/2/4) at BAR-relative `offset`.
  virtual Value Read(uint32_t offset, unsigned size, ExprContext* ctx) = 0;
  // Handles a driver write. Symbolic devices discard it.
  virtual void Write(uint32_t offset, unsigned size, const Value& value) = 0;
  // Whether the interrupt line can be asserted at this point.
  virtual bool InterruptPossible() const = 0;

  // Number of reads served so far on this path (the replay key space).
  virtual uint64_t reads_served() const = 0;
};

// Fully symbolic hardware: every read is a fresh variable tagged with its
// offset and sequence number (VarOrigin::kHardwareRead).
class SymbolicDevice : public DeviceModel {
 public:
  explicit SymbolicDevice(std::string device_name) : name_(std::move(device_name)) {}

  std::unique_ptr<DeviceModel> Clone() const override {
    return std::make_unique<SymbolicDevice>(*this);
  }

  Value Read(uint32_t offset, unsigned size, ExprContext* ctx) override;
  void Write(uint32_t offset, unsigned size, const Value& value) override {}
  bool InterruptPossible() const override { return true; }
  uint64_t reads_served() const override { return read_seq_; }

 private:
  std::string name_;
  uint64_t read_seq_ = 0;
};

// Concrete device fed by a script: read k returns script[k] (or values from
// an Rng once the script is exhausted, for stress testing). Interrupts fire
// only when the harness schedules them, so InterruptPossible() is false —
// delivery is driven externally during replay.
class ScriptedDevice : public DeviceModel {
 public:
  ScriptedDevice(std::vector<uint32_t> script, uint64_t fallback_seed)
      : script_(std::move(script)), fallback_rng_(fallback_seed) {}

  std::unique_ptr<DeviceModel> Clone() const override {
    return std::make_unique<ScriptedDevice>(*this);
  }

  Value Read(uint32_t offset, unsigned size, ExprContext* ctx) override;
  void Write(uint32_t offset, unsigned size, const Value& value) override {
    write_count_ += 1;
  }
  bool InterruptPossible() const override { return false; }
  uint64_t reads_served() const override { return read_seq_; }
  uint64_t write_count() const { return write_count_; }

 private:
  std::vector<uint32_t> script_;
  Rng fallback_rng_;
  uint64_t read_seq_ = 0;
  uint64_t write_count_ = 0;
};

}  // namespace ddt

#endif  // SRC_HW_DEVICE_H_
