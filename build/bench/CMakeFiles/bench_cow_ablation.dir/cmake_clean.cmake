file(REMOVE_RECURSE
  "CMakeFiles/bench_cow_ablation.dir/bench_cow_ablation.cc.o"
  "CMakeFiles/bench_cow_ablation.dir/bench_cow_ablation.cc.o.d"
  "bench_cow_ablation"
  "bench_cow_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_cow_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
