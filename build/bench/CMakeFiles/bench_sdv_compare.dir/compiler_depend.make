# Empty compiler generated dependencies file for bench_sdv_compare.
# This may be replaced when dependencies are built.
