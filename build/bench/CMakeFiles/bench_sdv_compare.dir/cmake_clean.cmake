file(REMOVE_RECURSE
  "CMakeFiles/bench_sdv_compare.dir/bench_sdv_compare.cc.o"
  "CMakeFiles/bench_sdv_compare.dir/bench_sdv_compare.cc.o.d"
  "bench_sdv_compare"
  "bench_sdv_compare.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sdv_compare.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
