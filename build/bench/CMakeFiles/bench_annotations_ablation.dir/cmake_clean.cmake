file(REMOVE_RECURSE
  "CMakeFiles/bench_annotations_ablation.dir/bench_annotations_ablation.cc.o"
  "CMakeFiles/bench_annotations_ablation.dir/bench_annotations_ablation.cc.o.d"
  "bench_annotations_ablation"
  "bench_annotations_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_annotations_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
