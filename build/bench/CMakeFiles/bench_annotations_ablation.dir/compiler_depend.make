# Empty compiler generated dependencies file for bench_annotations_ablation.
# This may be replaced when dependencies are built.
