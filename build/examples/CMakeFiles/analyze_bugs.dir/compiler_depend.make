# Empty compiler generated dependencies file for analyze_bugs.
# This may be replaced when dependencies are built.
