file(REMOVE_RECURSE
  "CMakeFiles/analyze_bugs.dir/analyze_bugs.cpp.o"
  "CMakeFiles/analyze_bugs.dir/analyze_bugs.cpp.o.d"
  "analyze_bugs"
  "analyze_bugs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analyze_bugs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
