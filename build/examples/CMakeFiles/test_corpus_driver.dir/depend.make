# Empty dependencies file for test_corpus_driver.
# This may be replaced when dependencies are built.
