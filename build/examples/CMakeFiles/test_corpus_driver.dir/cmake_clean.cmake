file(REMOVE_RECURSE
  "CMakeFiles/test_corpus_driver.dir/test_corpus_driver.cpp.o"
  "CMakeFiles/test_corpus_driver.dir/test_corpus_driver.cpp.o.d"
  "test_corpus_driver"
  "test_corpus_driver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_corpus_driver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
