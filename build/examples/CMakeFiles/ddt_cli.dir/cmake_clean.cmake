file(REMOVE_RECURSE
  "CMakeFiles/ddt_cli.dir/ddt_cli.cpp.o"
  "CMakeFiles/ddt_cli.dir/ddt_cli.cpp.o.d"
  "ddt_cli"
  "ddt_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ddt_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
