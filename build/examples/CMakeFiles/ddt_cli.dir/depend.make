# Empty dependencies file for ddt_cli.
# This may be replaced when dependencies are built.
