file(REMOVE_RECURSE
  "CMakeFiles/replay_bug.dir/replay_bug.cpp.o"
  "CMakeFiles/replay_bug.dir/replay_bug.cpp.o.d"
  "replay_bug"
  "replay_bug.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/replay_bug.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
