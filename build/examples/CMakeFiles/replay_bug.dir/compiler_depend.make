# Empty compiler generated dependencies file for replay_bug.
# This may be replaced when dependencies are built.
