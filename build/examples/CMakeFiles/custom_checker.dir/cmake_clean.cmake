file(REMOVE_RECURSE
  "CMakeFiles/custom_checker.dir/custom_checker.cpp.o"
  "CMakeFiles/custom_checker.dir/custom_checker.cpp.o.d"
  "custom_checker"
  "custom_checker.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_checker.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
