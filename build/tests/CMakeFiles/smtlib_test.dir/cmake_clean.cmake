file(REMOVE_RECURSE
  "CMakeFiles/smtlib_test.dir/smtlib_test.cc.o"
  "CMakeFiles/smtlib_test.dir/smtlib_test.cc.o.d"
  "smtlib_test"
  "smtlib_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smtlib_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
