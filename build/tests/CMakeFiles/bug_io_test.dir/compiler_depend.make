# Empty compiler generated dependencies file for bug_io_test.
# This may be replaced when dependencies are built.
