file(REMOVE_RECURSE
  "CMakeFiles/bug_io_test.dir/bug_io_test.cc.o"
  "CMakeFiles/bug_io_test.dir/bug_io_test.cc.o.d"
  "bug_io_test"
  "bug_io_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bug_io_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
