file(REMOVE_RECURSE
  "libddt_drivers.a"
)
