file(REMOVE_RECURSE
  "CMakeFiles/ddt_drivers.dir/drivers/ac97.cc.o"
  "CMakeFiles/ddt_drivers.dir/drivers/ac97.cc.o.d"
  "CMakeFiles/ddt_drivers.dir/drivers/asm_lib.cc.o"
  "CMakeFiles/ddt_drivers.dir/drivers/asm_lib.cc.o.d"
  "CMakeFiles/ddt_drivers.dir/drivers/audiopci.cc.o"
  "CMakeFiles/ddt_drivers.dir/drivers/audiopci.cc.o.d"
  "CMakeFiles/ddt_drivers.dir/drivers/corpus.cc.o"
  "CMakeFiles/ddt_drivers.dir/drivers/corpus.cc.o.d"
  "CMakeFiles/ddt_drivers.dir/drivers/pcnet.cc.o"
  "CMakeFiles/ddt_drivers.dir/drivers/pcnet.cc.o.d"
  "CMakeFiles/ddt_drivers.dir/drivers/pro100.cc.o"
  "CMakeFiles/ddt_drivers.dir/drivers/pro100.cc.o.d"
  "CMakeFiles/ddt_drivers.dir/drivers/pro1000.cc.o"
  "CMakeFiles/ddt_drivers.dir/drivers/pro1000.cc.o.d"
  "CMakeFiles/ddt_drivers.dir/drivers/rtl8029.cc.o"
  "CMakeFiles/ddt_drivers.dir/drivers/rtl8029.cc.o.d"
  "CMakeFiles/ddt_drivers.dir/drivers/sdv_sample.cc.o"
  "CMakeFiles/ddt_drivers.dir/drivers/sdv_sample.cc.o.d"
  "libddt_drivers.a"
  "libddt_drivers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ddt_drivers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
