# Empty dependencies file for ddt_drivers.
# This may be replaced when dependencies are built.
