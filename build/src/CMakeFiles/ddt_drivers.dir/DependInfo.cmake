
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/drivers/ac97.cc" "src/CMakeFiles/ddt_drivers.dir/drivers/ac97.cc.o" "gcc" "src/CMakeFiles/ddt_drivers.dir/drivers/ac97.cc.o.d"
  "/root/repo/src/drivers/asm_lib.cc" "src/CMakeFiles/ddt_drivers.dir/drivers/asm_lib.cc.o" "gcc" "src/CMakeFiles/ddt_drivers.dir/drivers/asm_lib.cc.o.d"
  "/root/repo/src/drivers/audiopci.cc" "src/CMakeFiles/ddt_drivers.dir/drivers/audiopci.cc.o" "gcc" "src/CMakeFiles/ddt_drivers.dir/drivers/audiopci.cc.o.d"
  "/root/repo/src/drivers/corpus.cc" "src/CMakeFiles/ddt_drivers.dir/drivers/corpus.cc.o" "gcc" "src/CMakeFiles/ddt_drivers.dir/drivers/corpus.cc.o.d"
  "/root/repo/src/drivers/pcnet.cc" "src/CMakeFiles/ddt_drivers.dir/drivers/pcnet.cc.o" "gcc" "src/CMakeFiles/ddt_drivers.dir/drivers/pcnet.cc.o.d"
  "/root/repo/src/drivers/pro100.cc" "src/CMakeFiles/ddt_drivers.dir/drivers/pro100.cc.o" "gcc" "src/CMakeFiles/ddt_drivers.dir/drivers/pro100.cc.o.d"
  "/root/repo/src/drivers/pro1000.cc" "src/CMakeFiles/ddt_drivers.dir/drivers/pro1000.cc.o" "gcc" "src/CMakeFiles/ddt_drivers.dir/drivers/pro1000.cc.o.d"
  "/root/repo/src/drivers/rtl8029.cc" "src/CMakeFiles/ddt_drivers.dir/drivers/rtl8029.cc.o" "gcc" "src/CMakeFiles/ddt_drivers.dir/drivers/rtl8029.cc.o.d"
  "/root/repo/src/drivers/sdv_sample.cc" "src/CMakeFiles/ddt_drivers.dir/drivers/sdv_sample.cc.o" "gcc" "src/CMakeFiles/ddt_drivers.dir/drivers/sdv_sample.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ddt_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ddt_solver.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ddt_expr.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ddt_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
