# Empty compiler generated dependencies file for ddt_annotations.
# This may be replaced when dependencies are built.
