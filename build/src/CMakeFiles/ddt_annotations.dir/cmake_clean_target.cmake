file(REMOVE_RECURSE
  "libddt_annotations.a"
)
