file(REMOVE_RECURSE
  "CMakeFiles/ddt_annotations.dir/annotations/annotation.cc.o"
  "CMakeFiles/ddt_annotations.dir/annotations/annotation.cc.o.d"
  "CMakeFiles/ddt_annotations.dir/annotations/standard_annotations.cc.o"
  "CMakeFiles/ddt_annotations.dir/annotations/standard_annotations.cc.o.d"
  "libddt_annotations.a"
  "libddt_annotations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ddt_annotations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
