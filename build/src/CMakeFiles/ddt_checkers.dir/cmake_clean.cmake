file(REMOVE_RECURSE
  "CMakeFiles/ddt_checkers.dir/checkers/default_checkers.cc.o"
  "CMakeFiles/ddt_checkers.dir/checkers/default_checkers.cc.o.d"
  "CMakeFiles/ddt_checkers.dir/checkers/leak_checker.cc.o"
  "CMakeFiles/ddt_checkers.dir/checkers/leak_checker.cc.o.d"
  "CMakeFiles/ddt_checkers.dir/checkers/lock_checker.cc.o"
  "CMakeFiles/ddt_checkers.dir/checkers/lock_checker.cc.o.d"
  "CMakeFiles/ddt_checkers.dir/checkers/loop_checker.cc.o"
  "CMakeFiles/ddt_checkers.dir/checkers/loop_checker.cc.o.d"
  "CMakeFiles/ddt_checkers.dir/checkers/memory_checker.cc.o"
  "CMakeFiles/ddt_checkers.dir/checkers/memory_checker.cc.o.d"
  "CMakeFiles/ddt_checkers.dir/checkers/race_checker.cc.o"
  "CMakeFiles/ddt_checkers.dir/checkers/race_checker.cc.o.d"
  "libddt_checkers.a"
  "libddt_checkers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ddt_checkers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
