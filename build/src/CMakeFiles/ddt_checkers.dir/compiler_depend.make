# Empty compiler generated dependencies file for ddt_checkers.
# This may be replaced when dependencies are built.
