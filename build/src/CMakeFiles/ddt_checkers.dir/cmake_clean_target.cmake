file(REMOVE_RECURSE
  "libddt_checkers.a"
)
