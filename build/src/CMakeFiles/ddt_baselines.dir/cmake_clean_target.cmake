file(REMOVE_RECURSE
  "libddt_baselines.a"
)
