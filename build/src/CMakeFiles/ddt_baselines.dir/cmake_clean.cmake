file(REMOVE_RECURSE
  "CMakeFiles/ddt_baselines.dir/baselines/driver_verifier.cc.o"
  "CMakeFiles/ddt_baselines.dir/baselines/driver_verifier.cc.o.d"
  "CMakeFiles/ddt_baselines.dir/baselines/sdv.cc.o"
  "CMakeFiles/ddt_baselines.dir/baselines/sdv.cc.o.d"
  "libddt_baselines.a"
  "libddt_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ddt_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
