# Empty dependencies file for ddt_baselines.
# This may be replaced when dependencies are built.
