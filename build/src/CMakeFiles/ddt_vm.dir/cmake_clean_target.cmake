file(REMOVE_RECURSE
  "libddt_vm.a"
)
