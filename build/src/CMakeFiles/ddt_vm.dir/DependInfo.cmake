
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/vm/assembler.cc" "src/CMakeFiles/ddt_vm.dir/vm/assembler.cc.o" "gcc" "src/CMakeFiles/ddt_vm.dir/vm/assembler.cc.o.d"
  "/root/repo/src/vm/disasm.cc" "src/CMakeFiles/ddt_vm.dir/vm/disasm.cc.o" "gcc" "src/CMakeFiles/ddt_vm.dir/vm/disasm.cc.o.d"
  "/root/repo/src/vm/guest_memory.cc" "src/CMakeFiles/ddt_vm.dir/vm/guest_memory.cc.o" "gcc" "src/CMakeFiles/ddt_vm.dir/vm/guest_memory.cc.o.d"
  "/root/repo/src/vm/image.cc" "src/CMakeFiles/ddt_vm.dir/vm/image.cc.o" "gcc" "src/CMakeFiles/ddt_vm.dir/vm/image.cc.o.d"
  "/root/repo/src/vm/isa.cc" "src/CMakeFiles/ddt_vm.dir/vm/isa.cc.o" "gcc" "src/CMakeFiles/ddt_vm.dir/vm/isa.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ddt_expr.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ddt_solver.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ddt_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
