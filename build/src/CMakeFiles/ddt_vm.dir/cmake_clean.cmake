file(REMOVE_RECURSE
  "CMakeFiles/ddt_vm.dir/vm/assembler.cc.o"
  "CMakeFiles/ddt_vm.dir/vm/assembler.cc.o.d"
  "CMakeFiles/ddt_vm.dir/vm/disasm.cc.o"
  "CMakeFiles/ddt_vm.dir/vm/disasm.cc.o.d"
  "CMakeFiles/ddt_vm.dir/vm/guest_memory.cc.o"
  "CMakeFiles/ddt_vm.dir/vm/guest_memory.cc.o.d"
  "CMakeFiles/ddt_vm.dir/vm/image.cc.o"
  "CMakeFiles/ddt_vm.dir/vm/image.cc.o.d"
  "CMakeFiles/ddt_vm.dir/vm/isa.cc.o"
  "CMakeFiles/ddt_vm.dir/vm/isa.cc.o.d"
  "libddt_vm.a"
  "libddt_vm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ddt_vm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
