# Empty dependencies file for ddt_vm.
# This may be replaced when dependencies are built.
