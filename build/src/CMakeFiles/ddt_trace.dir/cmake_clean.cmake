file(REMOVE_RECURSE
  "CMakeFiles/ddt_trace.dir/trace/trace.cc.o"
  "CMakeFiles/ddt_trace.dir/trace/trace.cc.o.d"
  "libddt_trace.a"
  "libddt_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ddt_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
