# Empty dependencies file for ddt_trace.
# This may be replaced when dependencies are built.
