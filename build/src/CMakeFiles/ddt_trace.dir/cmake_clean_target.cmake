file(REMOVE_RECURSE
  "libddt_trace.a"
)
