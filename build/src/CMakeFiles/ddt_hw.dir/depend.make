# Empty dependencies file for ddt_hw.
# This may be replaced when dependencies are built.
