file(REMOVE_RECURSE
  "libddt_hw.a"
)
