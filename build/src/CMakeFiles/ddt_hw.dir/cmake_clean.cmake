file(REMOVE_RECURSE
  "CMakeFiles/ddt_hw.dir/hw/device.cc.o"
  "CMakeFiles/ddt_hw.dir/hw/device.cc.o.d"
  "libddt_hw.a"
  "libddt_hw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ddt_hw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
