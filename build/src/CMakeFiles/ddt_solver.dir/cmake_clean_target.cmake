file(REMOVE_RECURSE
  "libddt_solver.a"
)
