
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/solver/bitblast.cc" "src/CMakeFiles/ddt_solver.dir/solver/bitblast.cc.o" "gcc" "src/CMakeFiles/ddt_solver.dir/solver/bitblast.cc.o.d"
  "/root/repo/src/solver/intervals.cc" "src/CMakeFiles/ddt_solver.dir/solver/intervals.cc.o" "gcc" "src/CMakeFiles/ddt_solver.dir/solver/intervals.cc.o.d"
  "/root/repo/src/solver/known_bits.cc" "src/CMakeFiles/ddt_solver.dir/solver/known_bits.cc.o" "gcc" "src/CMakeFiles/ddt_solver.dir/solver/known_bits.cc.o.d"
  "/root/repo/src/solver/sat.cc" "src/CMakeFiles/ddt_solver.dir/solver/sat.cc.o" "gcc" "src/CMakeFiles/ddt_solver.dir/solver/sat.cc.o.d"
  "/root/repo/src/solver/solver.cc" "src/CMakeFiles/ddt_solver.dir/solver/solver.cc.o" "gcc" "src/CMakeFiles/ddt_solver.dir/solver/solver.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ddt_expr.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ddt_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
