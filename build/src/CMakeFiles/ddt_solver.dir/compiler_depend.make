# Empty compiler generated dependencies file for ddt_solver.
# This may be replaced when dependencies are built.
