file(REMOVE_RECURSE
  "CMakeFiles/ddt_solver.dir/solver/bitblast.cc.o"
  "CMakeFiles/ddt_solver.dir/solver/bitblast.cc.o.d"
  "CMakeFiles/ddt_solver.dir/solver/intervals.cc.o"
  "CMakeFiles/ddt_solver.dir/solver/intervals.cc.o.d"
  "CMakeFiles/ddt_solver.dir/solver/known_bits.cc.o"
  "CMakeFiles/ddt_solver.dir/solver/known_bits.cc.o.d"
  "CMakeFiles/ddt_solver.dir/solver/sat.cc.o"
  "CMakeFiles/ddt_solver.dir/solver/sat.cc.o.d"
  "CMakeFiles/ddt_solver.dir/solver/solver.cc.o"
  "CMakeFiles/ddt_solver.dir/solver/solver.cc.o.d"
  "libddt_solver.a"
  "libddt_solver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ddt_solver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
