file(REMOVE_RECURSE
  "libddt_engine.a"
)
