
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/engine/bug_report.cc" "src/CMakeFiles/ddt_engine.dir/engine/bug_report.cc.o" "gcc" "src/CMakeFiles/ddt_engine.dir/engine/bug_report.cc.o.d"
  "/root/repo/src/engine/engine.cc" "src/CMakeFiles/ddt_engine.dir/engine/engine.cc.o" "gcc" "src/CMakeFiles/ddt_engine.dir/engine/engine.cc.o.d"
  "/root/repo/src/engine/execution_state.cc" "src/CMakeFiles/ddt_engine.dir/engine/execution_state.cc.o" "gcc" "src/CMakeFiles/ddt_engine.dir/engine/execution_state.cc.o.d"
  "/root/repo/src/engine/searcher.cc" "src/CMakeFiles/ddt_engine.dir/engine/searcher.cc.o" "gcc" "src/CMakeFiles/ddt_engine.dir/engine/searcher.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ddt_kernel.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ddt_solver.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ddt_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ddt_annotations.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ddt_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ddt_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ddt_expr.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ddt_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
