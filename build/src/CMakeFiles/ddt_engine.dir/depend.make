# Empty dependencies file for ddt_engine.
# This may be replaced when dependencies are built.
