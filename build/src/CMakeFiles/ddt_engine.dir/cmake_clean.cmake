file(REMOVE_RECURSE
  "CMakeFiles/ddt_engine.dir/engine/bug_report.cc.o"
  "CMakeFiles/ddt_engine.dir/engine/bug_report.cc.o.d"
  "CMakeFiles/ddt_engine.dir/engine/engine.cc.o"
  "CMakeFiles/ddt_engine.dir/engine/engine.cc.o.d"
  "CMakeFiles/ddt_engine.dir/engine/execution_state.cc.o"
  "CMakeFiles/ddt_engine.dir/engine/execution_state.cc.o.d"
  "CMakeFiles/ddt_engine.dir/engine/searcher.cc.o"
  "CMakeFiles/ddt_engine.dir/engine/searcher.cc.o.d"
  "libddt_engine.a"
  "libddt_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ddt_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
