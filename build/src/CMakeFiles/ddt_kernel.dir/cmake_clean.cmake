file(REMOVE_RECURSE
  "CMakeFiles/ddt_kernel.dir/kernel/api.cc.o"
  "CMakeFiles/ddt_kernel.dir/kernel/api.cc.o.d"
  "CMakeFiles/ddt_kernel.dir/kernel/exerciser.cc.o"
  "CMakeFiles/ddt_kernel.dir/kernel/exerciser.cc.o.d"
  "CMakeFiles/ddt_kernel.dir/kernel/kernel_api.cc.o"
  "CMakeFiles/ddt_kernel.dir/kernel/kernel_api.cc.o.d"
  "CMakeFiles/ddt_kernel.dir/kernel/kernel_state.cc.o"
  "CMakeFiles/ddt_kernel.dir/kernel/kernel_state.cc.o.d"
  "libddt_kernel.a"
  "libddt_kernel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ddt_kernel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
