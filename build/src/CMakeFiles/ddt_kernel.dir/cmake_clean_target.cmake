file(REMOVE_RECURSE
  "libddt_kernel.a"
)
