# Empty compiler generated dependencies file for ddt_kernel.
# This may be replaced when dependencies are built.
