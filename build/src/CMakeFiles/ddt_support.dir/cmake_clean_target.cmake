file(REMOVE_RECURSE
  "libddt_support.a"
)
