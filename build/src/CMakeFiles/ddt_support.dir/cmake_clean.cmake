file(REMOVE_RECURSE
  "CMakeFiles/ddt_support.dir/support/check.cc.o"
  "CMakeFiles/ddt_support.dir/support/check.cc.o.d"
  "CMakeFiles/ddt_support.dir/support/log.cc.o"
  "CMakeFiles/ddt_support.dir/support/log.cc.o.d"
  "CMakeFiles/ddt_support.dir/support/strings.cc.o"
  "CMakeFiles/ddt_support.dir/support/strings.cc.o.d"
  "libddt_support.a"
  "libddt_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ddt_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
