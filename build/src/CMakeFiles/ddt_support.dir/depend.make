# Empty dependencies file for ddt_support.
# This may be replaced when dependencies are built.
