file(REMOVE_RECURSE
  "libddt_expr.a"
)
