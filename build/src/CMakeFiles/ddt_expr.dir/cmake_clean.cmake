file(REMOVE_RECURSE
  "CMakeFiles/ddt_expr.dir/expr/eval.cc.o"
  "CMakeFiles/ddt_expr.dir/expr/eval.cc.o.d"
  "CMakeFiles/ddt_expr.dir/expr/expr.cc.o"
  "CMakeFiles/ddt_expr.dir/expr/expr.cc.o.d"
  "CMakeFiles/ddt_expr.dir/expr/smtlib.cc.o"
  "CMakeFiles/ddt_expr.dir/expr/smtlib.cc.o.d"
  "libddt_expr.a"
  "libddt_expr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ddt_expr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
