# Empty compiler generated dependencies file for ddt_expr.
# This may be replaced when dependencies are built.
