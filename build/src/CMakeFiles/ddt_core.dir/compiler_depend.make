# Empty compiler generated dependencies file for ddt_core.
# This may be replaced when dependencies are built.
