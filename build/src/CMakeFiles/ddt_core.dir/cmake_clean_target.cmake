file(REMOVE_RECURSE
  "libddt_core.a"
)
