file(REMOVE_RECURSE
  "CMakeFiles/ddt_core.dir/core/analysis.cc.o"
  "CMakeFiles/ddt_core.dir/core/analysis.cc.o.d"
  "CMakeFiles/ddt_core.dir/core/bug_io.cc.o"
  "CMakeFiles/ddt_core.dir/core/bug_io.cc.o.d"
  "CMakeFiles/ddt_core.dir/core/coverage_report.cc.o"
  "CMakeFiles/ddt_core.dir/core/coverage_report.cc.o.d"
  "CMakeFiles/ddt_core.dir/core/ddt.cc.o"
  "CMakeFiles/ddt_core.dir/core/ddt.cc.o.d"
  "CMakeFiles/ddt_core.dir/core/replay.cc.o"
  "CMakeFiles/ddt_core.dir/core/replay.cc.o.d"
  "libddt_core.a"
  "libddt_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ddt_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
